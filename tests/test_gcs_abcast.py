"""Tests of classical (uniform) atomic broadcast."""

from __future__ import annotations

import pytest

from repro.gcs import GroupCommunicationSystem
from repro.network import Lan, Node
from repro.sim import Simulator


def build_group(member_count=3, seed=7, end_to_end=False, **kwargs):
    sim = Simulator(seed=seed)
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, member_count + 1)]
    gcs = GroupCommunicationSystem(sim, lan, end_to_end=end_to_end, **kwargs)
    gcs.start()
    return sim, lan, nodes, gcs


def attach_consumers(sim, gcs, nodes, delivered, acknowledge=False):
    def consumer(name):
        endpoint = gcs.endpoint(name)
        while True:
            delivery = yield endpoint.deliveries.get()
            delivered[name].append(delivery.payload)
            if acknowledge:
                endpoint.acknowledge(delivery)

    for node in nodes:
        if node.is_up:
            node.spawn(consumer(node.name))


def test_all_members_deliver_in_the_same_order():
    sim, lan, nodes, gcs = build_group()
    delivered = {node.name: [] for node in nodes}
    attach_consumers(sim, gcs, nodes, delivered)

    def producer(name, count):
        endpoint = gcs.endpoint(name)
        for index in range(count):
            endpoint.broadcast(f"{name}-m{index}")
            yield sim.timeout(0.3)

    for node in nodes:
        node.spawn(producer(node.name, 4))
    sim.run(until=200.0)

    sequences = list(delivered.values())
    assert len(sequences[0]) == 12
    assert sequences[0] == sequences[1] == sequences[2]
    assert gcs.trace.check_validity()
    assert gcs.trace.check_integrity()
    assert gcs.trace.check_total_order()
    assert gcs.trace.check_uniform_agreement([node.name for node in nodes])


def test_sender_delivers_its_own_broadcast():
    sim, lan, nodes, gcs = build_group()
    delivered = {node.name: [] for node in nodes}
    attach_consumers(sim, gcs, nodes, delivered)
    gcs.endpoint("s2").broadcast("hello")
    sim.run(until=50.0)
    assert delivered["s2"] == ["hello"]


def test_broadcast_latency_is_sub_millisecond_on_the_paper_lan():
    sim, lan, nodes, gcs = build_group()
    arrival_times = []

    def consumer():
        endpoint = gcs.endpoint("s3")
        delivery = yield endpoint.deliveries.get()
        arrival_times.append(delivery.delivered_at)

    nodes[2].spawn(consumer())
    gcs.endpoint("s1").broadcast("timed")
    sim.run(until=50.0)
    assert arrival_times and arrival_times[0] < 2.0    # paper quotes ~1 ms


def test_delivery_requires_quorum_of_acknowledgements():
    # With 2 of 3 members crashed there is no quorum: nothing is delivered.
    sim, lan, nodes, gcs = build_group()
    delivered = {node.name: [] for node in nodes}
    nodes[1].crash()
    nodes[2].crash()
    sim.run(until=10.0)
    attach_consumers(sim, gcs, nodes, delivered)
    gcs.endpoint("s1").broadcast("lonely")
    sim.run(until=100.0)
    assert delivered["s1"] == []


def test_uniform_delivery_survives_minority_crash():
    sim, lan, nodes, gcs = build_group()
    delivered = {node.name: [] for node in nodes}
    attach_consumers(sim, gcs, nodes, delivered)
    gcs.endpoint("s1").broadcast("before-crash")
    sim.run(until=20.0)
    nodes[2].crash()
    sim.run(until=40.0)
    gcs.endpoint("s1").broadcast("after-crash")
    sim.run(until=200.0)
    assert delivered["s1"] == ["before-crash", "after-crash"]
    assert delivered["s2"] == ["before-crash", "after-crash"]


def test_view_change_elects_new_sequencer_and_broadcasts_continue():
    sim, lan, nodes, gcs = build_group()
    delivered = {node.name: [] for node in nodes}
    attach_consumers(sim, gcs, nodes, delivered)
    gcs.endpoint("s1").broadcast("m1")
    sim.run(until=20.0)
    nodes[0].crash()                      # the sequencer crashes
    sim.run(until=40.0)
    assert gcs.membership.view.primary == "s2"
    assert gcs.endpoint("s2").is_sequencer
    gcs.endpoint("s3").broadcast("m2")
    gcs.endpoint("s2").broadcast("m3")
    sim.run(until=300.0)
    assert delivered["s2"][0] == "m1"
    assert set(delivered["s2"]) == {"m1", "m2", "m3"}
    assert delivered["s2"] == delivered["s3"]
    assert gcs.trace.check_total_order()


def test_crash_wipes_undelivered_messages_classical():
    """Delivered-to-endpoint but unprocessed messages die with the node."""
    sim, lan, nodes, gcs = build_group()
    # No consumer on s3: its deliveries stay queued at the endpoint.
    delivered = {node.name: [] for node in nodes}
    attach_consumers(sim, gcs, nodes[:2], delivered)
    gcs.endpoint("s1").broadcast("will-be-lost-on-s3")
    sim.run(until=20.0)
    assert gcs.endpoint("s3").deliveries.pending_items == 1
    nodes[2].crash()
    assert gcs.endpoint("s3").deliveries.pending_items == 0


def test_classical_recovery_uses_state_transfer_not_replay():
    sim, lan, nodes, gcs = build_group()
    delivered = {node.name: [] for node in nodes}
    attach_consumers(sim, gcs, nodes[:2], delivered)
    gcs.endpoint("s1").checkpoint_provider = lambda: {"state": "from-s1"}
    gcs.endpoint("s2").checkpoint_provider = lambda: {"state": "from-s2"}
    gcs.endpoint("s1").broadcast("missed-by-s3")
    sim.run(until=20.0)
    nodes[2].crash()
    sim.run(until=30.0)
    nodes[2].recover()

    def recovery():
        checkpoint = yield from gcs.endpoint("s3").recover(rejoin_timeout=20.0)
        return checkpoint

    process = nodes[2].spawn(recovery())
    sim.run(until=200.0)
    assert process.ok
    # A live member supplied an application checkpoint ...
    assert process.value in ({"state": "from-s1"}, {"state": "from-s2"})
    # ... and the missed message is NOT replayed (classical primitive).
    assert gcs.endpoint("s3").deliveries.pending_items == 0


def test_recovery_with_no_survivors_returns_none():
    sim, lan, nodes, gcs = build_group()
    for node in nodes:
        node.crash()
    sim.run(until=10.0)
    nodes[1].recover()

    def recovery():
        checkpoint = yield from gcs.endpoint("s2").recover(rejoin_timeout=5.0)
        return checkpoint

    process = nodes[1].spawn(recovery())
    sim.run(until=100.0)
    assert process.ok and process.value is None
