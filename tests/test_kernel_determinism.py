"""Golden-trace determinism tests for the simulation-kernel fast path.

These tests are what licenses kernel optimisation work: every change to
``repro.sim`` (or to anything on the event hot path) must keep
default-configuration runs **bit-identical** — same seed, same event
ordering, same statistics.  Three layers of protection:

* *run-twice identity* — a mixed partitioned scenario (Zipf skew,
  cross-partition 2PC, a live migration under load) run twice with the same
  seed produces identical event-trace digests and identical statistics;
* *pinned seed values* — concrete numbers recorded from the seed kernel
  (pre-optimisation) that the current kernel must still reproduce exactly;
* *alias-sampler opt-in* — the O(1) Zipf sampler consumes the item stream
  differently, so it must be off by default, change draws only when
  explicitly enabled, and still sample the same distribution.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.experiments.figure9 import run_load_point
from repro.experiments.scenarios import figure5_scenario
from repro.partition.cluster import PartitionedCluster
from repro.partition.workload import PartitionedOpenLoopClients
from repro.sim.engine import Simulator
from repro.workload.generator import AliasSampler, WorkloadGenerator, \
    zipf_cumulative
from repro.workload.params import SimulationParameters


def _digest(trace) -> str:
    """SHA-256 over the (time, queue key, event type) trace entries."""
    h = hashlib.sha256()
    for entry in trace:
        h.update(repr(entry).encode())
    return h.hexdigest()


def _mixed_run(seed: int):
    """One mixed scenario: 4 range shards, Zipf load, forced live migration."""
    params = SimulationParameters.small(server_count=3,
                                        item_count=240).with_overrides(
        partition_count=4, zipf_skew=1.1, cross_partition_probability=0.1)
    cluster = PartitionedCluster("group-safe", params=params, seed=seed,
                                 strategy="range")
    trace = cluster.sim.enable_trace()
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=120.0, warmup=0.0)
    clients.start()
    cluster.run(until=1_500.0)
    cluster.rebalance()          # live migration of the hot head under load
    cluster.run(until=4_000.0)
    stats = (
        clients.committed_count,
        clients.submitted_count,
        cluster.routing.epoch,
        len(cluster.migration_reports),
        tuple(clients.response_times()),
        cluster.lan.sent_count,
        cluster.lan.delivered_count,
        cluster.router.wrong_epoch_retries,
        cluster.sim.scheduled_events,
    )
    return _digest(trace), stats


def test_golden_trace_same_seed_is_bit_identical():
    digest_a, stats_a = _mixed_run(seed=71)
    digest_b, stats_b = _mixed_run(seed=71)
    assert digest_a == digest_b
    assert stats_a == stats_b


def test_golden_trace_digest_is_sensitive_to_the_seed():
    digest_a, _ = _mixed_run(seed=71)
    digest_b, _ = _mixed_run(seed=72)
    assert digest_a != digest_b


def test_trace_hook_records_every_processed_event():
    sim = Simulator(seed=0)
    trace = sim.enable_trace()
    fired = []
    sim.call_after(1.0, lambda: fired.append(sim.now))
    sim.call_after(2.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0, 2.0]
    assert len(trace) == 2
    times = [entry[0] for entry in trace]
    assert times == [1.0, 2.0]


class TestPinnedSeedValues:
    """Concrete numbers recorded from the seed (pre-optimisation) kernel.

    If one of these moves, a kernel change silently altered the trace —
    which invalidates every cross-PR performance and figure comparison.
    """

    def test_figure5_scenario_is_unchanged(self):
        outcome = figure5_scenario(seed=1)
        assert outcome.confirmed is True
        assert outcome.fate.is_lost is True
        assert outcome.committed_on == ["s1"]
        assert outcome.response.response_time == \
            pytest.approx(35.48652061143362, abs=1e-9)

    def test_group_safe_load_point_is_unchanged(self):
        point = run_load_point("group-safe", 30.0, duration_ms=4_000.0,
                               warmup_ms=1_000.0, seed=5)
        assert point.committed_transactions == 81
        assert point.aborted_transactions == 0
        assert point.mean_response_time_ms == \
            pytest.approx(72.98573646760694, abs=1e-9)


class TestAliasSampler:
    def _generator(self, alias: bool, seed: int = 9) -> WorkloadGenerator:
        params = SimulationParameters.small(item_count=300).with_overrides(
            zipf_skew=1.1, alias_sampling=alias)
        return WorkloadGenerator(Simulator(seed=seed), params)

    def test_off_by_default(self):
        params = SimulationParameters.small()
        assert params.alias_sampling is False
        generator = WorkloadGenerator(Simulator(seed=1), params)
        assert generator.alias_sampling is False
        assert generator._alias is None

    def test_flag_changes_draws_only_when_enabled(self):
        baseline = [self._generator(alias=False).next_program()
                    for _ in range(1)][0]
        repeat = self._generator(alias=False).next_program()
        changed = self._generator(alias=True).next_program()
        keys = [operation.key for operation in baseline.operations]
        assert keys == [operation.key for operation in repeat.operations]
        assert keys != [operation.key for operation in changed.operations]

    def test_alias_samples_the_same_distribution(self):
        # Empirical check: alias and bisect draws over the same Zipf table
        # agree on the mass of the hot head to within a few percent.
        import random

        cumulative = zipf_cumulative(300, 1.1)
        sampler = AliasSampler.from_cumulative(cumulative)
        rng = random.Random(4)
        draws = 30_000
        hot = sum(1 for _ in range(draws)
                  if sampler.sample_index(rng) < 10)
        total = cumulative[-1]
        expected = cumulative[9] / total
        assert hot / draws == pytest.approx(expected, rel=0.05)

    def test_alias_single_weight_and_validation(self):
        import random

        sampler = AliasSampler([3.0])
        assert sampler.sample_index(random.Random(0)) == 0
        with pytest.raises(ValueError):
            AliasSampler([])
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_partitioned_alias_confines_keys_to_partitions(self):
        params = SimulationParameters.small(server_count=3,
                                            item_count=240).with_overrides(
            partition_count=4, zipf_skew=1.1, alias_sampling=True,
            cross_partition_probability=0.0)
        cluster = PartitionedCluster("group-safe", params=params, seed=13,
                                     strategy="range")
        snapshot = cluster.routing.snapshot()
        for _ in range(50):
            program = cluster.workload.next_program()
            owners = {snapshot.partition_of(operation.key)
                      for operation in program.operations}
            assert len(owners) == 1


def test_engine_read_matches_buffer_read_item():
    """The inlined read charge of ``LocalDatabase.read`` must stay in
    lockstep with ``BufferPool.read_item`` (still used by the migration
    copy path): identical stream draws, identical hit/miss accounting,
    identical simulated timing."""
    from repro.db.engine import LocalDatabase
    from repro.db.operations import make_program
    from repro.network.node import Node

    def drive(via_engine: bool):
        sim = Simulator(seed=99)
        node = Node(sim, "s1")
        db = LocalDatabase(sim, node, item_count=50)
        txn = db.begin(make_program([("r", "item-0")]))

        def reads():
            for index in range(200):
                key = f"item-{index % 50}"
                if via_engine:
                    yield from db.read(txn, key)
                else:
                    yield from db.buffer.read_item(key)

        sim.run_until_complete(sim.spawn(reads()))
        return (db.buffer.read_hits, db.buffer.read_misses, sim.now,
                sim.scheduled_events)

    assert drive(via_engine=True) == drive(via_engine=False)


class TestInlinedUseSitesReleaseOnKill:
    """The hand-inlined ``request / yield Timeout / finally release`` blocks
    (buffer read/write/flush, WAL flush, dispatcher loop, broadcast sender —
    same pattern everywhere) must keep ``Resource.use``'s crash semantics:
    killing the process mid-charge releases the slot via ``finally``."""

    def _db(self, seed: int = 3, hit_ratio: float = 0.0):
        from repro.db.engine import LocalDatabase
        from repro.network.node import Node

        sim = Simulator(seed=seed)
        node = Node(sim, "s1")
        db = LocalDatabase(sim, node, item_count=20, hit_ratio=hit_ratio)
        return sim, node, db

    def _assert_released_after_kill(self, sim, node, process):
        sim.run(until=sim.now + 1.0)   # mid-charge: a slot is held
        assert node.cpu.in_use + node.disk.in_use >= 1
        process.kill("probe")
        sim.run(until=sim.now + 50.0)
        assert node.cpu.in_use == 0
        assert node.disk.in_use == 0

    def test_wal_flush_releases_on_kill(self):
        sim, node, db = self._db()
        db.wal.append_commit("t1", {"item-0": 1})
        process = sim.spawn(db.wal.flush())
        self._assert_released_after_kill(sim, node, process)

    def test_buffer_flush_some_releases_on_kill(self):
        sim, node, db = self._db()
        db.buffer.write_item_async("item-0")
        process = sim.spawn(db.buffer.flush_some())
        self._assert_released_after_kill(sim, node, process)

    def test_buffer_write_sync_releases_on_kill(self):
        sim, node, db = self._db(hit_ratio=0.0)   # force the disk path
        process = sim.spawn(db.buffer.write_item_sync("item-0"))
        self._assert_released_after_kill(sim, node, process)

    def test_engine_read_releases_on_kill(self):
        from repro.db.operations import make_program

        sim, node, db = self._db(hit_ratio=0.0)
        txn = db.begin(make_program([("r", "item-0")]))
        process = sim.spawn(db.read(txn, "item-0"))
        self._assert_released_after_kill(sim, node, process)

    def test_dispatcher_loop_releases_on_kill(self):
        from repro.network.dispatch import Dispatcher
        from repro.network.message import Message
        from repro.network.node import Node

        sim = Simulator(seed=3)
        node = Node(sim, "s1")
        dispatcher = Dispatcher(sim, node)
        dispatcher.register("PING", lambda message: None)
        dispatcher.start()
        node.inbox.put(Message(sender="s2", destination="s1", kind="PING"))
        sim.run(until=0.01)            # mid network-CPU charge (0.07 ms)
        assert node.cpu.in_use == 1
        node.crash()                   # kills the loop; cancel_all clears
        node.recover()
        sim.run(until=5.0)
        assert node.cpu.in_use == 0


class TestStreamInterning:
    def test_hoisted_stream_handles_draw_identically(self):
        from repro.sim.rng import RandomStreams

        named = RandomStreams(42)
        interned = RandomStreams(42)
        stream = interned.stream("workload.item")
        named_draws = [named.uniform("workload.item", 0.0, 1.0)
                       for _ in range(100)]
        interned_draws = [stream.uniform(0.0, 1.0) for _ in range(100)]
        assert named_draws == interned_draws

    def test_stream_creation_order_does_not_change_seeds(self):
        from repro.sim.rng import RandomStreams

        forward = RandomStreams(7)
        backward = RandomStreams(7)
        a_first = forward.stream("a").random()
        forward.stream("b")
        backward.stream("b")
        a_second = backward.stream("a").random()
        assert a_first == a_second
