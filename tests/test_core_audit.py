"""Tests of the execution audit and durability checks."""

from __future__ import annotations

import pytest

from repro.core import (SafetyAudit, SafetyLevel, classify_results,
                        committed_state_of, is_transaction_lost,
                        transaction_fate, weakest_guarantee)
from repro.replication import TransactionResult
from tests.conftest import build_cluster


def run_one(cluster, program, server="s1", until=3_000.0):
    waiter = cluster.run_transaction(program, server=server)
    cluster.run(until=cluster.sim.now + until)
    return waiter.value


def make_result(**overrides):
    defaults = dict(txn_id="t", committed=True, delegate="s1",
                    submitted_at=0.0, responded_at=10.0)
    defaults.update(overrides)
    return TransactionResult(**defaults)


def test_classify_results_histogram_and_weakest():
    results = [
        make_result(txn_id="a", delivered_to_group=True),
        make_result(txn_id="b", delivered_to_group=True, logged_on_delegate=True),
        make_result(txn_id="c", committed=False),
        make_result(txn_id="d", logged_on_delegate=True),
    ]
    histogram = classify_results(results)
    assert histogram == {SafetyLevel.GROUP_SAFE: 1,
                         SafetyLevel.GROUP_ONE_SAFE: 1,
                         SafetyLevel.ONE_SAFE: 1}
    assert weakest_guarantee(results) is SafetyLevel.ONE_SAFE
    assert weakest_guarantee([make_result(committed=False)]) is None


def test_transaction_fate_reflects_cluster_state():
    cluster = build_cluster("group-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    fate = transaction_fate(cluster, result.txn_id)
    assert set(fate.committed_on) == {"s1", "s2", "s3"}
    assert fate.surviving_servers == ["s1", "s2", "s3"]
    assert not fate.is_lost
    assert fate.is_durable_everywhere
    assert not is_transaction_lost(cluster, result.txn_id)


def test_transaction_fate_detects_loss_after_catastrophe():
    cluster = build_cluster("group-safe")
    for name in ("s2", "s3"):
        cluster.replica(name).processing_gate.close()
    result = run_one(cluster, cluster.workload.update_only_program(3),
                     until=200.0)
    cluster.crash_all()
    cluster.run(until=cluster.sim.now + 10.0)
    for name in ("s2", "s3"):
        cluster.replica(name).processing_gate.open()
        cluster.recover_server(name)
    cluster.run(until=cluster.sim.now + 2_000.0)
    fate = transaction_fate(cluster, result.txn_id)
    assert fate.is_lost
    assert "s1" not in fate.surviving_servers


def test_committed_state_of_lists_per_server_commits():
    cluster = build_cluster("group-safe")
    result = run_one(cluster, cluster.workload.update_only_program(2))
    state = committed_state_of(cluster)
    assert state["s1"] == [result.txn_id]
    assert state["s2"] == [result.txn_id]


def test_safety_audit_report_on_healthy_run():
    cluster = build_cluster("group-safe")
    results = [run_one(cluster, cluster.workload.update_only_program(2))
               for _ in range(3)]
    cluster.run(until=cluster.sim.now + 2_000.0)
    audit = SafetyAudit(cluster)
    report = audit.report(results)
    assert report.confirmed_transactions == 3
    assert not report.transaction_lost
    assert report.consistent
    assert report.serializable
    assert report.guarantee_histogram.get(SafetyLevel.GROUP_SAFE) == 3


def test_safety_audit_flags_divergence_between_replicas():
    cluster = build_cluster("group-safe")
    # Manufacture divergence directly in the copies (bypassing the protocol).
    cluster.database("s1").items.get("item-1").install("rogue", "t-x", 99)
    audit = SafetyAudit(cluster)
    assert "item-1" in audit.divergent_items()


def test_safety_audit_divergence_ignores_crashed_servers():
    cluster = build_cluster("group-safe")
    cluster.database("s3").items.get("item-1").install("rogue", "t-x", 99)
    cluster.crash_server("s3")
    audit = SafetyAudit(cluster)
    assert audit.divergent_items() == []
