"""Tests of the gray-failure modes: degraded disks and slow CPUs.

A gray failure is a node that is alive but useless — it answers, just far
too slowly.  These tests pin the two injection knobs (WAL
``degrade_disk`` and Node ``degrade_cpu``), their restore paths, and the
bit-identity discipline: a degradation scales durations *after* the random
draw, so RNG stream consumption is unchanged.
"""

from __future__ import annotations

import pytest

from repro.db.wal import LogRecord, LogRecordType, WriteAheadLog
from repro.network import Node
from repro.sim import Simulator


def flush_one(sim, wal, txn_id):
    wal.append_commit(txn_id, {"x": 1})
    start = sim.now
    sim.run_until_complete(sim.spawn(wal.flush()))
    return sim.now - start


def test_degraded_disk_inflates_flush_latency_and_restores():
    sim = Simulator(seed=3)
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node, write_time_low=8.0, write_time_high=8.0)
    healthy = flush_one(sim, wal, "t1")
    wal.degrade_disk(10.0)
    degraded = flush_one(sim, wal, "t2")
    wal.restore_disk()
    restored = flush_one(sim, wal, "t3")
    # cpu_time_per_io (0.4) + 8 ms write, with only the write scaled.
    assert healthy == pytest.approx(8.4)
    assert degraded == pytest.approx(80.4)
    assert restored == pytest.approx(8.4)
    assert wal.committed_transactions() == ["t1", "t2", "t3"]


def test_degradation_factor_must_be_at_least_one():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)
    with pytest.raises(ValueError):
        wal.degrade_disk(0.5)
    with pytest.raises(ValueError):
        node.degrade_cpu(0.9)


def test_degraded_disk_consumes_the_rng_stream_identically():
    def draws(degrade):
        sim = Simulator(seed=11)
        node = Node(sim, "s1")
        wal = WriteAheadLog(sim, node)
        if degrade:
            wal.degrade_disk(25.0)
        for i in range(5):
            flush_one(sim, wal, f"t{i}")
        # The next value of the stream shows how much was consumed.
        return sim.random.stream("s1.log_write").random()

    assert draws(False) == draws(True)


def test_degraded_cpu_scales_both_costs_and_restores():
    sim = Simulator()
    node = Node(sim, "s1", cpu_time_per_io=0.4, cpu_time_per_network_op=0.07)
    node.degrade_cpu(5.0)
    assert node.cpu_time_per_io == pytest.approx(2.0)
    assert node.cpu_time_per_network_op == pytest.approx(0.35)
    node.degrade_cpu(2.0)       # absolute, not cumulative
    assert node.cpu_time_per_io == pytest.approx(0.8)
    node.restore_cpu()
    assert node.cpu_time_per_io == pytest.approx(0.4)
    assert node.cpu_time_per_network_op == pytest.approx(0.07)


def test_degraded_cpu_slows_io_charges_at_use_time():
    sim = Simulator()
    node = Node(sim, "s1", cpu_time_per_io=1.0)

    def charge():
        yield from node.use_cpu(node.cpu_time_per_io)

    sim.run_until_complete(sim.spawn(charge()))
    assert sim.now == pytest.approx(1.0)
    node.degrade_cpu(4.0)
    sim.run_until_complete(sim.spawn(charge()))
    assert sim.now == pytest.approx(5.0)


def test_local_database_passthrough():
    from repro.db.engine import LocalDatabase

    sim = Simulator(seed=5)
    node = Node(sim, "s1")
    database = LocalDatabase(sim, node, item_count=10)
    database.degrade_disk(3.0)
    assert database.wal._disk_factor == 3.0
    database.restore_disk()
    assert database.wal._disk_factor == 1.0
