"""Tests of the random-stream registry and the measurement helpers."""

from __future__ import annotations

import pytest

from repro.sim import Counter, Monitor, RandomStreams, Tally


def test_streams_are_reproducible_across_instances():
    first = RandomStreams(42)
    second = RandomStreams(42)
    draws_first = [first.uniform("disk", 0, 1) for _ in range(10)]
    draws_second = [second.uniform("disk", 0, 1) for _ in range(10)]
    assert draws_first == draws_second


def test_streams_differ_across_seeds():
    assert (RandomStreams(1).uniform("x", 0, 1)
            != RandomStreams(2).uniform("x", 0, 1))


def test_streams_are_independent_per_name():
    streams = RandomStreams(7)
    a_before = [streams.uniform("a", 0, 1) for _ in range(3)]
    # Interleaving draws on another stream must not change stream "a".
    streams_again = RandomStreams(7)
    _ = [streams_again.uniform("b", 0, 1) for _ in range(100)]
    a_after = [streams_again.uniform("a", 0, 1) for _ in range(3)]
    assert a_before == a_after


def test_randint_and_choice_and_bernoulli():
    streams = RandomStreams(3)
    values = [streams.randint("len", 10, 20) for _ in range(200)]
    assert all(10 <= value <= 20 for value in values)
    population = ["x", "y", "z"]
    assert streams.choice("pick", population) in population
    flips = [streams.bernoulli("flip", 0.5) for _ in range(500)]
    assert 0.3 < sum(flips) / len(flips) < 0.7
    with pytest.raises(ValueError):
        streams.bernoulli("flip", 1.5)


def test_stream_names_recorded():
    streams = RandomStreams(0)
    streams.uniform("one", 0, 1)
    streams.randint("two", 1, 2)
    assert set(streams.stream_names()) == {"one", "two"}


def test_tally_statistics():
    tally = Tally("rt")
    tally.extend([10.0, 20.0, 30.0, 40.0])
    assert tally.count == 4
    assert tally.mean == 25.0
    assert tally.minimum == 10.0
    assert tally.maximum == 40.0
    assert tally.percentile(0.5) == 25.0
    assert tally.percentile(0.0) == 10.0
    assert tally.percentile(1.0) == 40.0
    assert tally.stdev == pytest.approx(12.909944, rel=1e-5)
    summary = tally.summary()
    assert summary["count"] == 4.0


def test_tally_edge_cases():
    tally = Tally()
    assert tally.mean == 0.0
    assert tally.percentile(0.5) == 0.0
    tally.observe(5.0)
    assert tally.variance == 0.0
    with pytest.raises(ValueError):
        tally.percentile(2.0)


def test_counter_and_rate():
    counter = Counter("commits")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5
    assert counter.rate(10.0) == 0.5
    assert counter.rate(0.0) == 0.0


def test_monitor_warmup_filtering():
    monitor = Monitor(warmup=100.0)
    monitor.observe("rt", 50.0, at_time=50.0)     # during warm-up: dropped
    monitor.observe("rt", 80.0, at_time=200.0)    # measured
    monitor.count("commits", at_time=20.0)        # dropped
    monitor.count("commits", at_time=150.0)       # measured
    assert monitor.tally("rt").count == 1
    assert monitor.counter("commits").value == 1


def test_monitor_report_and_throughput():
    monitor = Monitor(warmup=0.0)
    monitor.started_at = 0.0
    monitor.stopped_at = 1000.0
    for value in (10.0, 20.0):
        monitor.observe("rt", value, at_time=500.0)
    monitor.count("commits", at_time=500.0, amount=5)
    report = monitor.report()
    assert report["rt"]["mean"] == 15.0
    assert report["counter:commits"]["value"] == 5.0
    assert monitor.throughput("commits") == pytest.approx(0.005)
