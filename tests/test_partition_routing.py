"""The epoch-versioned routing table: splits, merges, migrations, recovery."""

from __future__ import annotations

import pytest

import zlib

from repro.db.wal import LogRecord, LogRecordType
from repro.partition import (KeyRange, RoutingTable, ShardAssignment,
                             WrongEpochError)


def range_table(groups=4, items=100):
    return RoutingTable.from_strategy("range", groups, items)


# ---------------------------------------------------------------- construction
def test_range_table_reproduces_the_seed_range_placement():
    # The retired RangePartitioner placed item index i of an item_count-item
    # database into partition ``i * partition_count // item_count``; the
    # epoch-0 range table must keep that mapping bit-for-bit.
    table = range_table(4, 100)
    for index in range(100):
        key = f"item-{index}"
        assert table.partition_of(key) == index * 4 // 100
    assert table.epoch == 0
    assert table.shard_count == 4


def test_hash_table_reproduces_the_seed_hash_placement():
    # The retired HashPartitioner placed keys by ``crc32(key) % count``.
    table = RoutingTable.from_strategy("hash", 4)
    for index in range(200):
        key = f"item-{index}"
        assert table.partition_of(key) == \
            zlib.crc32(key.encode("utf-8")) % 4


def test_table_validates_cover_and_strategy():
    with pytest.raises(ValueError):
        RoutingTable.from_strategy("consistent-hashing", 4)
    with pytest.raises(ValueError):
        RoutingTable.from_strategy("range", 8, item_count=4)
    with pytest.raises(ValueError):
        # Gap between the two shards.
        RoutingTable([ShardAssignment(KeyRange(0, 40), 0),
                      ShardAssignment(KeyRange(50, 100), 1)],
                     slots=100, strategy="range", group_count=2)
    with pytest.raises(ValueError):
        # Unknown owning group.
        RoutingTable([ShardAssignment(KeyRange(0, 100), 5)],
                     slots=100, strategy="range", group_count=2)
    with pytest.raises(ValueError):
        KeyRange(10, 10)


# ---------------------------------------------------------------- split / merge
def test_split_bumps_epoch_and_keeps_owner_and_cover():
    table = range_table(2, 100)
    epoch = table.split(0, at=10)
    assert epoch == table.epoch == 1
    assert table.shard_count == 3
    assert [assignment.key_range.lo for assignment in table.assignments] == \
        [0, 10, 50]
    # Both halves keep the owner; every key still routes to group 0.
    for index in range(50):
        assert table.partition_of(f"item-{index}") == 0


def test_split_validation():
    table = RoutingTable.from_strategy("hash", 2)
    with pytest.raises(ValueError):
        table.split(0)                      # width-1 hash slots cannot split
    table = range_table(2, 100)
    with pytest.raises(ValueError):
        table.split(0, at=0)                # boundary split is a no-op
    with pytest.raises(ValueError):
        table.split(0, at=80)               # outside the shard


def test_merge_rejoins_adjacent_same_owner_shards():
    table = range_table(2, 100)
    table.split(0, at=10)
    epoch = table.merge(0)
    assert epoch == 2
    assert table.shard_count == 2
    assert table.assignments[0].key_range == KeyRange(0, 50)


def test_merge_refuses_different_owners():
    table = range_table(2, 100)
    with pytest.raises(ValueError):
        table.merge(0)                      # right neighbour belongs to g1
    with pytest.raises(ValueError):
        table.merge(1)                      # no right neighbour


# ---------------------------------------------------------------- migrate
def test_migrate_reassigns_owner_and_bumps_epoch():
    table = range_table(2, 100)
    table.migrate(0, destination_group=1)
    assert table.epoch == 1
    assert table.partition_of("item-10") == 1
    with pytest.raises(ValueError):
        table.migrate(0, destination_group=1)   # already there
    with pytest.raises(ValueError):
        table.migrate(0, destination_group=7)   # unknown group


def test_snapshots_are_immutable_views():
    table = range_table(2, 100)
    before = table.snapshot()
    table.migrate(0, destination_group=1)
    after = table.snapshot()
    assert before.epoch == 0 and after.epoch == 1
    assert before.partition_of("item-10") == 0
    assert after.partition_of("item-10") == 1


# ---------------------------------------------------------------- fencing
def test_fence_blocks_mutations_and_reports_keys():
    table = range_table(2, 100)
    fenced = KeyRange(0, 50)
    table.fence(fenced)
    assert table.has_fences
    assert table.is_fenced(["item-10"])
    assert not table.is_fenced(["item-90"])
    with pytest.raises(WrongEpochError):
        table.split(0, at=10)
    table.unfence(fenced)
    assert not table.has_fences
    assert table.split(0, at=10) == 1


def test_install_refuses_stale_epochs():
    table = range_table(2, 100)
    table.split(0, at=10)
    with pytest.raises(WrongEpochError):
        table.install(table.assignments, epoch=0)


# ---------------------------------------------------------------- hot-spot tools
def test_hot_split_position_tracks_the_access_mass():
    table = range_table(2, 100)
    # A Zipf-ish head: positions 0..4 get almost all the traffic.
    for position in range(5):
        for _ in range(100 - position * 10):
            table.note_access(f"item-{position}")
    for position in range(5, 50):
        table.note_access(f"item-{position}")
    split = table.hot_split_position(0)
    assert split is not None and 0 < split <= 5
    assert table.hottest_shard() == 0
    assert table.coolest_group(exclude=[0]) == 1


def test_hot_split_position_without_data_is_none():
    table = range_table(2, 100)
    assert table.hot_split_position(0) is None


def test_hot_split_clamps_a_maximally_skewed_shard():
    # All the mass on the shard's last position used to push the weighted
    # median to `hi` and silently fall back to the load-free midpoint; the
    # split must land on the largest legal split point instead.
    table = range_table(2, 100)
    for _ in range(50):
        table.note_access("item-49")       # last position of shard [0, 50)
    assert table.hot_split_position(0) == 49


# ---------------------------------------------------------------- windowed accounting
def test_access_counters_are_cumulative_with_decay_disabled():
    table = range_table(2, 100)
    for _ in range(3):
        table.note_access("item-1")
    assert table.maybe_roll(10_000.0) == 0     # decay off: nothing rolls
    assert table.access_counts[1] == 3
    assert table.windows_rolled == 0


def test_roll_window_decays_counters_and_drops_cold_positions():
    table = range_table(2, 100)
    for _ in range(8):
        table.note_access("item-1")
    table.note_access("item-60")
    table.roll_window()
    assert table.access_counts[1] == 4
    assert 60 not in table.access_counts       # 1 * 0.5 floors to zero
    assert table.windows_rolled == 1
    assert table.shard_accesses() == [4, 0]


def test_maybe_roll_follows_the_sim_time_schedule():
    table = range_table(2, 100)
    table.decay_interval_ms = 100.0
    for _ in range(16):
        table.note_access("item-1")
    assert table.maybe_roll(0.0) == 0          # anchors the schedule
    assert table.maybe_roll(50.0) == 0
    assert table.maybe_roll(250.0) == 2        # two whole windows elapsed
    assert table.access_counts[1] == 4


def test_decayed_counters_track_the_recent_hot_set():
    # The stale-hotness bug: cumulative counters keep yesterday's hot shard
    # hottest forever.  With windowed decay the signal follows the load.
    table = range_table(2, 100)
    for _ in range(200):
        table.note_access("item-1")            # old hot set on shard 0
    for _ in range(3):
        table.roll_window()
        for _ in range(40):
            table.note_access("item-70")       # new hot set on shard 1
    assert table.hottest_shard() == 1
    assert table.coolest_group() == 0


def test_shard_totals_stay_consistent_across_reshaping():
    table = range_table(4, 100)
    for position in range(0, 100, 3):
        for _ in range(position % 7 + 1):
            table.note_access(f"item-{position}")

    def brute_force():
        return [sum(count for position, count in table.access_counts.items()
                    if assignment.key_range.contains(position))
                for assignment in table.assignments]

    assert table.shard_accesses() == brute_force()
    table.split(0, at=10)
    assert table.shard_accesses() == brute_force()
    table.migrate(2, destination_group=3)
    assert table.shard_accesses() == brute_force()
    table.merge(0)
    assert table.shard_accesses() == brute_force()
    table.note_access("item-5")
    assert table.shard_accesses() == brute_force()
    assert table.access_count_of(table.assignments[0].key_range) == \
        table.shard_accesses()[0]


def test_access_counts_growth_is_capped_by_cold_aggregation():
    table = range_table(2, 1_000)
    table.max_tracked_positions = 16
    for position in range(1_000):
        table.note_access(f"item-{position}")
    for _ in range(100):
        table.note_access("item-3")
    assert len(table.access_counts) <= 16 + table.shard_count
    # Folding the cold tail never loses mass: per-shard totals stay exact.
    assert sum(table.shard_accesses()) == 1_100
    assert table.shard_accesses()[0] == 600
    # The hot position survives compaction at full resolution.
    assert table.access_counts[3] >= 100


# ---------------------------------------------------------------- recovery
def epoch_record(payload):
    return LogRecord(LogRecordType.EPOCH, f"epoch-{payload['epoch']}",
                     payload=payload)


def test_payload_roundtrip_through_recover():
    table = range_table(2, 100)
    table.split(0, at=10)
    table.migrate(0, destination_group=1)
    recovered = RoutingTable.recover([epoch_record(table.as_payload())],
                                     strategy="range", group_count=2,
                                     item_count=100)
    assert recovered.epoch == table.epoch
    assert recovered.assignments == table.assignments
    assert recovered.partition_of("item-5") == 1


def test_recover_picks_the_highest_epoch():
    table = range_table(2, 100)
    old = table.as_payload()
    table.migrate(0, destination_group=1)
    new = table.as_payload()
    recovered = RoutingTable.recover(
        [epoch_record(new), epoch_record(old)],
        strategy="range", group_count=2, item_count=100)
    assert recovered.epoch == new["epoch"]
    assert recovered.partition_of("item-10") == 1


def test_recover_without_records_falls_back_to_strategy():
    recovered = RoutingTable.recover([], strategy="range", group_count=4,
                                     item_count=100)
    assert recovered.epoch == 0
    assert recovered.assignments == range_table(4, 100).assignments


def test_payload_after_migrate_is_the_write_ahead_image():
    table = range_table(2, 100)
    payload = table.payload_after_migrate(KeyRange(0, 50), 1)
    assert payload["epoch"] == 1
    # The table itself has not moved yet (write-ahead discipline).
    assert table.epoch == 0
    assert table.partition_of("item-10") == 0
    recovered = RoutingTable.recover([epoch_record(payload)],
                                     strategy="range", group_count=2,
                                     item_count=100)
    assert recovered.partition_of("item-10") == 1


# ---------------------------------------------------------------- protocol
def test_table_and_snapshot_agree_on_partition_keys():
    table = range_table(4, 100)
    keys = [f"item-{i}" for i in range(100)]
    assert table.partition_keys(keys) == table.snapshot().partition_keys(keys)
