"""Tests of stable storage, the stable log and the write-ahead log."""

from __future__ import annotations

import pytest

from repro.db import (LogRecord, LogRecordType, StableLog, StableStorage,
                      TestableTransactionRegistry, WriteAheadLog)
from repro.network import Node
from repro.sim import Simulator


def test_stable_storage_basic_operations():
    storage = StableStorage("s")
    storage.put("a", 1)
    storage.put("b", 2)
    assert storage.get("a") == 1
    assert storage.get("missing", "default") == "default"
    assert "b" in storage and len(storage) == 2
    storage.delete("a")
    assert "a" not in storage
    assert storage.write_count == 2


def test_stable_log_append_and_truncate():
    log = StableLog()
    first = log.append("r1")
    second = log.append("r2")
    assert (first, second) == (0, 1)
    assert log.entries() == ["r1", "r2"]
    log.truncate(1)
    assert log.entries() == ["r2"]
    assert len(log) == 1


def test_wal_volatile_until_flushed():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)
    wal.append_commit("t1", {"x": 1}, commit_order=1)
    assert wal.volatile_records() and not wal.stable_records()
    assert not wal.is_logged("t1")

    def flusher():
        yield from wal.flush()

    node.spawn(flusher())
    sim.run()
    assert wal.is_logged("t1")
    assert wal.committed_transactions() == ["t1"]
    assert not wal.volatile_records()
    assert wal.flush_count == 1


def test_wal_flush_occupies_a_disk():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node, write_time_low=8.0, write_time_high=8.0)
    wal.append_commit("t1", {})

    def flusher():
        yield from wal.flush()

    node.spawn(flusher())
    sim.run()
    assert node.disk.busy_time == pytest.approx(8.0)


def test_wal_group_commit_covers_records_appended_before_flush():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)
    wal.append_commit("t1", {})
    wal.append_commit("t2", {})

    def flusher():
        yield from wal.flush()

    node.spawn(flusher())
    sim.run()
    assert wal.committed_transactions() == ["t1", "t2"]
    assert wal.flush_count == 1


def test_wal_crash_loses_unflushed_tail():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)
    wal.append_commit("t-durable", {})

    def flusher():
        yield from wal.flush()

    node.spawn(flusher())
    sim.run()
    wal.append_commit("t-volatile", {})
    wal.lose_volatile()
    assert wal.is_logged("t-durable")
    assert not wal.is_logged("t-volatile")


def test_wal_flushed_gate_opens_on_durability():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)
    wal.append_commit("t1", {})
    waited = []

    def waiter():
        yield wal.flushed_gate("t1").wait()
        waited.append(sim.now)

    def flusher():
        yield sim.timeout(5.0)
        yield from wal.flush()

    node.spawn(waiter())
    node.spawn(flusher())
    sim.run()
    assert waited and waited[0] > 5.0
    # Gate for an already durable transaction opens immediately.
    assert wal.flushed_gate("t1").is_open


def test_wal_abort_records_are_not_commits():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)
    wal.append_abort("t1")
    wal.append(LogRecord(LogRecordType.CHECKPOINT, "chk"))

    def flusher():
        yield from wal.flush()

    node.spawn(flusher())
    sim.run()
    assert wal.committed_transactions() == []
    assert not wal.is_logged("t1")


def test_empty_flush_is_a_noop():
    sim = Simulator()
    node = Node(sim, "s1")
    wal = WriteAheadLog(sim, node)

    def flusher():
        yield from wal.flush()

    node.spawn(flusher())
    sim.run()
    assert wal.flush_count == 0
    assert node.disk.busy_time == 0.0


def test_testable_registry_exactly_once_bookkeeping():
    sim = Simulator()
    node = Node(sim, "s1")
    registry = TestableTransactionRegistry(node)
    registry.record_commit("t1", commit_order=3)
    registry.record_abort("t2", "certification")
    assert registry.has_committed("t1")
    assert registry.outcome("t2") == "abort"
    assert registry.has_decided("t2")
    assert not registry.has_decided("t3")
    assert registry.check_duplicate("t1")
    assert not registry.check_duplicate("t3")
    assert registry.duplicates_detected == 1
    assert registry.committed_ids() == ["t1"]
    assert registry.as_dict() == {"t1": "commit", "t2": "abort"}


def test_testable_registry_survives_crash():
    sim = Simulator()
    node = Node(sim, "s1")
    registry = TestableTransactionRegistry(node)
    registry.record_commit("t1")
    node.crash()
    node.recover()
    assert registry.has_committed("t1")
