"""Tests of the local database engine: execution, certification, recovery."""

from __future__ import annotations

import pytest

from repro.db import (LocalDatabase, TransactionStatus, UnknownItemError,
                      make_program)
from repro.network import Node
from repro.sim import Simulator


@pytest.fixture
def db_setup():
    sim = Simulator(seed=11)
    node = Node(sim, "s1")
    database = LocalDatabase(sim, node, item_count=50)
    return sim, node, database


def run_generator(sim, node, generator):
    process = node.spawn(generator)
    sim.run()
    if not process.ok:
        raise process.value
    return process.value


def test_read_records_version_and_returns_value(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("r", "item-1")]))

    def body():
        value = yield from db.read(txn, "item-1")
        return value

    value = run_generator(sim, node, body())
    assert value == 0
    assert txn.read_versions == {"item-1": 0}


def test_read_unknown_item_raises(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("r", "item-1")]))

    def body():
        yield from db.read(txn, "no-such-item")

    with pytest.raises(UnknownItemError):
        run_generator(sim, node, body())


def test_stage_write_is_deferred(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("w", "item-2", "v")]))
    db.stage_write(txn, "item-2", "v")
    assert txn.write_values == {"item-2": "v"}
    assert db.value_of("item-2") == 0          # nothing installed yet


def test_certification_passes_then_fails_after_conflicting_install(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("r", "item-3"), ("w", "item-3", "mine")]))

    def body():
        yield from db.read(txn, "item-3")

    run_generator(sim, node, body())
    db.stage_write(txn, "item-3", "mine")
    payload = txn.certification_payload()
    assert db.certify(payload) is True

    # A concurrent transaction overwrites item-3 first.
    other = db.begin(make_program([("w", "item-3", "theirs")]), txn_id="s1:999")
    db.stage_write(other, "item-3", "theirs")
    db.install_writes(other.certification_payload())
    assert db.certify(payload) is False


def test_install_writes_assigns_commit_order_and_versions(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("w", "item-4", "a")]))
    db.stage_write(txn, "item-4", "a")
    order = db.install_writes(txn.certification_payload())
    assert order == 1
    assert db.version_of("item-4") == 1
    assert db.value_of("item-4") == "a"
    # An explicit, larger commit order advances the counter.
    other = db.begin(make_program([("w", "item-5", "b")]), txn_id="s1:888")
    db.stage_write(other, "item-5", "b")
    assigned = db.install_writes(other.certification_payload(), commit_order=10)
    assert assigned == 10
    assert db.commit_counter == 10


def test_full_commit_cycle_logs_and_finalizes(db_setup):
    sim, node, db = db_setup
    program = make_program([("r", "item-6"), ("w", "item-7", "v")])
    txn = db.begin(program)

    def body():
        for op in program.operations:
            yield from db.execute_operation(txn, op)
        payload = txn.certification_payload()
        order = db.install_writes(payload)
        yield from db.apply_physical_writes(payload.write_set, synchronous=True)
        yield from db.log_commit(txn, order, synchronous=True)
        db.finalize_commit(txn, order)

    run_generator(sim, node, body())
    assert txn.status is TransactionStatus.COMMITTED
    assert db.committed_count == 1
    assert db.testable.has_committed(txn.txn_id)
    assert db.wal.is_logged(txn.txn_id)


def test_finalize_abort_releases_and_counts(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("w", "item-8", "v")]))
    db.finalize_abort(txn, "certification")
    assert txn.status is TransactionStatus.ABORTED
    assert db.aborted_count == 1
    assert db.certification_aborts == 1
    assert db.testable.outcome(txn.txn_id) == "abort"


def test_locked_write_charges_disk_and_takes_lock(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("w", "item-9", "v")]))

    def body():
        yield from db.write_locked(txn, "item-9", "v")

    run_generator(sim, node, body())
    assert db.locks.holds(txn.txn_id, "item-9")
    assert txn.write_values == {"item-9": "v"}


def test_recovery_replays_only_durable_commits(db_setup):
    sim, node, db = db_setup
    durable = db.begin(make_program([("w", "item-10", "durable")]))
    db.stage_write(durable, "item-10", "durable")
    order = db.install_writes(durable.certification_payload())

    def body():
        yield from db.log_commit(durable, order, synchronous=True)

    run_generator(sim, node, body())

    volatile = db.begin(make_program([("w", "item-11", "volatile")]))
    db.stage_write(volatile, "item-11", "volatile")
    db.install_writes(volatile.certification_payload())

    def body2():
        yield from db.log_commit(volatile, None, synchronous=False)

    run_generator(sim, node, body2())

    node.crash()
    node.recover()
    redone = db.recover()
    assert redone == 1
    assert db.value_of("item-10") == "durable"
    assert db.value_of("item-11") == 0          # never durably logged


def test_crash_listener_resets_lock_table(db_setup):
    sim, node, db = db_setup
    txn = db.begin(make_program([("w", "item-12", "v")]))

    def body():
        yield from db.write_locked(txn, "item-12", "v")

    run_generator(sim, node, body())
    node.crash()
    node.recover()
    assert db.locks.holders("item-12") == {}


def test_logged_transactions_lists_durable_commits(db_setup):
    sim, node, db = db_setup
    assert db.logged_transactions() == []
