"""Tests of the discrete-event simulation engine and its event primitives."""

from __future__ import annotations

import pytest

from repro.sim import (AllOf, AnyOf, EventAlreadyTriggered, SchedulingError,
                       SimulationError, Simulator)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    sim.timeout(5.0).add_callback(lambda event: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (7.0, 3.0, 5.0):
        sim.timeout(delay, value=delay).add_callback(
            lambda event: order.append(event.value))
    sim.run()
    assert order == [3.0, 5.0, 7.0]


def test_ties_broken_by_scheduling_order():
    sim = Simulator()
    order = []
    for tag in ("first", "second", "third"):
        sim.timeout(2.0, value=tag).add_callback(
            lambda event: order.append(event.value))
    sim.run()
    assert order == ["first", "second", "third"]


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(100.0)
    stopped_at = sim.run(until=40.0)
    assert stopped_at == 40.0
    assert sim.now == 40.0
    # The pending event is still runnable afterwards.
    sim.run()
    assert sim.now == 100.0


def test_run_until_in_the_past_rejected():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.run(until=5.0)


def test_event_succeed_carries_value():
    sim = Simulator()
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    event.succeed("payload")
    sim.run()
    assert seen == ["payload"]
    assert event.ok and event.processed


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(EventAlreadyTriggered):
        event.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_event_failure_raises_from_run():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_defused_failure_does_not_raise():
    sim = Simulator()
    event = sim.event()
    event.fail(RuntimeError("boom"))
    event.defuse()
    sim.run()  # must not raise


def test_callback_added_after_processing_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed(42)
    sim.run()
    late = []
    event.add_callback(lambda e: late.append(e.value))
    assert late == [42]


def test_call_after_and_call_at():
    sim = Simulator()
    calls = []
    sim.call_after(3.0, lambda: calls.append(("after", sim.now)))
    sim.call_at(10.0, lambda: calls.append(("at", sim.now)))
    sim.run()
    assert calls == [("after", 3.0), ("at", 10.0)]
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda: None)


def test_all_of_waits_for_every_event():
    sim = Simulator()
    timeouts = [sim.timeout(t, value=t) for t in (1.0, 4.0, 2.0)]
    combined = AllOf(sim, timeouts)
    done_at = []
    combined.add_callback(lambda e: done_at.append(sim.now))
    sim.run()
    assert done_at == [4.0]
    assert sorted(combined.value.values()) == [1.0, 2.0, 4.0]


def test_any_of_fires_on_first_event():
    sim = Simulator()
    slow = sim.timeout(10.0, value="slow")
    fast = sim.timeout(2.0, value="fast")
    combined = AnyOf(sim, [slow, fast])
    done_at = []
    combined.add_callback(lambda e: done_at.append(sim.now))
    sim.run(until=3.0)
    assert done_at == [2.0]
    assert fast in combined.value
    assert slow not in combined.value


def test_empty_all_of_succeeds_immediately():
    sim = Simulator()
    combined = AllOf(sim, [])
    sim.run()
    assert combined.processed and combined.ok


def test_condition_rejects_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(sim_a, [foreign])


def test_step_on_empty_queue_is_an_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_and_queued_events():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(9.0)
    sim.timeout(3.0)
    assert sim.peek() == 3.0
    assert sim.queued_events == 2


def test_run_until_complete_returns_process_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(4.0)
        return "done"

    process = sim.spawn(worker())
    assert sim.run_until_complete(process) == "done"


def test_run_until_complete_detects_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    process = sim.spawn(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(process)


def test_run_until_complete_respects_time_limit():
    sim = Simulator()

    def slow():
        yield sim.timeout(1000.0)

    process = sim.spawn(slow())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_complete(process, limit=10.0)
