"""Edge cases of :meth:`RunStatistics.percentile`."""

from __future__ import annotations

import pytest

from repro.replication import RunStatistics


def make_stats(times):
    stats = RunStatistics("test")
    stats.response_times = list(times)
    return stats


def test_empty_sample_yields_zero():
    assert make_stats([]).percentile(0.5) == 0.0
    assert make_stats([]).percentile(0.0) == 0.0
    assert make_stats([]).percentile(1.0) == 0.0


def test_fraction_zero_is_minimum():
    stats = make_stats([30.0, 10.0, 20.0])
    assert stats.percentile(0.0) == 10.0


def test_fraction_one_is_maximum():
    stats = make_stats([30.0, 10.0, 20.0])
    assert stats.percentile(1.0) == 30.0


def test_single_sample_is_every_percentile():
    stats = make_stats([42.0])
    for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert stats.percentile(fraction) == 42.0


def test_median_interpolates_linearly():
    stats = make_stats([0.0, 10.0])
    assert stats.percentile(0.5) == pytest.approx(5.0)
    assert stats.percentile(0.25) == pytest.approx(2.5)


def test_out_of_range_fraction_raises():
    stats = make_stats([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        stats.percentile(-0.1)
    with pytest.raises(ValueError):
        stats.percentile(1.5)
    # The validation must not depend on the sample being non-empty.
    with pytest.raises(ValueError):
        make_stats([]).percentile(2.0)
