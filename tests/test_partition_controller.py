"""The autobalance controller: triggers, damping, and end-to-end repair."""

from __future__ import annotations

import pytest

from repro.experiments.autobalance import run_autobalance_experiment
from repro.experiments.rebalance import audit_commit_integrity
from repro.partition import (PartitionedCluster, PartitionedOpenLoopClients,
                             RebalanceController)
from repro.workload import SimulationParameters


def build(partitions=2, items=120, technique="group-safe", seed=7,
          **overrides):
    params = SimulationParameters.small(server_count=3, item_count=items)
    if overrides:
        params = params.with_overrides(**overrides)
    cluster = PartitionedCluster(technique, params=params, seed=seed,
                                 partition_count=partitions, strategy="range")
    cluster.start()
    return cluster


def pump(cluster, phases, period_ms, volume=200):
    """Spawn a process noting ``volume`` accesses per window, one phase at
    a time: phases is a list of key lists, cycled every ``period_ms``."""
    def loop():
        index = 0
        while True:
            keys = phases[index % len(phases)]
            for _ in range(volume // len(keys)):
                cluster.routing.note_keys(keys)
            index += 1
            yield cluster.sim.timeout(period_ms)
    return cluster.sim.spawn(loop(), name="test.pump")


# ---------------------------------------------------------------- validation
def test_controller_validates_its_knobs():
    cluster = build()
    with pytest.raises(ValueError):
        RebalanceController(cluster, window_ms=0.0)
    with pytest.raises(ValueError):
        RebalanceController(cluster, share_threshold=1.5)
    with pytest.raises(ValueError):
        RebalanceController(cluster, decay_factor=0.0)


def test_controller_registers_itself_and_starts_idempotently():
    cluster = build()
    controller = RebalanceController(cluster)
    assert cluster.controller is controller
    process = controller.start()
    assert controller.start() is process
    controller.stop()


# ---------------------------------------------------------------- triggering
def test_controller_triggers_on_a_sustained_hot_shard():
    cluster = build(partitions=2, items=120)
    controller = RebalanceController(cluster, window_ms=200.0,
                                     share_threshold=0.6,
                                     min_window_accesses=50)
    controller.start()
    hot_keys = [f"item-{index}" for index in range(10)]
    pump(cluster, [hot_keys], period_ms=200.0)
    cluster.run(until=5_000)
    assert controller.stats.rebalances_triggered >= 1
    report = cluster.migration_reports[0]
    assert report.completed
    assert report.source_group == 0
    assert report.destination_group == 1
    # The hot head itself moved, not the cold half of the shard.
    assert report.key_range.lo == 0


def test_controller_stays_quiet_below_the_threshold():
    cluster = build(partitions=2, items=120)
    controller = RebalanceController(cluster, window_ms=200.0,
                                     share_threshold=0.6,
                                     min_window_accesses=50)
    controller.start()
    # Perfectly balanced accesses: both shards stay under the share bar.
    balanced = [f"item-{index}" for index in (0, 1, 60, 61)]
    pump(cluster, [balanced], period_ms=200.0)
    cluster.run(until=5_000)
    assert controller.stats.rebalances_triggered == 0
    assert controller.stats.skipped_below_threshold > 0
    assert cluster.routing.epoch == 0


def test_controller_ignores_sparse_windows():
    cluster = build(partitions=2, items=120)
    controller = RebalanceController(cluster, window_ms=200.0,
                                     min_window_accesses=1_000)
    controller.start()
    pump(cluster, [[f"item-{index}" for index in range(5)]], period_ms=200.0,
         volume=100)   # heavily skewed, but below the traffic floor
    cluster.run(until=3_000)
    assert controller.stats.rebalances_triggered == 0


# ---------------------------------------------------------------- damping
def test_hysteresis_does_not_remove_a_recently_moved_range():
    cluster = build(partitions=2, items=120)
    controller = RebalanceController(cluster, window_ms=200.0,
                                     share_threshold=0.6,
                                     cooldown_windows=0,
                                     hysteresis_windows=8,
                                     min_window_accesses=50)
    controller.start()
    # A single red-hot key: the weighted-median split isolates it in a
    # width-1 shard that stays ~100% of the load wherever it lives, so a
    # controller without hysteresis would bounce it between the groups
    # every window.  Hysteresis must refuse to chase it for 8 windows
    # after each move.
    pump(cluster, [["item-0"]], period_ms=200.0)
    cluster.run(until=4_000)              # ~19 windows
    stats = controller.stats
    assert stats.rebalances_triggered <= 3
    assert stats.skipped_hysteresis >= 8


def test_alternating_hotspot_does_not_ping_pong_every_window():
    cluster = build(partitions=2, items=120)
    window_ms = 200.0
    controller = RebalanceController(cluster, window_ms=window_ms,
                                     share_threshold=0.55,
                                     cooldown_windows=2,
                                     hysteresis_windows=4,
                                     min_window_accesses=50)
    controller.start()
    # The hotspot flips between the two shards every window — the worst
    # case for a naive "move the hottest shard each window" controller,
    # which would trigger ~every window.
    head_a = [f"item-{index}" for index in range(6)]
    head_b = [f"item-{index}" for index in range(60, 66)]
    pump(cluster, [head_a, head_b], period_ms=window_ms)
    cluster.run(until=6_000)              # ~29 windows
    stats = controller.stats
    assert stats.windows_observed >= 25
    # Damping holds: far fewer moves than windows, and both damping
    # mechanisms measurably intervened.
    assert stats.rebalances_triggered <= stats.windows_observed // 4
    assert stats.skipped_cooldown > 0
    assert len(stats.moves) == stats.rebalances_triggered


def test_cooldown_spaces_out_triggers():
    cluster = build(partitions=2, items=120)
    controller = RebalanceController(cluster, window_ms=200.0,
                                     share_threshold=0.55,
                                     cooldown_windows=5,
                                     hysteresis_windows=0,
                                     min_window_accesses=50)
    controller.start()
    hot_keys = [f"item-{index}" for index in range(6)]
    pump(cluster, [hot_keys], period_ms=200.0)
    cluster.run(until=4_200)              # ~20 windows
    stats = controller.stats
    # With a 5-window cooldown at most every 6th window can trigger.
    assert stats.rebalances_triggered <= 1 + stats.windows_observed // 6
    assert stats.skipped_cooldown > 0


# ---------------------------------------------------------------- end to end
def test_controller_repairs_a_hotspot_shift_under_load():
    outcome = run_autobalance_experiment(
        controlled=True, partitions=4, items=240, load_tps=100.0,
        duration_ms=14_000.0, recovery_ms=10_000.0, seed=5)
    stats = outcome.controller_stats
    assert stats is not None and stats.rebalances_triggered >= 1
    assert outcome.completed_migrations
    assert all(report.verified for report in outcome.completed_migrations)
    # Zero lost / duplicated commits across every controller-driven move.
    assert outcome.audit_ok, outcome.audit_failures
    # The decayed counters rolled (the controller closes one window per
    # evaluation) and the decisions landed in the statistics.
    assert outcome.statistics.controller is stats
    assert outcome.statistics.windows_rolled >= stats.windows_observed


def test_static_run_collects_no_controller_stats():
    outcome = run_autobalance_experiment(
        controlled=False, partitions=2, items=120, load_tps=40.0,
        duration_ms=6_000.0, shift_at_ms=3_000.0, recovery_ms=4_500.0,
        warmup_ms=1_000.0)
    assert outcome.controller_stats is None
    assert outcome.statistics.controller is None
    assert not outcome.migrations


def test_controlled_cluster_keeps_commit_integrity_with_open_loop_load():
    cluster = build(partitions=4, items=240, zipf_skew=1.1,
                    cross_partition_probability=0.05)
    controller = RebalanceController(cluster, window_ms=400.0,
                                     share_threshold=0.45,
                                     min_window_accesses=32)
    controller.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=80.0)
    clients.start()
    cluster.run(until=10_000)
    assert controller.stats.rebalances_triggered >= 1
    assert audit_commit_integrity(cluster, clients) == []
