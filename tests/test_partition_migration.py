"""Live key migration: atomicity across crashes, fences and epoch retries.

The acceptance properties of online shard migration:

* a migration that completes under sustained load loses no committed write
  and duplicates none (per-key commit audit);
* a crash *before* the epoch bump leaves the old owner authoritative — on
  disk (WAL reconstruction) and live (the driver aborts and unfences);
* a crash *after* the bump leaves the new owner authoritative;
* transactions routed against a stale epoch are retried, not lost.
"""

from __future__ import annotations

import pytest

from repro.db.operations import make_program
from repro.db.wal import LogRecordType
from repro.experiments import audit_commit_integrity
from repro.partition import (ABORT_WRONG_EPOCH, KeyRange, PartitionedCluster,
                             PartitionedOpenLoopClients)
from repro.workload import SimulationParameters


def build(partitions=2, technique="group-safe", seed=11, items=120,
          **overrides):
    params = SimulationParameters.small(server_count=3, item_count=items)
    if overrides:
        params = params.with_overrides(**overrides)
    cluster = PartitionedCluster(technique, params=params, seed=seed,
                                 partition_count=partitions, strategy="range")
    cluster.start()
    return cluster


# ---------------------------------------------------------------- live migration
def test_live_migration_under_load_moves_ownership_without_losses():
    cluster = build(items=120, cross_partition_probability=0.1)
    clients = PartitionedOpenLoopClients(cluster, load_tps=40.0)
    clients.start()
    cluster.run(until=1_500)
    driver = cluster.migrate(0, destination_group=1)   # move shard [0, 60)
    cluster.run(until=10_000)

    report = driver.value
    assert report.completed and not report.aborted
    assert report.verified
    assert report.keys_copied == 60
    assert cluster.routing.epoch == 1
    assert cluster.partition_of("item-10") == 1
    # The load never stopped: commits span both epochs.
    assert clients.epoch_commits.get(0, 0) > 0
    assert clients.epoch_commits.get(1, 0) > 0
    # Zero lost / duplicated commits (per-key commit audit).
    assert audit_commit_integrity(cluster, clients) == []
    # The copy/forward machinery is internal work, never a fast-path result.
    assert cluster.migration_txn_ids
    fast_path_ids = {result.txn_id
                     for result in cluster.all_single_partition_results()}
    assert not cluster.migration_txn_ids & fast_path_ids


def test_migrated_key_is_served_by_the_new_owner():
    cluster = build()
    driver = cluster.migrate(0, destination_group=1)
    cluster.run(until=5_000)
    assert driver.value.completed
    waiter = cluster.run_transaction(make_program([("w", "item-10", "moved")]))
    cluster.run(until=8_000)
    assert waiter.value.committed
    assert waiter.value.delegate.startswith("p1.")
    group = cluster.group(1)
    assert any(group.database(name).value_of("item-10") == "moved"
               for name in group.server_names())


def test_in_flight_write_at_migration_start_is_dual_written():
    # A write submitted *before* the migration begins predates the
    # dual-write window; the driver must register it retroactively so the
    # fence drain waits it out and its value reaches the destination.
    cluster = build()
    waiter = cluster.run_transaction(
        make_program([("r", "item-10"), ("w", "item-10", "inflight")]))
    cluster.run(until=1.0)               # submitted, still reading (>= 4 ms)
    assert not waiter.triggered
    driver = cluster.migrate(0, destination_group=1)
    cluster.run(until=10_000)
    assert waiter.value.committed
    report = driver.value
    assert report.completed and report.verified
    assert report.forwarded_writes >= 1
    for name in cluster.group(1).server_names():
        assert cluster.group(1).database(name).value_of("item-10") == \
            "inflight"


def test_migration_copies_committed_values_to_the_destination():
    cluster = build()
    waiter = cluster.run_transaction(make_program([("w", "item-5", "before")]))
    cluster.run(until=2_000)
    assert waiter.value.committed
    driver = cluster.migrate(0, destination_group=1)
    cluster.run(until=8_000)
    assert driver.value.completed and driver.value.verified
    for name in cluster.group(1).server_names():
        assert cluster.group(1).database(name).value_of("item-5") == "before"


# ---------------------------------------------------------------- crash atomicity
def test_crash_before_epoch_bump_leaves_the_old_owner_serving():
    cluster = build()
    driver = cluster.migrate(0, destination_group=1)
    cluster.run(until=50)               # mid warm copy (60 keys, ~8 ms reads)
    assert not driver.triggered
    cluster.crash_partition(1)          # destination dies before the bump
    cluster.run(until=15_000)

    report = driver.value
    assert report.aborted and not report.completed
    assert cluster.routing.epoch == 0
    assert not cluster.routing.has_fences
    # Live: the old owner still serves the range.
    waiter = cluster.run_transaction(make_program([("w", "item-10", "kept")]))
    cluster.run(until=18_000)
    assert waiter.value.committed
    assert waiter.value.delegate.startswith("p0.")
    # On disk: a restarted cluster recovers the old ownership map.
    assert cluster.recovered_routing().partition_of("item-10") == 0


def test_crash_after_epoch_bump_recovers_the_new_owner():
    cluster = build()
    driver = cluster.migrate(0, destination_group=1)
    cluster.run(until=5_000)
    assert driver.value.completed
    # Even a full outage of the *old* owner leaves the range served: the
    # durable EPOCH record on the destination is the authority.
    cluster.crash_partition(0)
    recovered = cluster.recovered_routing()
    assert recovered.epoch == cluster.routing.epoch
    assert recovered.partition_of("item-10") == 1
    waiter = cluster.run_transaction(make_program([("w", "item-10", "new")]))
    cluster.run(until=8_000)
    assert waiter.value.committed
    assert waiter.value.delegate.startswith("p1.")


def test_no_transaction_commits_on_both_sides_of_a_migration():
    cluster = build(cross_partition_probability=0.2, items=120)
    clients = PartitionedOpenLoopClients(cluster, load_tps=40.0)
    clients.start()
    cluster.run(until=1_000)
    cluster.migrate(0, destination_group=1)
    cluster.run(until=8_000)
    failures = [failure
                for failure in audit_commit_integrity(cluster, clients)
                if "duplicated" in failure or "lost" in failure]
    assert failures == []


# ---------------------------------------------------------------- epoch retries
def test_fenced_range_submissions_retry_and_then_commit():
    cluster = build()
    fenced = KeyRange(0, 60)
    cluster.routing.fence(fenced)
    waiter = cluster.run_transaction(make_program([("w", "item-10", "v")]))
    cluster.run(until=100)
    assert not waiter.triggered          # parked in the retry loop
    assert cluster.router.wrong_epoch_retries > 0
    cluster.routing.unfence(fenced)
    cluster.run(until=3_000)
    assert waiter.value.committed


def test_fenced_range_submissions_eventually_give_up():
    cluster = build()
    cluster.routing.fence(KeyRange(0, 60))
    waiter = cluster.run_transaction(make_program([("w", "item-10", "v")]))
    cluster.run(until=60_000)            # far beyond the retry budget
    result = waiter.value
    assert not result.committed
    assert result.abort_reason == "wrong-epoch"


def test_coordinator_aborts_wrong_epoch_when_ownership_moves_mid_prepare():
    # Deterministic read times stretch the prepare window; the ownership
    # map moves while the branches are still reading.
    cluster = build(read_time_min=5.0, read_time_max=5.0,
                    buffer_hit_ratio=0.0)
    operations = [("r", "item-10")]
    operations += [("r", f"item-{70 + index}") for index in range(10)]
    operations += [("w", "item-10", "x0"), ("w", "item-90", "x1")]
    waiter = cluster.run_transaction(make_program(operations))
    cluster.sim.call_after(
        10.0, lambda: cluster.routing.migrate(KeyRange(0, 60), 1))
    cluster.run(until=10_000)
    # The first attempt aborted with the wrong-epoch reason, then the retry
    # (routed by the new map, where every key lives on group 1) committed.
    assert cluster.coordinator.wrong_epoch_aborts >= 1
    assert cluster.router.wrong_epoch_retries >= 1
    assert any(outcome.abort_reason == ABORT_WRONG_EPOCH
               for outcome in cluster.cross_partition_outcomes())
    assert waiter.value.committed


# ---------------------------------------------------------------- reshaping
def test_split_and_merge_are_live_metadata_operations():
    cluster = build()
    assert cluster.split_shard(0, at=30) == 1
    assert cluster.routing.shard_count == 3
    waiter = cluster.run_transaction(make_program([("w", "item-10", "v")]))
    cluster.run(until=2_000)
    assert waiter.value.committed        # routing still total after the split
    assert cluster.merge_shards(0) == 2
    assert cluster.routing.shard_count == 2
    # The reshapes left advisory EPOCH records on the owner's WAL.
    records = [record
               for name in cluster.group(0).server_names()
               for record in (cluster.group(0).database(name).wal
                              .stable_records() +
                              cluster.group(0).database(name).wal
                              .volatile_records())]
    assert any(record.record_type is LogRecordType.EPOCH
               for record in records)


def test_concurrent_migrations_are_refused():
    cluster = build(items=200, partitions=4)
    cluster.migrate(0, destination_group=3)
    with pytest.raises(RuntimeError):
        cluster.migrate(1, destination_group=2)


# ---------------------------------------------------------------- overlapped copy
def test_overlapped_copy_keeps_chunks_in_flight_and_stays_atomic():
    # The copy phase issues up to copy_concurrency chunk transactions at
    # once; the per-key commit audit must still find zero lost / duplicated
    # commits, and the under-fence verification must still pass.
    cluster = build(items=120, cross_partition_probability=0.1)
    clients = PartitionedOpenLoopClients(cluster, load_tps=40.0)
    clients.start()
    cluster.run(until=1_500)
    driver = cluster.migrate(0, destination_group=1, chunk_size=8,
                             copy_concurrency=4)
    cluster.run(until=10_000)

    report = driver.value
    assert report.completed and report.verified
    assert report.keys_copied == 60
    assert report.copy_chunks == 8               # ceil(60 / 8)
    assert report.copy_concurrency == 4
    assert report.copy_inflight_peak > 1         # genuinely overlapped
    assert 0 < report.copy_duration_ms <= report.duration_ms
    assert audit_commit_integrity(cluster, clients) == []


def test_overlapped_copy_is_faster_than_the_serial_copy():
    def copy_duration(copy_concurrency):
        cluster = build(items=120)
        driver = cluster.migrate(0, destination_group=1, chunk_size=8,
                                 copy_concurrency=copy_concurrency)
        cluster.run(until=20_000)
        report = driver.value
        assert report.completed and report.verified
        return report.copy_duration_ms

    serial = copy_duration(1)
    overlapped = copy_duration(4)
    # Overlapping the destination's commit latency across 8 chunks must cut
    # the copy phase decisively, not marginally.
    assert overlapped < 0.6 * serial


def test_copy_throttle_paces_the_chunk_dispatch():
    # With the token budget pinned to a trickle, the copy must wait between
    # chunks and account for it.
    cluster = build(items=120)
    driver = cluster.migrate(0, destination_group=1, chunk_size=8,
                             copy_concurrency=2, copy_budget_tps=10.0,
                             copy_min_tps=10.0)
    cluster.run(until=20_000)
    report = driver.value
    assert report.completed and report.verified
    assert report.throttle_waits > 0
    assert report.throttle_wait_ms > 0
    # 8 chunks at 10 dispatches/s: the copy phase spans several hundred ms.
    assert report.copy_duration_ms > 300.0


def test_rebalance_moves_the_hot_head_to_the_coolest_group():
    cluster = build(partitions=4, items=200, zipf_skew=1.1)
    clients = PartitionedOpenLoopClients(cluster, load_tps=60.0)
    clients.start()
    cluster.run(until=2_000)
    driver = cluster.rebalance()
    cluster.run(until=12_000)
    report = driver.value
    assert report.completed
    assert report.source_group == 0          # the Zipf head lived on g0
    assert report.destination_group != 0
    assert report.key_range.lo == 0          # the head itself moved
    assert cluster.partition_of("item-0") == report.destination_group
    assert audit_commit_integrity(cluster, clients) == []
