"""Runtime semantics of the @implements/@uses layer declarations, and the
annotations actually attached to the protocol stack."""

from __future__ import annotations

import pytest

from repro.core.layers import (LAYER_ORDER, implemented_layers, implements,
                               layer_index, used_layers, uses)


def test_layer_order_is_the_paper_stack_bottom_up():
    assert LAYER_ORDER == ("links", "failure_detector", "reliable_broadcast",
                          "total_order", "membership", "replication")
    assert [layer_index(layer) for layer in LAYER_ORDER] == list(range(6))


def test_unknown_layer_rejected_at_decoration_time():
    with pytest.raises(ValueError, match="unknown protocol layer"):
        layer_index("transport")
    with pytest.raises(ValueError):
        implements("transport")
    with pytest.raises(ValueError):
        uses("session")


def test_decorators_attach_metadata_and_return_the_class():
    @implements("total_order")
    @uses("links")
    @uses("membership")
    class Endpoint:
        pass

    assert set(implemented_layers(Endpoint)) == {"total_order"}
    assert set(used_layers(Endpoint)) == {"links", "membership"}
    assert Endpoint.__name__ == "Endpoint"


def test_declarations_do_not_leak_to_subclasses():
    @implements("links")
    class Base:
        pass

    class Child(Base):
        pass

    assert implemented_layers(Base) == ("links",)
    assert implemented_layers(Child) == ()
    assert used_layers(Child) == ()

    @implements("failure_detector")
    class AnnotatedChild(Base):
        pass

    # The child's own declaration, not Base's plus its own.
    assert implemented_layers(AnnotatedChild) == ("failure_detector",)


def test_protocol_stack_is_annotated():
    from repro.gcs.failure_detector import FailureDetector
    from repro.gcs.fixed_sequencer import FixedSequencerEngine
    from repro.gcs.membership import GroupMembership
    from repro.gcs.paxos import MultiPaxosEngine
    from repro.gcs.reliable_broadcast import ReliableBroadcastLayer
    from repro.network.lan import Lan
    from repro.replication.dbsm import DatabaseStateMachineReplica
    from repro.replication.group_safe import GroupSafeReplica

    assert implemented_layers(Lan) == ("links",)
    assert implemented_layers(FailureDetector) == ("failure_detector",)
    assert implemented_layers(ReliableBroadcastLayer) == \
        ("reliable_broadcast",)
    assert used_layers(ReliableBroadcastLayer) == ("links",)
    assert implemented_layers(FixedSequencerEngine) == ("total_order",)
    assert used_layers(FixedSequencerEngine) == ("reliable_broadcast",)
    assert implemented_layers(MultiPaxosEngine) == ("total_order",)
    assert set(used_layers(MultiPaxosEngine)) == \
        {"reliable_broadcast", "failure_detector"}
    assert implemented_layers(GroupMembership) == ("membership",)
    assert used_layers(GroupMembership) == ("failure_detector",)
    assert implemented_layers(DatabaseStateMachineReplica) == ("replication",)
    assert used_layers(DatabaseStateMachineReplica) == ("total_order",)
    assert implemented_layers(GroupSafeReplica) == ("replication",)
