"""Tests of the safety levels, criteria and the Table 1/2/3 derivations."""

from __future__ import annotations

import pytest

from repro.core import (CRITERIA, TECHNIQUE_SAFETY, DeliveredOn, LoggedOn,
                        SafetyLevel, classify, classify_notification,
                        crash_tolerance_table, criterion_for,
                        group_safety_comparison_table, loss_condition,
                        render_loss_table, render_safety_matrix,
                        safety_matrix, safety_of_technique)


# --------------------------------------------------------------------- Table 1
def test_table1_matrix_matches_the_paper():
    matrix = safety_matrix()
    assert matrix[(DeliveredOn.ONE, LoggedOn.NONE)] is SafetyLevel.ZERO_SAFE
    assert matrix[(DeliveredOn.ONE, LoggedOn.ONE)] is SafetyLevel.ONE_SAFE
    assert matrix[(DeliveredOn.ONE, LoggedOn.ALL)] is None       # greyed out
    assert matrix[(DeliveredOn.ALL, LoggedOn.NONE)] is SafetyLevel.GROUP_SAFE
    assert matrix[(DeliveredOn.ALL, LoggedOn.ONE)] is SafetyLevel.GROUP_ONE_SAFE
    assert matrix[(DeliveredOn.ALL, LoggedOn.ALL)] is SafetyLevel.TWO_SAFE


def test_classify_round_trips_with_level_axes():
    for level in (SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE,
                  SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE,
                  SafetyLevel.TWO_SAFE):
        assert classify(level.delivered_on, level.logged_on) is level


def test_classify_notification_from_runtime_flags():
    assert classify_notification(False, False) is SafetyLevel.ZERO_SAFE
    assert classify_notification(False, True) is SafetyLevel.ONE_SAFE
    assert classify_notification(True, False) is SafetyLevel.GROUP_SAFE
    assert classify_notification(True, True) is SafetyLevel.GROUP_ONE_SAFE
    assert classify_notification(True, True, logged_on_all=True) is SafetyLevel.TWO_SAFE
    # The impossible runtime combination degrades conservatively.
    assert classify_notification(False, False,
                                 logged_on_all=True) is SafetyLevel.ONE_SAFE


def test_render_safety_matrix_mentions_every_level():
    rendering = render_safety_matrix()
    for level in ("0-safe", "1-safe", "group-safe", "group-1-safe", "2-safe"):
        assert level in rendering


# --------------------------------------------------------------------- Table 2
def test_table2_tolerated_crashes():
    n = 9
    assert SafetyLevel.ZERO_SAFE.tolerated_crashes(n) == 0
    assert SafetyLevel.ONE_SAFE.tolerated_crashes(n) == 0
    assert SafetyLevel.GROUP_SAFE.tolerated_crashes(n) == n - 1
    assert SafetyLevel.GROUP_ONE_SAFE.tolerated_crashes(n) == n - 1
    assert SafetyLevel.TWO_SAFE.tolerated_crashes(n) == n
    assert SafetyLevel.VERY_SAFE.tolerated_crashes(n) == n
    with pytest.raises(ValueError):
        SafetyLevel.TWO_SAFE.tolerated_crashes(0)


def test_table2_rows_group_levels_as_in_the_paper():
    rows = crash_tolerance_table(group_size=9)
    by_label = {row.tolerated_crashes: set(row.levels) for row in rows}
    assert by_label["0 crashes"] == {SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE}
    assert by_label["less than 9 crashes"] == {SafetyLevel.GROUP_SAFE,
                                               SafetyLevel.GROUP_ONE_SAFE}
    assert by_label["9 crashes"] == {SafetyLevel.TWO_SAFE}


# --------------------------------------------------------------------- Table 3
def test_table3_loss_conditions_match_the_paper():
    # Group-safe row: loss possible whenever the group fails.
    assert not loss_condition(SafetyLevel.GROUP_SAFE, False, False)
    assert loss_condition(SafetyLevel.GROUP_SAFE, True, False)
    assert loss_condition(SafetyLevel.GROUP_SAFE, True, True)
    # Group-1-safe row: loss additionally needs the delegate to crash.
    assert not loss_condition(SafetyLevel.GROUP_ONE_SAFE, False, False)
    assert not loss_condition(SafetyLevel.GROUP_ONE_SAFE, True, False)
    assert loss_condition(SafetyLevel.GROUP_ONE_SAFE, True, True)
    # 2-safe never loses; 1-safe loses as soon as the delegate crashes.
    assert not loss_condition(SafetyLevel.TWO_SAFE, True, True)
    assert loss_condition(SafetyLevel.ONE_SAFE, False, True)


def test_table3_cells_and_rendering():
    cells = group_safety_comparison_table()
    assert len(cells) == 6
    middle_group_safe = next(
        cell for cell in cells
        if cell.level is SafetyLevel.GROUP_SAFE and cell.group_fails
        and not cell.delegate_crashes)
    middle_group_1_safe = next(
        cell for cell in cells
        if cell.level is SafetyLevel.GROUP_ONE_SAFE and cell.group_fails
        and not cell.delegate_crashes)
    # The middle column is exactly where the two criteria differ.
    assert middle_group_safe.possible_loss
    assert not middle_group_1_safe.possible_loss
    rendering = render_loss_table()
    assert "Possible Transaction Loss" in rendering
    assert "No Transaction Loss" in rendering


# ----------------------------------------------------------------- levels / criteria
def test_strength_ordering_and_reliance():
    assert SafetyLevel.TWO_SAFE.is_at_least(SafetyLevel.GROUP_SAFE)
    assert SafetyLevel.GROUP_ONE_SAFE.is_at_least(SafetyLevel.GROUP_SAFE)
    assert not SafetyLevel.ONE_SAFE.is_at_least(SafetyLevel.GROUP_SAFE)
    assert SafetyLevel.GROUP_SAFE.relies_on_group
    assert not SafetyLevel.GROUP_SAFE.relies_on_stable_storage
    assert SafetyLevel.TWO_SAFE.relies_on_stable_storage
    assert str(SafetyLevel.GROUP_SAFE) == "group-safe"


def test_criteria_catalogue_is_complete_and_quotable():
    assert set(CRITERIA) == set(SafetyLevel)
    statement = criterion_for(SafetyLevel.GROUP_SAFE).statement
    assert "delivered" in statement and "available servers" in statement


def test_technique_safety_mapping():
    assert safety_of_technique("group-safe") is SafetyLevel.GROUP_SAFE
    assert safety_of_technique("1-safe") is SafetyLevel.ONE_SAFE
    assert safety_of_technique("2-safe") is SafetyLevel.TWO_SAFE
    assert set(TECHNIQUE_SAFETY) == {"0-safe", "1-safe", "group-safe",
                                     "group-1-safe", "2-safe"}
    with pytest.raises(ValueError):
        safety_of_technique("3-safe")
