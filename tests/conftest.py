"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network import Lan, Node
from repro.replication import ReplicatedDatabaseCluster
from repro.sim import Simulator
from repro.workload import SimulationParameters


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def small_params() -> SimulationParameters:
    """A scaled-down Table 4 configuration for fast tests."""
    return SimulationParameters.small(server_count=3, item_count=100,
                                      clients_per_server=2)


@pytest.fixture
def lan_with_nodes(sim):
    """A LAN with three attached nodes named s1, s2, s3."""
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, 4)]
    return lan, nodes


def build_cluster(technique: str, seed: int = 7,
                  params: SimulationParameters | None = None,
                  **overrides) -> ReplicatedDatabaseCluster:
    """Helper used by many tests: a started small cluster of one technique."""
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=100)
    if overrides:
        parameters = parameters.with_overrides(**overrides)
    cluster = ReplicatedDatabaseCluster(technique, params=parameters, seed=seed)
    cluster.start()
    return cluster


@pytest.fixture
def cluster_factory():
    """Factory fixture returning :func:`build_cluster`."""
    return build_cluster
