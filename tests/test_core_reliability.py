"""Tests of the Sect. 7 reliability / scaling analysis."""

from __future__ import annotations

import pytest

from repro.core import (acid_violation_probability, group_failure_probability,
                        lazy_conflict_probability,
                        pairwise_conflict_probability, scaling_comparison)


def test_group_failure_probability_bounds_and_monotonicity():
    assert group_failure_probability(3, 0.0) == 0.0
    assert group_failure_probability(3, 1.0) == pytest.approx(1.0)
    # More servers (same per-server unavailability) -> less likely quorum loss.
    values = [group_failure_probability(n, 0.05) for n in (3, 5, 7, 9, 11)]
    assert all(later < earlier for earlier, later in zip(values, values[1:]))
    assert all(0.0 <= value <= 1.0 for value in values)


def test_group_failure_probability_simple_case():
    # n=3, quorum=2: the group fails if 2 or 3 servers are down.
    p = 0.1
    expected = 3 * p**2 * (1 - p) + p**3
    assert group_failure_probability(3, p) == pytest.approx(expected)


def test_group_failure_probability_validation():
    with pytest.raises(ValueError):
        group_failure_probability(0, 0.1)
    with pytest.raises(ValueError):
        group_failure_probability(3, 1.5)


def test_pairwise_conflict_probability_behaviour():
    assert pairwise_conflict_probability(0, 1000) == 0.0
    small = pairwise_conflict_probability(5, 10_000)
    large = pairwise_conflict_probability(10, 10_000)
    assert 0.0 < small < large < 1.0
    with pytest.raises(ValueError):
        pairwise_conflict_probability(5, 0)


def test_lazy_conflict_probability_grows_with_server_count():
    values = [lazy_conflict_probability(n, per_server_tps=30.0 / n,
                                        propagation_delay_ms=250.0,
                                        writes_per_transaction=7.5,
                                        item_count=10_000)
              for n in (2, 4, 8, 16)]
    assert all(later > earlier for earlier, later in zip(values, values[1:]))
    assert lazy_conflict_probability(1, 30.0, 250.0, 7.5, 10_000) == 0.0


def test_acid_violation_probability_dispatch():
    lazy = acid_violation_probability("1-safe", 9)
    group = acid_violation_probability("group-safe", 9)
    assert 0.0 <= lazy <= 1.0 and 0.0 <= group <= 1.0
    assert acid_violation_probability("2-safe", 9) == 0.0
    assert acid_violation_probability("group-1-safe", 9) == group
    with pytest.raises(ValueError):
        acid_violation_probability("nonsense", 9)


def test_scaling_comparison_reproduces_the_papers_argument():
    points = scaling_comparison([3, 5, 7, 9, 11, 13, 15])
    lazy_curve = [point.lazy_violation_probability for point in points]
    group_curve = [point.group_safe_violation_probability for point in points]
    # Lazy gets worse with more servers, group-safe gets better.
    assert all(b >= a for a, b in zip(lazy_curve, lazy_curve[1:]))
    assert all(b <= a for a, b in zip(group_curve, group_curve[1:]))
    # For large enough groups group-safe is the safer choice.
    assert points[-1].group_safe_wins
