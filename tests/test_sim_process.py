"""Tests of generator-based processes: completion, interrupts, kills, errors."""

from __future__ import annotations

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


def test_process_completes_with_return_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)
        return "result"

    process = sim.spawn(worker())
    sim.run()
    assert process.triggered and process.ok
    assert process.value == "result"
    assert not process.is_alive


def test_process_requires_a_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_waiting_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 21

    def parent():
        value = yield sim.spawn(child())
        return value * 2

    process = sim.spawn(parent())
    sim.run()
    assert process.value == 42
    assert sim.now == 3.0


def test_exception_inside_process_propagates_to_waiter():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("inner failure")

    def waiter():
        try:
            yield sim.spawn(failing())
        except ValueError as error:
            return f"caught {error}"

    process = sim.spawn(waiter())
    sim.run()
    assert process.value == "caught inner failure"


def test_unhandled_process_exception_raises_at_run():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise ValueError("nobody catches this")

    sim.spawn(failing())
    with pytest.raises(ValueError, match="nobody catches this"):
        sim.run()


def test_interrupt_is_delivered_as_exception():
    sim = Simulator()

    def worker():
        try:
            yield sim.timeout(100.0)
            return "finished"
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    process = sim.spawn(worker())
    sim.call_after(5.0, lambda: process.interrupt("please stop"))
    sim.run()
    assert process.value == ("interrupted", "please stop", 5.0)


def test_interrupting_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return "ok"

    process = sim.spawn(quick())
    sim.run()
    process.interrupt("late")  # must not raise
    assert process.value == "ok"


def test_kill_terminates_without_resuming():
    sim = Simulator()
    progress = []

    def worker():
        progress.append("started")
        yield sim.timeout(50.0)
        progress.append("should never happen")

    process = sim.spawn(worker())
    sim.call_after(10.0, lambda: process.kill("crash"))
    sim.run()
    assert progress == ["started"]
    assert process.triggered and not process.ok
    assert isinstance(process.value, Interrupt)


def test_killed_process_does_not_raise_at_top_level():
    sim = Simulator()

    def worker():
        yield sim.timeout(50.0)

    process = sim.spawn(worker())
    sim.call_after(1.0, lambda: process.kill())
    sim.run()  # must not raise even though nobody waits on the process


def test_process_must_yield_events():
    sim = Simulator()

    def bad():
        yield "not an event"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_cannot_yield_foreign_events():
    sim_a, sim_b = Simulator(), Simulator()

    def bad():
        yield sim_b.timeout(1.0)

    sim_a.spawn(bad())
    with pytest.raises(SimulationError):
        sim_a.run()


def test_active_process_visible_during_step():
    sim = Simulator()
    seen = []

    def worker():
        seen.append(sim.active_process)
        yield sim.timeout(1.0)

    process = sim.spawn(worker())
    sim.run()
    assert seen == [process]
    assert sim.active_process is None
