"""Tests for the observability stack: tracer, metrics, exporters, profiling.

Four contracts are enforced here:

* **Determinism** — enabling the span tracer must not change the simulation
  schedule: the kernel event-trace digest and the run statistics of a mixed
  2PC + migration scenario are bit-identical with tracing off and on.
* **Reconciliation** — every committed transaction's root span measures
  exactly the client-observed response time, and its critical-path stage
  breakdown sums back to that duration within 1e-6 ms.
* **Exactness of the primitives** — histogram bucket edges, registry handle
  identity, the shared percentile helper, and the critical-path sweep on a
  hand-built span tree all produce the predicted numbers.
* **Export schema** — the Chrome trace-event payload validates cleanly and
  the validator rejects malformed events.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.core.stats import percentile, summarize
from repro.experiments.traced import run_traced_scenario
from repro.obs.export import (chrome_trace, critical_path_report,
                              validate_chrome_trace)
from repro.obs.kernel import profile_kernel_trace, render_kernel_profile
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS_MS, Histogram,
                               MetricsRegistry)
from repro.obs.tracer import Observability, STAGES
from repro.partition.cluster import PartitionedCluster
from repro.partition.workload import PartitionedOpenLoopClients
from repro.replication.results import RunStatistics
from repro.sim.engine import Simulator
from repro.sim.events import NORMAL_BIAS
from repro.sim.monitor import Tally
from repro.workload.params import SimulationParameters


class FakeSim:
    """Just enough of a simulator for unit-level tracer tests."""

    def __init__(self) -> None:
        self.now = 0.0
        self.obs = None


# --------------------------------------------------------------- determinism
def _mixed_digest(observability: bool):
    """Run the mixed 2PC + migration scenario, return (digest, stats)."""
    params = SimulationParameters.small(
        server_count=3, item_count=240).with_overrides(
        partition_count=4, zipf_skew=1.1, cross_partition_probability=0.1)
    cluster = PartitionedCluster("group-safe", params=params, seed=7,
                                 strategy="range")
    trace = cluster.sim.enable_trace()
    if observability:
        cluster.enable_observability()
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=120.0)
    clients.start()
    cluster.run(until=1200.0)
    cluster.rebalance()
    cluster.run(until=2500.0)
    digest = hashlib.sha256()
    for entry in trace:
        digest.update(repr(entry).encode())
    committed_rt = sum(result.response_time for result in clients.results
                      if result.committed)
    return (digest.hexdigest(), cluster.sim.scheduled_events,
            clients.committed_count, committed_rt)


class TestTracerDeterminism:
    def test_tracing_does_not_change_the_schedule(self):
        """The observation-only license: identical digests off and on."""
        assert _mixed_digest(False) == _mixed_digest(True)

    def test_disabled_tracer_records_nothing(self):
        sim = Simulator(seed=1)
        assert sim.obs is None


# ------------------------------------------------- traced scenario (shared)
@pytest.fixture(scope="module")
def traced_run():
    """One traced 2PC + migration run shared by the reconciliation tests."""
    return run_traced_scenario(seed=7, rebalance_at_ms=1200.0,
                               duration_ms=2500.0)


class TestCriticalPathReconciliation:
    def test_stages_sum_to_duration_for_every_closed_root(self, traced_run):
        obs, _stats, _clients = traced_run
        closed = [root for root in obs.roots() if root.closed]
        assert closed, "the traced scenario produced no closed root spans"
        for root in closed:
            stages = obs.critical_path(root)
            assert set(stages) == set(STAGES)
            assert sum(stages.values()) == pytest.approx(root.duration,
                                                         abs=1e-6)

    def test_root_span_duration_is_the_response_time(self, traced_run):
        obs, _stats, clients = traced_run
        checked = 0
        for result in clients.single_results:
            if not result.committed:
                continue
            root = obs.span_for(("txn", result.txn_id))
            assert root is not None and root.closed
            assert root.duration == pytest.approx(result.response_time,
                                                  abs=1e-6)
            checked += 1
        for outcome in clients.cross_results:
            if not outcome.committed:
                continue
            root = obs.span_for(("xp", outcome.xid))
            assert root is not None and root.closed
            assert root.duration == pytest.approx(outcome.response_time,
                                                  abs=1e-6)
            checked += 1
        assert checked > 0

    def test_committed_transactions_have_complete_span_trees(self,
                                                             traced_run):
        obs, _stats, clients = traced_run
        for result in clients.single_results:
            if not result.committed:
                continue
            root = obs.span_for(("txn", result.txn_id))
            children = obs.children_of(root)
            assert children, f"committed {result.txn_id} has no child spans"
            assert all(child.closed for child in obs.descendants(root))
        cross_committed = [outcome for outcome in clients.cross_results
                           if outcome.committed]
        assert cross_committed, "scenario produced no committed 2PC txns"
        for outcome in cross_committed:
            root = obs.span_for(("xp", outcome.xid))
            names = {child.name for child in obs.descendants(root)}
            assert "2pc.prepare" in names
            assert "2pc.commit-branch" in names

    def test_migration_root_span_recorded(self, traced_run):
        obs, _stats, _clients = traced_run
        migrations = [span for span in obs.roots()
                      if span.name == "migration"]
        assert migrations
        for span in migrations:
            assert span.closed
            child_names = {child.name for child in obs.children_of(span)}
            assert "migration.copy" in child_names
            assert "migration.fence" in child_names

    def test_metrics_snapshot_travels_on_the_statistics(self, traced_run):
        _obs, stats, _clients = traced_run
        assert stats.metrics is not None
        by_name = {}
        for row in stats.metrics:
            by_name.setdefault(row["name"], []).append(row)
        committed_observed = sum(row["count"]
                                 for row in by_name["response_time_ms"])
        assert committed_observed == stats.measured_commits
        routed = sum(row["value"] for row in by_name["router_classified"])
        assert routed > 0


# ----------------------------------------------------------------- exporter
class TestChromeTraceExport:
    def test_traced_scenario_payload_validates(self, traced_run):
        obs, _stats, _clients = traced_run
        payload = chrome_trace(obs, metadata={"scenario": "test"})
        assert validate_chrome_trace(payload) == []
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert phases == {"X", "i", "M"}
        assert payload["otherData"]["scenario"] == "test"
        assert payload["otherData"]["spans"] == len(obs.spans)

    def test_open_spans_are_skipped_but_counted(self):
        sim = FakeSim()
        obs = Observability(sim)
        obs.begin("left-open")
        done = obs.begin("done")
        sim.now = 2.0
        obs.end(done)
        payload = chrome_trace(obs)
        names = [event["name"] for event in payload["traceEvents"]
                 if event["ph"] == "X"]
        assert names == ["done"]
        assert payload["otherData"]["open_spans"] == 1

    def test_validator_rejects_malformed_events(self):
        assert validate_chrome_trace([]) == \
            ["payload must be an object, got list"]
        assert validate_chrome_trace({"traceEvents": {}}) == \
            ["traceEvents must be a list"]
        bad = {"traceEvents": [
            {"name": "", "ph": "X", "pid": 1, "ts": 0.0, "dur": 1.0,
             "tid": 1},
            {"name": "x", "ph": "Q", "pid": 1},
            {"name": "y", "ph": "X", "pid": 1, "ts": -1.0, "dur": -2.0,
             "tid": "a"},
            {"name": "z", "ph": "i", "pid": 1, "ts": 0.0, "tid": 1,
             "s": "bogus"},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 6

    def test_critical_path_report_renders_all_stages(self, traced_run):
        obs, _stats, _clients = traced_run
        report = critical_path_report(obs, limit=5)
        header = report.splitlines()[0]
        for stage in STAGES:
            assert stage in header
        assert "aggregate over" in report.splitlines()[-1]


# ------------------------------------------------- critical path, synthetic
class TestCriticalPathSweep:
    def test_overlap_resolves_to_the_higher_priority_stage(self):
        sim = FakeSim()
        obs = Observability(sim)
        root = obs.begin("txn", category="txn", root=True)
        sim.now = 2.0
        disk = obs.begin("disk", category="disk", parent=root)
        sim.now = 4.0
        network = obs.begin("net", category="network", parent=root)
        sim.now = 5.0
        obs.end(disk)
        sim.now = 7.0
        obs.end(network)
        sim.now = 10.0
        obs.end(root)
        stages = obs.critical_path(root)
        # disk [2,5] wins its whole interval (beats network on [4,5]);
        # network keeps only [5,7]; the rest of [0,10] is queue.
        assert stages["disk"] == pytest.approx(3.0)
        assert stages["network"] == pytest.approx(2.0)
        assert stages["cpu"] == 0.0 and stages["protocol"] == 0.0
        assert stages["queue"] == pytest.approx(5.0)
        assert sum(stages.values()) == pytest.approx(root.duration)

    def test_children_are_clipped_to_the_root_interval(self):
        sim = FakeSim()
        obs = Observability(sim)
        sim.now = 5.0
        root = obs.begin("txn", category="txn", root=True)
        sim.now = 3.0  # late-attached child that started before the root
        child = obs.begin("disk", category="disk", parent=root)
        sim.now = 20.0
        obs.end(child)
        sim.now = 10.0
        obs.end(root)
        # Root covers [5,10]; the child [3,20] must be clipped to it.
        stages = obs.critical_path(root)
        assert stages["disk"] == pytest.approx(5.0)
        assert stages["queue"] == 0.0

    def test_unknown_parent_key_leaves_span_parentless(self):
        obs = Observability(FakeSim())
        span = obs.begin("orphan", parent=("txn", "never-registered"))
        assert span.parent_id is None
        assert obs.end_key(("txn", "never-registered")) is None

    def test_key_reuse_is_last_writer_wins(self):
        sim = FakeSim()
        obs = Observability(sim)
        first = obs.begin("txn", key=("txn", "t1"))
        obs.end(first)
        second = obs.begin("txn", key=("txn", "t1"))
        assert obs.span_for(("txn", "t1")) is second

    def test_end_is_idempotent(self):
        sim = FakeSim()
        obs = Observability(sim)
        span = obs.begin("txn")
        sim.now = 4.0
        obs.end(span)
        sim.now = 9.0
        obs.end(span, labels={"late": True})
        assert span.end == 4.0
        assert span.labels["late"] is True


# ------------------------------------------------------------------ metrics
class TestMetricsRegistry:
    def test_histogram_bucket_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram("rt", (), buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 7.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.mean == pytest.approx(sum((0.5, 1.0, 1.5, 2.0, 5.0,
                                                    7.0)) / 6)

    def test_histogram_rejects_bad_bucket_bounds(self):
        with pytest.raises(ValueError):
            Histogram("rt", (), buckets=())
        with pytest.raises(ValueError):
            Histogram("rt", (), buckets=(2.0, 1.0))

    def test_same_name_and_labels_return_the_same_handle(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", shard=1, technique="group-safe")
        b = registry.counter("hits", technique="group-safe", shard=1)
        assert a is b
        assert registry.counter("hits", shard=2) is not a
        assert registry.gauge("hits") is not registry.counter("hits")

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()

        def sample(target):
            target.gauge("sampled").set(42)

        registry.register_collector(sample)
        rows = {row["name"]: row for row in registry.snapshot()}
        assert rows["sampled"]["value"] == 42

    def test_snapshot_serialises_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("rt", kind="single").observe(3.0)
        (row,) = registry.snapshot()
        assert row["kind"] == "histogram"
        assert row["labels"] == {"kind": "single"}
        assert row["buckets"] == list(DEFAULT_LATENCY_BUCKETS_MS)
        assert sum(row["bucket_counts"]) == row["count"] == 1
        assert "rt{kind=single} count=1" in registry.render()


# ------------------------------------------------------- shared percentiles
class TestSharedPercentile:
    def test_empty_input_is_zero_everywhere(self):
        assert percentile([], 0.5) == 0.0
        assert Tally("empty").percentile(0.5) == 0.0
        assert RunStatistics(technique="t").percentile(0.5) == 0.0

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_interpolation_matches_across_implementations(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        tally = Tally("rt")
        for value in values:
            tally.observe(value)
        stats = RunStatistics(technique="t", response_times=list(values))
        for fraction in (0.0, 0.25, 0.5, 0.75, 0.9, 1.0):
            expected = percentile(values, fraction)
            assert tally.percentile(fraction) == expected
            assert stats.percentile(fraction) == expected
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 0.75) == 4.0
        assert percentile(values, 1.0) == 5.0

    def test_summarize_reports_the_standard_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_tally_snapshot_is_an_independent_copy(self):
        tally = Tally("rt")
        tally.observe(1.0)
        first = tally.snapshot()
        first.append(99.0)
        assert tally.snapshot() == [1.0]


# ----------------------------------------------------------- kernel profile
class TestKernelProfile:
    def test_profile_counts_by_type_and_priority_lane(self):
        trace = [(0.0, NORMAL_BIAS + 1, "Timeout"),
                 (1.0, NORMAL_BIAS + 2, "Timeout"),
                 (1.5, 3, "Interrupt"),
                 (2.0, NORMAL_BIAS + 4, "Event")]
        profile = profile_kernel_trace(trace)
        assert profile["total_events"] == 4
        assert profile["priority_events"] == 1
        assert profile["first_event_at_ms"] == 0.0
        assert profile["last_event_at_ms"] == 2.0
        assert profile["by_type"]["Timeout"] == {"events": 2, "priority": 0}
        assert profile["by_type"]["Interrupt"] == {"events": 1,
                                                   "priority": 1}
        rendered = render_kernel_profile(profile)
        assert "Timeout" in rendered and "total" in rendered

    def test_profile_of_a_real_run_matches_scheduled_events(self):
        sim = Simulator(seed=3)
        trace = sim.enable_trace()
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run(until=5.0)
        profile = profile_kernel_trace(trace)
        assert profile["total_events"] == len(trace)
        assert profile["total_events"] > 0
