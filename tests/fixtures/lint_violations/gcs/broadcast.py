"""Fixture: an upward layer-contract violation in a gcs-style module.

The decomposed broadcast stack is where skip-layer discipline matters
most, so the fixture tree carries a gcs case of its own: a reliable
broadcast primitive that reaches *up* into membership."""


def implements(layer):
    def decorate(cls):
        return cls
    return decorate


def uses(layer):
    def decorate(cls):
        return cls
    return decorate


@implements("reliable_broadcast")
@uses("membership")
class ViewAwareBroadcast:
    """A broadcast primitive that consults views above it — forbidden."""
