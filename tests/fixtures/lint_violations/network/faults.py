"""Fixture: fault-injection code written the forbidden way.

What `repro.network.faults` must never do: draw loss decisions from the
process-global `random` module instead of an interned per-purpose stream,
and stamp fault events with the wall clock instead of the simulated one.
"""

import random
import time


def should_drop(probability: float) -> bool:
    return random.random() < probability


def fault_installed_at() -> float:
    return time.time()
