"""Fixture: one wall-clock violation."""

import time


def stamp() -> float:
    return time.time()
