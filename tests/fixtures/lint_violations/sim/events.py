"""Fixture: one slots-consistency violation (hot-path class, no __slots__)."""


class UnslottedEvent:
    def __init__(self, when: float) -> None:
        self.when = when
