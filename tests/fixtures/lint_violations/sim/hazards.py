"""Fixture: one ordering-hazard violation (unsorted .values() iteration)."""


def drain(pending: dict) -> None:
    for callback in pending.values():
        callback()
