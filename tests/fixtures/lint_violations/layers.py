"""Fixture: one layer-contract violation (an upward @uses)."""


def implements(layer):
    def decorate(cls):
        return cls
    return decorate


def uses(layer):
    def decorate(cls):
        return cls
    return decorate


@implements("links")
@uses("total_order")
class UpwardLink:
    """A link layer that reaches up into total order — forbidden."""
