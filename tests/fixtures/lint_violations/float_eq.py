"""Fixture: one float-time-arith violation."""


def same_instant(first, second) -> bool:
    return first.deliver_at == second.deliver_at
