"""Fixture: one unseeded-rng violation."""

import random


def jitter() -> float:
    return random.random()
