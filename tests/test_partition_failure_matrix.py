"""Partitioned failure-injection matrix: failpoints, scenarios, entries.

The deterministic crash-injection machinery (failpoints keyed to WAL / 2PC /
migration phases plus the crash log) lives on
:class:`~repro.partition.cluster.PartitionedCluster`; the scenarios and the
matrix itself live in :mod:`repro.experiments.partition_failure_matrix`.
"""

from __future__ import annotations

import pytest

from repro.experiments.partition_failure_matrix import (
    PARTITIONED_CRASH_PATTERNS, missing_pattern_classes,
    partitioned_demonstrated_losses, partitioned_soundness_violations,
    render_partitioned_matrix, run_partitioned_crash_scenario,
    run_partitioned_failure_matrix)
from repro.partition import PartitionedCluster
from repro.partition.stats import collect_statistics
from repro.partition.workload import PartitionedOpenLoopClients
from repro.workload import SimulationParameters


def build(partitions=2, technique="group-safe", seed=7, items=100):
    params = SimulationParameters.small(server_count=3, item_count=items)
    cluster = PartitionedCluster(technique, params=params, seed=seed,
                                 partition_count=partitions, strategy="range")
    cluster.start()
    return cluster


# ------------------------------------------------------------------ failpoints
def test_unknown_failpoint_phase_is_rejected():
    cluster = build()
    with pytest.raises(ValueError):
        cluster.add_failpoint("not-a-phase", lambda context: None)


def test_failpoint_fires_once_by_default_and_counts():
    cluster = build()
    seen = []
    cluster.add_failpoint("2pc.prepared", seen.append)
    assert cluster.fire_failpoint("2pc.prepared", xid="x1") == 1
    assert cluster.fire_failpoint("2pc.prepared", xid="x2") == 0
    assert len(seen) == 1
    assert seen[0]["phase"] == "2pc.prepared"
    assert seen[0]["xid"] == "x1"
    assert seen[0]["cluster"] is cluster
    assert cluster.failpoints_fired == {"2pc.prepared": 1}


def test_persistent_failpoint_fires_every_time():
    cluster = build()
    seen = []
    cluster.add_failpoint("migration.copy-chunk", seen.append, once=False)
    cluster.fire_failpoint("migration.copy-chunk", chunk_index=1)
    cluster.fire_failpoint("migration.copy-chunk", chunk_index=2)
    assert [context["chunk_index"] for context in seen] == [1, 2]
    assert cluster.failpoints_fired["migration.copy-chunk"] == 2


def test_unregistered_phase_is_a_noop():
    cluster = build()
    assert cluster.fire_failpoint("migration.fence") == 0
    assert cluster.failpoints_fired == {}


def test_crash_log_records_crashes_and_recoveries():
    cluster = build()
    cluster.crash_server(0, "p0.s1")
    cluster.crash_partition(1)
    cluster.run(until=100)
    cluster.recover_server(0, "p0.s1")
    kinds = [(event.kind, event.partition_id, event.server)
             for event in cluster.crash_log]
    assert kinds == [("crash", 0, "p0.s1"), ("crash", 1, None),
                     ("recover", 0, "p0.s1")]


def test_statistics_carry_the_injection_trail():
    cluster = build()
    clients = PartitionedOpenLoopClients(cluster, load_tps=30.0)
    clients.start()
    cluster.run(until=300)
    cluster.crash_server(1, "p1.s3")
    cluster.run(until=600)
    stats = collect_statistics(clients, duration_ms=600)
    assert [event.kind for event in stats.injected_crashes] == ["crash"]
    assert stats.failpoints_fired == {}


# ------------------------------------------------------------------ scenarios
def test_unknown_pattern_and_shard_count_rejected():
    with pytest.raises(ValueError):
        run_partitioned_crash_scenario("group-safe", "not-a-pattern")
    with pytest.raises(ValueError):
        run_partitioned_crash_scenario("group-safe", "none", shard_count=1)


def test_shard_outage_loses_under_group_safe_but_is_contained():
    outcome = run_partitioned_crash_scenario("group-safe", "shard-outage")
    assert outcome.confirmed
    assert outcome.transaction_lost          # Fig. 5 inside one shard
    assert outcome.audited_shards[0].group_failed
    assert outcome.audited_shards[0].delegate_crashed
    # The partitioned point: the other shard kept serving throughout.
    assert outcome.fresh_commit_ok
    assert outcome.invariants_ok


def test_shard_outage_survived_by_two_safe():
    outcome = run_partitioned_crash_scenario("2-safe", "shard-outage")
    assert outcome.confirmed
    assert not outcome.transaction_lost
    assert outcome.audit_failures == []


def test_coordinator_crash_before_decision_aborts_atomically():
    outcome = run_partitioned_crash_scenario("group-safe",
                                             "coordinator-before-decision")
    # The decision never became durable on the crashed home delegate, so
    # the client saw an abort — while the coordinator was still down, via
    # the bounded decision wait — and nothing was installed anywhere.
    assert not outcome.confirmed
    assert outcome.resolved_before_recovery
    assert outcome.resolved
    assert outcome.atomicity_ok
    assert outcome.fresh_commit_ok
    assert not outcome.transaction_lost


def test_coordinator_crash_after_decision_blocks_then_commits():
    outcome = run_partitioned_crash_scenario("group-safe",
                                             "coordinator-after-decision")
    # Classic 2PC: the client blocked while the coordinator was down, and
    # decision replay finished phase 2 after recovery — no loss.
    assert outcome.blocked_before_recovery
    assert outcome.confirmed
    assert outcome.resolved
    assert not outcome.transaction_lost
    assert outcome.audit_failures == []


def test_source_crash_during_copy_aborts_migration_and_keeps_old_owner():
    outcome = run_partitioned_crash_scenario("group-safe",
                                             "migration-source-copy")
    assert outcome.migration_ok
    assert outcome.migration.aborted
    assert outcome.migration.abort_reason == "source-unavailable"
    assert outcome.routing_consistent        # old owner, live and recovered
    assert not outcome.transaction_lost
    assert outcome.invariants_ok


def test_destination_crash_under_fence_lifts_the_fence():
    outcome = run_partitioned_crash_scenario("group-safe",
                                             "migration-dest-fence")
    assert outcome.migration_ok
    assert outcome.migration.abort_reason == "destination-unavailable"
    # The probe committed into the previously fenced range while the
    # destination group was still fully down.
    assert outcome.fresh_commit_ok
    assert outcome.routing_consistent
    assert not outcome.transaction_lost


def test_post_epoch_crash_hands_off_to_the_new_owner():
    outcome = run_partitioned_crash_scenario("group-safe",
                                             "migration-post-epoch")
    assert outcome.migration_ok
    assert outcome.migration.completed and outcome.migration.verified
    # The audited shard is the destination: it serves the migrated keys and
    # recovery (driven by the force-logged EPOCH record) agrees with it.
    assert outcome.audited_shards[0].partition_id == 1
    assert outcome.routing_consistent
    assert not outcome.transaction_lost
    assert outcome.fresh_commit_ok


# ------------------------------------------------------------------ the matrix
@pytest.fixture(scope="module")
def group_safe_matrix():
    return run_partitioned_failure_matrix(techniques=["group-safe"], seed=2)


def test_matrix_covers_every_pattern(group_safe_matrix):
    patterns = {entry.crash_pattern for entry in group_safe_matrix}
    assert patterns == set(PARTITIONED_CRASH_PATTERNS)
    assert missing_pattern_classes(group_safe_matrix) == []


def test_matrix_is_sound(group_safe_matrix):
    assert partitioned_soundness_violations(group_safe_matrix) == []


def test_matrix_demonstrates_the_whole_shard_loss(group_safe_matrix):
    demonstrated = {entry.crash_pattern
                    for entry in partitioned_demonstrated_losses(
                        group_safe_matrix)}
    assert "shard-outage" in demonstrated


def test_matrix_prediction_composes_per_shard(group_safe_matrix):
    by_pattern = {entry.crash_pattern: entry for entry in group_safe_matrix}
    # Group-safe: loss is possible exactly when the owning group failed.
    assert by_pattern["shard-outage"].predicted_possible_loss
    assert by_pattern["shard-outage-recover-all"].predicted_possible_loss
    assert by_pattern["migration-source-copy"].predicted_possible_loss
    assert not by_pattern["shard-delegate"].predicted_possible_loss
    # Coordinator crashes block, they never lose (2PC blocking rules).
    assert not by_pattern["coordinator-before-decision"].predicted_possible_loss
    assert not by_pattern["coordinator-after-decision"].predicted_possible_loss
    # After the handoff the destination (which never failed) serves.
    assert not by_pattern["migration-post-epoch"].predicted_possible_loss


def test_render_matrix_output(group_safe_matrix):
    rendering = render_partitioned_matrix(group_safe_matrix)
    assert "technique" in rendering and "shards" in rendering
    assert "LOST" in rendering and "kept" in rendering
    assert "soundness violations: 0" in rendering
