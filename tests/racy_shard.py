"""A minimal, hand-rolled shard model for exercising the race detector.

Implements the ``run_sharded`` shard protocol without a Simulator: shard 0
ticks at a fixed period and sends one cross-shard message per tick to shard
1, with a configurable delivery latency.  With ``latency >= lookahead`` the
model is protocol-clean; with ``latency < lookahead`` it deliberately sends
into the conservative window — exactly the race ``detect_races=True`` must
catch.  Lives in ``tests/`` (importable as ``racy_shard`` via the pytest
rootdir path) so the violation can never ship inside ``src/repro``.
"""

from __future__ import annotations

import hashlib

from repro.sim.parallel import CrossShardMessage

_INFINITY = float("inf")


class TickShard:
    """Shard 0 emits ticks to shard 1; shard 1 only listens."""

    def __init__(self, shard_id: int, config: dict) -> None:
        self.shard_id = shard_id
        self.latency = config["latency"]
        self.period = config["period"]
        self.until = config["until"]
        self.next_tick = self.period if shard_id == 0 else _INFINITY
        self.sequence = 0
        self.outbox = []
        self.log = []

    def peek(self) -> float:
        return self.next_tick

    def run_before(self, bound: float) -> None:
        while self.next_tick < bound:
            now = self.next_tick
            self.sequence += 1
            self.log.append(("tick", now, self.sequence))
            self.outbox.append(CrossShardMessage(
                deliver_at=now + self.latency, dest_shard=1,
                origin_shard=self.shard_id, origin_seq=self.sequence,
                kind="tick", payload=now))
            advanced = now + self.period
            self.next_tick = advanced if advanced <= self.until else _INFINITY

    def inject(self, message: CrossShardMessage) -> None:
        self.log.append(("recv", message.deliver_at, message.origin_shard,
                         message.origin_seq, message.payload))

    def drain_outbox(self):
        drained = self.outbox
        self.outbox = []
        return drained

    def finish(self, until: float) -> str:
        digest = hashlib.sha256()
        for entry in self.log:
            digest.update(repr(entry).encode())
        return digest.hexdigest()


def build(shard_id: int, config: dict) -> TickShard:
    """The ``ShardSpec`` builder entry point (``racy_shard:build``)."""
    return TickShard(shard_id, config)
