"""Tests of the Table 4 parameters, the workload generator and the client pools."""

from __future__ import annotations

import pytest

from repro.sim import Simulator
from repro.workload import (ClosedLoopClientPool, OpenLoopClientPool,
                            PAPER_PARAMETERS, SimulationParameters,
                            WorkloadGenerator)
from tests.conftest import build_cluster


def test_paper_parameters_match_table4():
    params = SimulationParameters.paper()
    assert params.item_count == 10_000
    assert params.server_count == 9
    assert params.clients_per_server == 4
    assert params.disks_per_server == 2
    assert params.cpus_per_server == 2
    assert (params.transaction_length_min, params.transaction_length_max) == (10, 20)
    assert params.write_probability == 0.5
    assert params.buffer_hit_ratio == 0.2
    assert (params.read_time_min, params.read_time_max) == (4.0, 12.0)
    assert (params.write_time_min, params.write_time_max) == (4.0, 12.0)
    assert params.cpu_time_per_io == 0.4
    assert params.network_latency == 0.07
    assert params.cpu_time_per_network_op == 0.07
    assert params.total_clients == 36
    assert PAPER_PARAMETERS == params


def test_parameters_table_rendering_matches_paper_rows():
    table = SimulationParameters.paper().as_table()
    assert table["Number of items in the database"] == 10_000
    assert table["Number of Servers"] == 9
    assert table["Probability that an operation is a write"] == "50%"
    assert table["Buffer hit ratio"] == "20%"
    assert table["Time for a read"] == "4 - 12 ms"
    assert table["Time for a message or a broadcast on the Network"] == "0.07 ms"
    assert len(table) == 14


def test_parameter_overrides_and_small_profile():
    params = SimulationParameters.small(server_count=5)
    assert params.server_count == 5
    tweaked = params.with_overrides(write_probability=0.3)
    assert tweaked.write_probability == 0.3
    assert params.write_probability == 0.5       # original untouched
    assert params.server_names() == ["s1", "s2", "s3", "s4", "s5"]
    assert params.mean_transaction_length == 15.0
    assert params.mean_disk_read_time == 8.0


def test_generator_respects_length_and_write_probability():
    sim = Simulator(seed=11)
    params = SimulationParameters.paper()
    generator = WorkloadGenerator(sim, params)
    programs = generator.batch(200)
    lengths = [program.length for program in programs]
    assert min(lengths) >= 10 and max(lengths) <= 20
    operations = [op for program in programs for op in program.operations]
    write_fraction = sum(op.is_write for op in operations) / len(operations)
    assert 0.45 < write_fraction < 0.55
    keys = {op.key for op in operations}
    assert all(key.startswith("item-") for key in keys)
    assert generator.generated_count == 200


def test_generator_is_deterministic_per_seed():
    def spec(seed):
        generator = WorkloadGenerator(Simulator(seed=seed),
                                      SimulationParameters.small())
        return [(op.op_type, op.key) for program in generator.batch(20)
                for op in program.operations]

    assert spec(5) == spec(5)
    assert spec(5) != spec(6)


def test_update_only_program_and_validation():
    sim = Simulator(seed=1)
    generator = WorkloadGenerator(sim, SimulationParameters.small())
    program = generator.update_only_program(4, client="x")
    assert program.length == 4
    assert program.is_read_only is False
    assert all(op.is_write for op in program.operations)
    with pytest.raises(ValueError):
        WorkloadGenerator(sim, SimulationParameters.small(), item_keys=[])
    with pytest.raises(ValueError):
        generator.interarrival_time(0.0)


def test_interarrival_times_match_the_offered_load():
    sim = Simulator(seed=2)
    generator = WorkloadGenerator(sim, SimulationParameters.small())
    gaps = [generator.interarrival_time(40.0) for _ in range(2000)]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(25.0, rel=0.1)    # 40 tps -> 25 ms


def test_open_loop_pool_drives_the_cluster():
    # Use a larger item set than the default test profile so that the
    # certification abort rate stays in a realistic range.
    cluster = build_cluster("group-safe", seed=21, item_count=2_000)
    pool = OpenLoopClientPool(cluster, load_tps=30.0, warmup=500.0)
    pool.start()
    cluster.run(until=4_000.0)
    assert pool.submitted_count > 50
    assert pool.committed
    assert 0.0 <= pool.abort_rate() <= 0.25
    assert pool.mean_response_time() > 0.0
    # Warm-up results are kept separately.
    assert all(result.committed is not None for result in pool.warmup_results)
    with pytest.raises(ValueError):
        OpenLoopClientPool(cluster, load_tps=0.0)


def test_closed_loop_pool_and_target_load_helper():
    cluster = build_cluster("1-safe", seed=22)
    pool = ClosedLoopClientPool.for_target_load(cluster, load_tps=20.0,
                                                expected_response_time=120.0)
    assert pool.think_time_mean > 0
    pool.start()
    cluster.run(until=4_000.0)
    assert pool.submitted_count > 10
    assert pool.committed
    with pytest.raises(ValueError):
        ClosedLoopClientPool(cluster, think_time_mean=0.0)
