"""Static routing-table layouts and the transaction router."""

from __future__ import annotations

import pytest

from repro.db.operations import make_program
from repro.partition import RoutingTable, TransactionRouter


# ---------------------------------------------------------------- static layouts
def test_hash_layout_is_deterministic_and_total():
    table = RoutingTable.from_strategy("hash", 4)
    keys = [f"item-{index}" for index in range(200)]
    first = [table.partition_of(key) for key in keys]
    second = [table.partition_of(key) for key in keys]
    assert first == second
    assert all(0 <= pid < 4 for pid in first)
    # 200 keys over 4 hash buckets: every partition owns something.
    assert set(first) == {0, 1, 2, 3}


def test_range_layout_keeps_ranges_contiguous():
    table = RoutingTable.from_strategy("range", 4, item_count=100)
    assignments = [table.partition_of(f"item-{index}")
                   for index in range(100)]
    assert assignments == sorted(assignments)
    assert assignments[0] == 0 and assignments[-1] == 3
    for pid in range(4):
        assert assignments.count(pid) == 25


def test_range_layout_handles_non_conventional_keys():
    table = RoutingTable.from_strategy("range", 3, item_count=90)
    # Keys without a numeric suffix still get a stable home.
    assert table.partition_of("x") == table.partition_of("x")
    assert 0 <= table.partition_of("x") < 3
    # Out-of-range indices clamp into the last partition.
    assert table.partition_of("item-500") == 2


def test_partition_keys_groups_without_losing_keys():
    table = RoutingTable.from_strategy("hash", 3)
    keys = [f"item-{index}" for index in range(60)]
    grouped = table.partition_keys(keys)
    regrouped = [key for pid in sorted(grouped) for key in grouped[pid]]
    assert sorted(regrouped) == sorted(keys)


def test_layout_validation():
    with pytest.raises(ValueError):
        RoutingTable.from_strategy("hash", 0)
    with pytest.raises(ValueError):
        RoutingTable.from_strategy("range", 8, item_count=4)
    with pytest.raises(ValueError):
        RoutingTable.from_strategy("consistent-hashing", 4)


def test_partitioner_shim_is_gone_with_a_pointer():
    # The one-release tombstone: importing the retired module fails with a
    # message naming the replacement.
    with pytest.raises(ImportError, match="RoutingTable.from_strategy"):
        import repro.partition.partitioner  # noqa: F401


# ---------------------------------------------------------------- router
def router_over_ranges():
    return TransactionRouter(
        RoutingTable.from_strategy("range", 4, item_count=100))


def test_router_classifies_single_partition():
    router = router_over_ranges()
    program = make_program([("r", "item-1"), ("w", "item-7", "v")])
    assert router.partitions_of(program) == [0]
    assert router.is_single_partition(program)


def test_router_classifies_cross_partition():
    router = router_over_ranges()
    program = make_program([("r", "item-1"), ("w", "item-80", "v")])
    assert router.partitions_of(program) == [0, 3]
    assert not router.is_single_partition(program)


def test_router_counters_update_on_classify():
    router = router_over_ranges()
    router.classify(make_program([("r", "item-1")]))
    router.classify(make_program([("r", "item-1"), ("w", "item-99", "v")]))
    assert router.single_partition_count == 1
    assert router.cross_partition_count == 1


def test_split_preserves_order_and_client():
    router = router_over_ranges()
    program = make_program([("r", "item-1"), ("w", "item-80", "a"),
                            ("w", "item-2", "b"), ("r", "item-90")],
                           client="alice")
    branches = router.split(program)
    assert sorted(branches) == [0, 3]
    branch0, branch3 = branches[0], branches[3]
    assert [op.key for op in branch0.operations] == ["item-1", "item-2"]
    assert [op.key for op in branch3.operations] == ["item-80", "item-90"]
    assert branch0.client == "alice" and branch3.client == "alice"
    # Branches are independent programs with their own identifiers.
    assert branch0.program_id != program.program_id
    assert branch0.program_id != branch3.program_id
