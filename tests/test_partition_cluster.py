"""The PartitionedCluster facade: wiring, scaling, failures, determinism."""

from __future__ import annotations

import pytest

from repro.partition import PartitionedCluster, PartitionedOpenLoopClients
from repro.workload import SimulationParameters


def build(partitions=2, technique="group-safe", seed=5, items=200,
          **overrides):
    params = SimulationParameters.small(server_count=3, item_count=items)
    if overrides:
        params = params.with_overrides(**overrides)
    cluster = PartitionedCluster(technique, params=params, seed=seed,
                                 partition_count=partitions)
    cluster.start()
    return cluster


# ---------------------------------------------------------------- wiring
def test_groups_share_one_simulator_and_lan():
    cluster = build(partitions=3)
    assert len(cluster.groups) == 3
    for group in cluster.groups:
        assert group.sim is cluster.sim
        assert group.lan is cluster.lan
    # 3 partitions x 3 servers, uniquely named on the shared LAN.
    assert len(cluster.lan.nodes) == 9
    assert cluster.server_names()[:4] == ["p0.s1", "p0.s2", "p0.s3", "p1.s1"]


def test_partition_count_from_params():
    params = SimulationParameters.small(server_count=3, item_count=100)
    cluster = PartitionedCluster(params=params.with_overrides(
        partition_count=4))
    assert cluster.partition_count == 4


def test_constructor_validation():
    params = SimulationParameters.small(item_count=100)
    with pytest.raises(ValueError):
        PartitionedCluster(params=params, partition_count=0)
    with pytest.raises(ValueError):
        PartitionedCluster(params=params, partition_count=2,
                           techniques=["group-safe"])
    with pytest.raises(ValueError):
        PartitionedCluster(params=params, partition_count=2,
                           techniques=["group-safe", "3-safe"])
    with pytest.raises(ValueError):
        PartitionedCluster(params=params, partition_count=2,
                           strategy="alphabetical")


def test_mixed_techniques_per_partition():
    params = SimulationParameters.small(server_count=3, item_count=100)
    cluster = PartitionedCluster(params=params, partition_count=2,
                                 techniques=["group-safe", "1-safe"])
    assert cluster.group(0).technique == "group-safe"
    assert cluster.group(1).technique == "1-safe"


# ---------------------------------------------------------------- scaling
def test_four_partitions_outcommit_one_at_saturating_load():
    """The acceptance property behind benchmarks/bench_partition.py."""
    def committed_at(partitions):
        params = SimulationParameters.small(server_count=3, item_count=400)
        params = params.with_overrides(partition_count=partitions)
        cluster = PartitionedCluster("group-safe", params=params, seed=21)
        cluster.start()
        clients = PartitionedOpenLoopClients(cluster, load_tps=100.0,
                                             warmup=1_000.0)
        clients.start()
        cluster.run(until=7_000)
        return clients.committed_count

    assert committed_at(4) > 1.5 * committed_at(1)


# ---------------------------------------------------------------- failures
def test_partition_crash_leaves_other_partitions_serving():
    cluster = build(partitions=2, cross_partition_probability=0.2, seed=9,
                    items=120)
    clients = PartitionedOpenLoopClients(cluster, load_tps=20.0)
    clients.start()
    cluster.run(until=2_000)
    cluster.crash_partition(1)
    assert cluster.up_partitions() == [0]
    committed_before = clients.committed_count
    cluster.run(until=6_000)
    # The surviving partition keeps committing its single-partition traffic;
    # arrivals owned by the dead partition are rejected, not hung.
    assert clients.committed_count > committed_before
    assert clients.rejected_count > 0


def test_run_transaction_to_dead_partition_aborts_instead_of_raising():
    cluster = build(partitions=2)
    cluster.crash_partition(0)
    # item-1 hashes somewhere; find a key owned by the dead partition.
    key = next(f"item-{i}" for i in range(100)
               if cluster.partition_of(f"item-{i}") == 0)
    from repro.db.operations import make_program
    waiter = cluster.run_transaction(make_program([("w", key, "v")]))
    cluster.run(until=1_000)     # must not tear down the simulation
    result = waiter.value
    assert not result.committed
    assert result.abort_reason == "partition-unavailable"


def test_collect_statistics_sets_population_throughput():
    cluster = build(partitions=2, cross_partition_probability=0.3, items=120)
    clients = PartitionedOpenLoopClients(cluster, load_tps=20.0)
    clients.start()
    cluster.run(until=4_000)
    from repro.partition import collect_statistics
    stats = collect_statistics(clients, duration_ms=4_000)
    assert stats.single.achieved_throughput_tps > 0
    assert stats.cross.achieved_throughput_tps > 0
    assert stats.achieved_throughput_tps == pytest.approx(
        stats.single.achieved_throughput_tps +
        stats.cross.achieved_throughput_tps)


def test_crash_and_recover_single_server():
    cluster = build(partitions=2)
    cluster.crash_server(0, "p0.s1")
    assert "p0.s1" not in cluster.group(0).up_servers()
    cluster.run(until=500)
    cluster.recover_server(0, "p0.s1")
    cluster.run(until=3_000)
    assert "p0.s1" in cluster.group(0).up_servers()


# ---------------------------------------------------------------- determinism
def test_identical_seeds_produce_identical_runs():
    def run_once():
        cluster = build(partitions=2, seed=33, items=120,
                        cross_partition_probability=0.3)
        clients = PartitionedOpenLoopClients(cluster, load_tps=25.0)
        clients.start()
        cluster.run(until=5_000)
        outcomes = tuple((outcome.xid, outcome.committed,
                          round(outcome.response_time, 9))
                         for outcome in cluster.cross_partition_outcomes())
        return clients.committed_count, outcomes

    assert run_once() == run_once()
