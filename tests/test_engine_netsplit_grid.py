"""Both total-order engines under netsplits: the blocking/progress grid.

The grid half runs the netsplit cells over *both* engines and pins the
quorum discipline: a partitioned-away minority never confirms anything, a
majority with a working coordinator keeps committing, a majority whose
coordinator sits in the minority blocks under a blind detector and fails
over under a detecting one — and after heal + resync the group converges
with zero lost or duplicated commits.

The regression half guards two fixed-sequencer bugs the netsplit injection
originally exposed:

* an alive-but-excluded sequencer kept its ordering state (``_assigned``,
  ``_next_seq``) and re-asserted it on rejoin, delivering a *different*
  message under an already-delivered sequence number — a split-brain
  total-order violation (now voided by ``_on_excluded``);
* a new sequencer assigned sequence numbers from its stale ``_next_seq``
  before the ``VC_STATE`` collection completed, wedging the re-submitted
  message forever (now prevented by the takeover barrier).
"""

from __future__ import annotations

import pytest

from repro.db.operations import Operation, OperationType, TransactionProgram
from repro.experiments.netsplit_matrix import run_group_netsplit_scenario
from repro.gcs.engines import engine_names
from repro.network import LinkFault
from repro.replication.cluster import ReplicatedDatabaseCluster
from repro.workload import SimulationParameters

ENGINES = tuple(engine_names())


def _write_program(key: str, value: str, client: str) -> TransactionProgram:
    return TransactionProgram(
        client=client,
        operations=(Operation(OperationType.WRITE, key, value),))


def _cluster(engine: str, seed: int = 1, **overrides
             ) -> ReplicatedDatabaseCluster:
    params = SimulationParameters.small(server_count=3, item_count=100) \
        .with_overrides(broadcast_engine=engine, **overrides)
    cluster = ReplicatedDatabaseCluster("group-1-safe", params=params,
                                        seed=seed)
    cluster.start()
    return cluster


# ---------------------------------------------------------------- the grid
@pytest.mark.parametrize("engine", ENGINES)
def test_blind_coordinator_split_blocks_both_sides(engine):
    """Perfect detector + coordinator in the minority: nobody commits.

    The oracle detector never fires on a link fault, so no view change
    removes the partitioned-away coordinator — the majority has a quorum
    but no sequencer/leader, the minority has the coordinator but no
    quorum.  Everything blocks; nothing may be lost.
    """
    outcome = run_group_netsplit_scenario(engine,
                                          "split-minority-coordinator",
                                          "perfect", seed=1)
    assert outcome.majority_commits == 0
    assert outcome.minority_commits == 0
    assert not outcome.observed_loss
    assert outcome.audit_failures == []
    assert outcome.post_heal_ok and outcome.converged
    assert outcome.sound and outcome.matched
    assert outcome.demonstrates_minority_blocking


@pytest.mark.parametrize("engine", ENGINES)
def test_follower_split_majority_keeps_committing(engine):
    """Coordinator on the majority side: the majority never stops."""
    outcome = run_group_netsplit_scenario(engine, "split-minority-follower",
                                          "perfect", seed=1)
    assert outcome.majority_commits == 3
    assert outcome.minority_commits == 0
    assert outcome.audit_failures == []
    assert outcome.post_heal_ok and outcome.converged
    assert outcome.sound and outcome.matched


@pytest.mark.parametrize("engine", ENGINES)
def test_detected_coordinator_split_fails_over(engine):
    """Heartbeat detection turns the split into an ordinary failover."""
    outcome = run_group_netsplit_scenario(engine,
                                          "split-minority-coordinator",
                                          "hb-fast", seed=1)
    assert outcome.majority_commits == 3
    assert outcome.minority_commits == 0
    assert outcome.unresolved == 0
    assert outcome.suspicion_count >= 1
    assert outcome.audit_failures == []
    assert outcome.post_heal_ok and outcome.converged
    assert outcome.sound and outcome.matched


@pytest.mark.parametrize("engine", ENGINES)
def test_slow_detector_is_equivalent_to_blindness(engine):
    """A timeout longer than the fault never fires: same as the oracle."""
    outcome = run_group_netsplit_scenario(engine,
                                          "split-minority-coordinator",
                                          "hb-slow", seed=1)
    assert outcome.majority_commits == 0
    assert outcome.minority_commits == 0
    assert outcome.sound and outcome.matched


# ---------------------------------------------------------------- regressions
def test_excluded_sequencer_forfeits_its_ordering_state():
    """An alive member partitioned out of the view voids its tenancy.

    The coordinator assigns a sequence number it can never stabilise
    (no quorum on its side), then gets excluded by the heartbeat detector.
    Exclusion must clear every piece of sequencer state — keeping it was
    the split-brain bug: the stale assignment resurfaced on rejoin and a
    different message was delivered under an already-used sequence number.
    """
    cluster = _cluster("fixed-sequencer", failure_detector_mode="heartbeat",
                       heartbeat_period=10.0, heartbeat_timeout=60.0)
    sim, lan = cluster.sim, cluster.lan
    waiter = cluster.run_transaction(
        _write_program("item-10", "warmup", client="warmup"), server="s1")
    sim.run_until_complete(waiter, limit=3_000.0)
    assert waiter.value.committed

    lan.schedule_fault(
        LinkFault.partition("split", ("s1",), ("s2", "s3")),
        at=300.0, until=900.0)
    stranded = []
    sim.call_at(310.0, lambda: stranded.append(cluster.run_transaction(
        _write_program("item-20", "stranded", client="minority"),
        server="s1")))
    sim.run(until=600.0)

    endpoint = cluster.gcs.endpoint("s1")
    assert "s1" not in endpoint.group.view().members
    # Tenancy voided: nothing assigned, nothing acknowledged, no sequenced
    # ids that could suppress a legitimate reassignment after rejoin.
    assert endpoint._assigned == {}
    assert endpoint._acks == {}
    assert endpoint._sequenced_ids == set()
    assert endpoint._pending == {}
    # The stranded broadcast went back to the unsequenced pool so the
    # rejoin view change re-submits it for fresh sequencing.
    assert len(endpoint._unsequenced) == 1

    # Heal, resync through crash-recovery, and require convergence: the
    # stranded write must either commit everywhere or nowhere.
    sim.run(until=1_200.0)
    cluster.crash_server("s1")
    sim.run(until=sim.now + 120.0)
    cluster.recover_server("s1")
    sim.run(until=sim.now + 1_000.0)
    names = cluster.server_names()
    for key in ("item-10", "item-20"):
        values = {repr(cluster.database(name).value_of(key))
                  for name in names}
        assert len(values) == 1, f"{key} diverged: {values}"
    result = stranded[0].value if stranded[0].triggered else None
    if result is not None and result.committed:
        assert all(cluster.database(name).value_of("item-20") == "stranded"
                   for name in names)


def test_takeover_barrier_holds_until_state_is_collected():
    """A new sequencer must not assign numbers before ``VC_STATE`` sync.

    On the view change the successor raises the takeover barrier and only
    sequences once a quorum has answered — sequencing immediately re-used
    numbers the old sequencer had stabilised with a quorum that did not
    include the successor, wedging the re-submitted message forever.
    """
    cluster = _cluster("fixed-sequencer")
    sim = cluster.sim
    warmup = cluster.run_transaction(
        _write_program("item-10", "warmup", client="warmup"), server="s2")
    sim.run_until_complete(warmup, limit=3_000.0)
    assert warmup.value.committed

    endpoint = cluster.gcs.endpoint("s2")
    cluster.crash_server("s1")
    # Advance just past the view change (the oracle detector's announcement
    # is one event hop after the crash) — the successor is now collecting
    # state and the barrier is up, but no VC_STATE reply has crossed the
    # network yet (that takes a full round trip).
    deadline = sim.now + 10.0
    while endpoint._takeover_waiting is None and sim.now < deadline:
        sim.run(until=sim.now + 0.1)
    assert endpoint.coordinator() == "s2"
    assert endpoint._takeover_waiting == {"s2", "s3"}

    # A transaction submitted while the barrier is up must still commit —
    # its DATA is buffered, then sequenced after the quorum answers.
    waiter = cluster.run_transaction(
        _write_program("item-20", "during-takeover", client="c1"),
        server="s2")
    sim.run_until_complete(waiter, limit=3_000.0)
    assert endpoint._takeover_waiting is None
    assert waiter.value.committed
    for name in cluster.up_servers():
        assert cluster.database(name).value_of("item-20") == "during-takeover"
