"""Property-style audit backing of both failure matrices.

The property: **every matrix cell predicted "No Transaction Loss" is backed
by a per-key audit with zero lost or duplicated commits** — for the
single-group matrix of :mod:`repro.experiments.failure_matrix` and for the
partitioned matrix of :mod:`repro.experiments.partition_failure_matrix`.
The prediction side is derived from the criterion definitions
(:func:`repro.core.matrix.loss_condition` and its per-shard composition);
these tests pin the audit side to it cell by cell.
"""

from __future__ import annotations

import pytest

from repro.core.matrix import loss_condition, partitioned_loss_condition
from repro.core.safety import SafetyLevel
from repro.experiments import (run_failure_matrix,
                               run_partitioned_failure_matrix)


@pytest.fixture(scope="module")
def single_entries():
    return run_failure_matrix(seed=2)


@pytest.fixture(scope="module")
def partitioned_entries():
    return run_partitioned_failure_matrix(
        techniques=["1-safe", "group-safe", "2-safe"], seed=2)


# ------------------------------------------------------------- the composition
def test_partitioned_loss_condition_is_the_per_shard_disjunction():
    level = SafetyLevel.GROUP_SAFE
    assert not partitioned_loss_condition([])
    assert not partitioned_loss_condition([(level, False, False),
                                           (level, False, True)])
    assert partitioned_loss_condition([(level, False, False),
                                       (level, True, False)])
    # Mixed levels: each branch is judged by its own criterion.
    assert partitioned_loss_condition(
        [(SafetyLevel.TWO_SAFE, True, True),
         (SafetyLevel.ONE_SAFE, False, True)])
    for group_fails in (False, True):
        for delegate_crashes in (False, True):
            assert (partitioned_loss_condition(
                        [(level, group_fails, delegate_crashes)])
                    == loss_condition(level, group_fails, delegate_crashes))


# ------------------------------------------------------------- single group
def test_single_matrix_predicted_safe_cells_keep_the_transaction(
        single_entries):
    checked = 0
    for entry in single_entries:
        if entry.predicted_possible_loss:
            continue
        checked += 1
        assert not entry.observed_loss, (entry.technique, entry.crash_pattern)
        fate = entry.outcome.fate
        assert not fate.is_lost
        # The audit's positive evidence: some surviving server holds (or
        # will regain) the confirmed transaction.
        reachable = (set(fate.committed_on) | set(fate.durably_logged_on)
                     | set(fate.recoverable_from_gcs_log_on)
                     | set(fate.pending_delivery_on))
        assert reachable & set(fate.surviving_servers), \
            (entry.technique, entry.crash_pattern)
    assert checked > 0


def test_single_matrix_commit_evidence_is_consistent(single_entries):
    # No cell reports a commit on a server outside the cluster — the
    # single-group analogue of "no duplicated commit".
    for entry in single_entries:
        servers = {"s1", "s2", "s3"}
        assert set(entry.outcome.committed_on) <= servers


# ------------------------------------------------------------- partitioned
def test_partitioned_predicted_safe_cells_have_clean_audits(
        partitioned_entries):
    checked = 0
    for entry in partitioned_entries:
        if entry.predicted_possible_loss:
            continue
        checked += 1
        assert not entry.observed_loss, (entry.technique, entry.crash_pattern)
        assert not any(failure.startswith(("lost", "duplicated"))
                       for failure in entry.outcome.audit_failures), \
            (entry.technique, entry.crash_pattern,
             entry.outcome.audit_failures)
    assert checked > 0


def test_partitioned_no_cell_ever_duplicates_a_commit(partitioned_entries):
    # Even the losing cells must never commit one client transaction on two
    # groups — dual-written values are internal migration transactions.
    for entry in partitioned_entries:
        assert not any(failure.startswith("duplicated")
                       for failure in entry.outcome.audit_failures), \
            (entry.technique, entry.crash_pattern)
        assert entry.outcome.invariants_ok


def test_partitioned_predictions_match_the_composition(partitioned_entries):
    for entry in partitioned_entries:
        recomputed = entry.outcome.confirmed and partitioned_loss_condition(
            (entry.level, status.group_failed, status.delegate_crashed)
            for status in entry.outcome.audited_shards)
        assert entry.predicted_possible_loss == recomputed
