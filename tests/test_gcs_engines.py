"""The pluggable broadcast-engine stack: registry semantics, golden-trace
digests proving the fixed sequencer reproduces the seed bit-for-bit, and the
technique x engine equivalence grid over Multi-Paxos."""

from __future__ import annotations

import hashlib

import pytest

from repro.gcs.engines import (DEFAULT_ENGINE, BroadcastEngineSpec,
                               engine_names, register_engine, resolve_engine)
from repro.replication.cluster import ReplicatedDatabaseCluster
from repro.workload import SimulationParameters


# ---------------------------------------------------------------- registry
def test_builtin_engines_are_registered_with_the_seed_default():
    assert DEFAULT_ENGINE == "fixed-sequencer"
    names = engine_names()
    assert "fixed-sequencer" in names
    assert "multi-paxos" in names
    assert SimulationParameters.small().broadcast_engine == DEFAULT_ENGINE


def test_resolve_unknown_engine_names_the_choices():
    with pytest.raises(KeyError, match="unknown broadcast engine"):
        resolve_engine("zab")


def test_register_and_resolve_a_custom_engine():
    from repro.gcs import engines
    spec = BroadcastEngineSpec(name="token-ring",
                               factory=lambda **kwargs: None,
                               description="test double")
    register_engine("token-ring", spec)
    try:
        assert resolve_engine("token-ring") is spec
        assert "token-ring" in engine_names()
    finally:
        engines._REGISTRY.pop("token-ring", None)


def test_register_engine_rejects_empty_names():
    with pytest.raises(ValueError):
        register_engine("", BroadcastEngineSpec(
            name="", factory=lambda **kwargs: None))


def test_unknown_engine_fails_at_cluster_construction():
    params = SimulationParameters.small(
        server_count=3, item_count=120).with_overrides(broadcast_engine="zab")
    with pytest.raises(KeyError, match="unknown broadcast engine"):
        ReplicatedDatabaseCluster("group-safe", params=params, seed=1)


# ---------------------------------------------------------------- harness
def trace_digest(trace):
    hasher = hashlib.sha256()
    for entry in trace:
        hasher.update(repr(entry).encode())
    return hasher.hexdigest()


def run_scenario(technique, *, seed=11, engine=DEFAULT_ENGINE,
                 crash_coordinator=False, log_time=0.0, traced=False):
    """One 24-transaction closed scenario, optionally crashing s1.

    Returns ``(cluster, results, trace)`` — the same driver the golden
    digests were captured with, byte for byte.
    """
    params = SimulationParameters.small(server_count=3, item_count=120) \
        .with_overrides(broadcast_engine=engine)
    cluster = ReplicatedDatabaseCluster(technique, params=params, seed=seed,
                                        gcs_delivery_log_time=log_time)
    trace = cluster.sim.enable_trace() if traced else None
    cluster.start()
    servers = cluster.server_names()
    results = []

    def driver():
        for index in range(24):
            program = cluster.workload.next_program()
            delegate = servers[index % len(servers)]
            if cluster.nodes[delegate].is_crashed:
                delegate = cluster.up_servers()[0]
            results.append(cluster.submit(program, server=delegate))
            yield cluster.sim.timeout(25.0)

    cluster.sim.spawn(driver())
    if crash_coordinator:
        cluster.run(until=220.0)
        cluster.crash_server("s1")
        cluster.run(until=320.0)
        recovery = cluster.recover_server("s1")
        cluster.run(until=1_400.0)
        assert recovery.ok, recovery
    else:
        cluster.run(until=1_400.0)
    return cluster, results, trace


def scenario_stats(cluster, results):
    committed = [entry.value.txn_id for entry in results
                 if entry.triggered and entry.value.committed]
    responded = [entry for entry in results if entry.triggered]
    return (len(committed), len(responded), cluster.lan.sent_count,
            cluster.lan.delivered_count, cluster.sim.scheduled_events)


# ---------------------------------------------------------------- golden digests
# Captured from the seed (pre-decomposition, fused sequencer+membership)
# gcs stack at seed=11; the fixed-sequencer engine must reproduce every
# event in every scenario bit-for-bit.  Stats are (committed, responded,
# lan sent, lan delivered, scheduled events).
GOLDEN = {
    "group-safe": dict(
        technique="group-safe", crash=False, log_time=0.0,
        digest="97993a376ea4d904c137b78f55eecf6ad6f1155f"
               "e91ad998eef0065319251330",
        stats=(15, 24, 312, 312, 4997)),
    "group-1-safe": dict(
        technique="group-1-safe", crash=False, log_time=0.0,
        digest="66bcbc1af03571b56e1c060552d57b6795f88100"
               "bc287b2179d3e03a5f6827db",
        stats=(17, 24, 312, 312, 5555)),
    "2-safe-logged": dict(
        technique="2-safe", crash=False, log_time=0.05,
        digest="64f96f11a31004530d5492230be99cf7c1edadc0"
               "d874ad02d36d00f70fcbcbff",
        stats=(17, 24, 312, 312, 5835)),
    "group-safe-crash": dict(
        technique="group-safe", crash=True, log_time=0.0,
        digest="aef71e8fb8bf5eabb2bd64800e432227f546fe6a"
               "9cb9f1a2fa7da25c739abfe7",
        stats=(15, 24, 296, 296, 4759)),
    "2-safe-crash": dict(
        technique="2-safe", crash=True, log_time=0.05,
        digest="c56449d6c4f650dffb62dca30edecf6e4f2d365d"
               "ffdde60d4121240490c82d1b",
        stats=(15, 24, 309, 309, 5703)),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_fixed_sequencer_reproduces_the_seed_traces(name):
    golden = GOLDEN[name]
    cluster, results, trace = run_scenario(
        golden["technique"], crash_coordinator=golden["crash"],
        log_time=golden["log_time"], traced=True)
    assert scenario_stats(cluster, results) == golden["stats"]
    assert trace_digest(trace) == golden["digest"]


# ---------------------------------------------------------------- engine grid
#: Four safety configurations of the failure matrix, including the 2-safe
#: variant with a non-zero delivery-log cost.
GRID_CONFIGS = (
    ("group-safe", 0.0),
    ("group-1-safe", 0.0),
    ("2-safe", 0.0),
    ("2-safe", 0.05),
)


def audit_commit_integrity(cluster, results, audited_servers):
    """Committed responses must be recorded once, on every audited server."""
    committed = [entry.value.txn_id for entry in results
                 if entry.triggered and entry.value.committed]
    # No duplicated commits: one response per transaction.
    assert len(committed) == len(set(committed))
    missing = [(txn_id, name)
               for txn_id in committed
               for name in audited_servers
               if name not in cluster.committed_anywhere(txn_id)]
    assert missing == [], missing
    return committed


@pytest.mark.parametrize("engine", ("fixed-sequencer", "multi-paxos"))
@pytest.mark.parametrize("technique,log_time", GRID_CONFIGS)
def test_engine_grid_preserves_commit_integrity(technique, log_time, engine):
    cluster, results, _ = run_scenario(technique, engine=engine,
                                       log_time=log_time)
    assert all(entry.triggered for entry in results)
    committed = audit_commit_integrity(cluster, results,
                                       cluster.server_names())
    assert committed, "grid cell committed nothing"


@pytest.mark.parametrize("technique", ("group-safe", "group-1-safe",
                                       "2-safe"))
def test_paxos_survives_a_leader_crash_without_loss(technique):
    # s1 is both the initial Paxos leader (lowest live member) and the
    # technique's delegate; crashing and recovering it mid-run must lose
    # and duplicate nothing.  The integrity audit covers the servers that
    # never crashed: a checkpoint-restored replica may legitimately miss
    # registry entries for transactions that were mid-commit at snapshot
    # time (the techniques' documented recovery semantics, independent of
    # the ordering engine).
    cluster, results, _ = run_scenario(technique, engine="multi-paxos",
                                       crash_coordinator=True)
    assert all(entry.triggered for entry in results), \
        "a submitted transaction never got a response"
    never_crashed = [name for name in cluster.up_servers() if name != "s1"]
    audit_commit_integrity(cluster, results, never_crashed)
