"""Tests of the GCS vocabulary, failure detector and view membership."""

from __future__ import annotations

import pytest

from repro.gcs import (ATOMIC_BROADCAST_PROPERTIES, END_TO_END_PROPERTIES,
                       BroadcastTrace, DeliveryRecord, FailureDetector,
                       GroupMembership, ProcessClass, classify_process)
from repro.network import Lan, Node
from repro.sim import Simulator


def test_process_classes_goodness():
    assert ProcessClass.GREEN.is_good
    assert ProcessClass.YELLOW.is_good
    assert not ProcessClass.RED.is_good


def test_classify_process_from_behaviour():
    assert classify_process(0, currently_up=True) is ProcessClass.GREEN
    assert classify_process(2, currently_up=True) is ProcessClass.YELLOW
    assert classify_process(1, currently_up=False,
                            recovers_in_future=True) is ProcessClass.YELLOW
    assert classify_process(1, currently_up=False) is ProcessClass.RED


def test_property_catalogues_cover_the_paper():
    names = {prop.name for prop in ATOMIC_BROADCAST_PROPERTIES}
    assert names == {"validity", "uniform agreement", "uniform integrity",
                     "uniform total order"}
    e2e_names = {prop.name for prop in END_TO_END_PROPERTIES}
    assert "end-to-end" in e2e_names


def test_broadcast_trace_checks():
    trace = BroadcastTrace()
    trace.record_send("m1")
    trace.record_send("m2")
    for member in ("a", "b"):
        trace.record_delivery(DeliveryRecord(member, "m1", 1, 1.0))
        trace.record_delivery(DeliveryRecord(member, "m2", 2, 2.0))
    assert trace.check_validity()
    assert trace.check_integrity()
    assert trace.check_total_order()
    assert trace.check_uniform_agreement(["a", "b"])
    # "c" never delivered anything: agreement fails if it is declared non-red.
    assert not trace.check_uniform_agreement(["a", "b", "c"])


def test_broadcast_trace_detects_order_and_integrity_violations():
    trace = BroadcastTrace()
    trace.record_send("m1")
    trace.record_send("m2")
    trace.record_delivery(DeliveryRecord("a", "m1", 1, 1.0))
    trace.record_delivery(DeliveryRecord("a", "m2", 2, 2.0))
    trace.record_delivery(DeliveryRecord("b", "m2", 1, 1.0))
    trace.record_delivery(DeliveryRecord("b", "m1", 2, 2.0))
    assert not trace.check_total_order()
    trace.record_delivery(DeliveryRecord("a", "m1", 3, 3.0))
    assert not trace.check_integrity()
    trace.record_delivery(DeliveryRecord("a", "rogue", 4, 4.0))
    assert not trace.check_validity()


def test_end_to_end_check_requires_acknowledgements():
    trace = BroadcastTrace()
    trace.record_send("m1")
    trace.record_delivery(DeliveryRecord("a", "m1", 1, 1.0, acknowledged=True))
    trace.record_delivery(DeliveryRecord("b", "m1", 1, 1.0))
    assert trace.check_end_to_end(["a"])
    assert not trace.check_end_to_end(["a", "b"])


def test_failure_detector_announces_with_delay():
    sim = Simulator()
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, 4)]
    detector = FailureDetector(sim, lan, detection_delay=2.0)
    events = []
    detector.subscribe(lambda member, kind: events.append((member, kind, sim.now)))
    nodes[1].crash()
    sim.run()
    assert events == [("s2", "suspect", 2.0)]
    assert detector.is_suspected("s2")
    assert detector.alive_members() == ["s1", "s3"]
    nodes[1].recover()
    sim.run()
    assert events[-1] == ("s2", "restore", pytest.approx(sim.now))
    assert not detector.is_suspected("s2")


def test_failure_detector_ignores_bounced_nodes():
    sim = Simulator()
    lan = Lan(sim)
    node = lan.attach(Node(sim, "s1"))
    detector = FailureDetector(sim, lan, detection_delay=5.0)
    events = []
    detector.subscribe(lambda member, kind: events.append(kind))
    node.crash()
    node.recover()      # recovers before the detection delay elapses
    sim.run()
    assert "suspect" not in events


def test_membership_views_and_quorum():
    sim = Simulator()
    membership = GroupMembership(sim, ["s1", "s2", "s3"])
    assert membership.view.view_id == 0
    assert membership.view.members == ("s1", "s2", "s3")
    assert membership.quorum_size == 2
    assert membership.has_quorum and not membership.group_failed
    assert membership.is_primary("s1")

    membership.remove_member("s1")
    assert membership.view.view_id == 1
    assert membership.view.primary == "s2"
    membership.remove_member("s3")
    assert membership.group_failed

    membership.add_member("s1")
    # Order follows the static membership, so s1 is primary again.
    assert membership.view.primary == "s1"
    assert membership.has_quorum


def test_membership_noop_changes_and_validation():
    sim = Simulator()
    membership = GroupMembership(sim, ["s1", "s2", "s3"])
    assert membership.remove_member("unknown") is None
    assert membership.add_member("s1") is None
    with pytest.raises(ValueError):
        membership.add_member("stranger")
    with pytest.raises(ValueError):
        GroupMembership(sim, [])


def test_membership_listener_receives_views():
    sim = Simulator()
    membership = GroupMembership(sim, ["s1", "s2"])
    views = []
    membership.subscribe(lambda view: views.append(view.members))
    membership.remove_member("s2")
    assert views == [("s1",)]


def test_membership_driven_by_failure_detector():
    sim = Simulator()
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, 4)]
    detector = FailureDetector(sim, lan, detection_delay=1.0)
    membership = GroupMembership(sim, [n.name for n in nodes],
                                 failure_detector=detector)
    nodes[0].crash()
    sim.run()
    assert membership.view.members == ("s2", "s3")
    nodes[0].recover()
    sim.run()
    assert membership.view.members == ("s1", "s2", "s3")
