"""Tests of the buffer pool: hit ratio, write paths, back-pressure, flusher."""

from __future__ import annotations

import pytest

from repro.db import BufferPool
from repro.network import Node
from repro.sim import Simulator


def make_buffer(sim, **kwargs):
    node = Node(sim, "s1")
    defaults = dict(hit_ratio=0.2, read_time_low=8.0, read_time_high=8.0,
                    write_time_low=8.0, write_time_high=8.0)
    defaults.update(kwargs)
    return node, BufferPool(sim, node, **defaults)


def test_read_miss_uses_disk_and_hit_does_not():
    sim = Simulator(seed=1)
    node, buffer = make_buffer(sim, hit_ratio=0.0)

    def reader():
        yield from buffer.read_item("x")

    node.spawn(reader())
    sim.run()
    assert buffer.read_misses == 1 and buffer.read_hits == 0
    assert node.disk.busy_time == pytest.approx(8.0)

    sim2 = Simulator(seed=1)
    node2, buffer2 = make_buffer(sim2, hit_ratio=1.0)

    def reader2():
        yield from buffer2.read_item("x")

    node2.spawn(reader2())
    sim2.run()
    assert buffer2.read_hits == 1 and buffer2.read_misses == 0
    assert node2.disk.busy_time == 0.0


def test_hit_ratio_statistics_converge():
    sim = Simulator(seed=3)
    node, buffer = make_buffer(sim, hit_ratio=0.2)

    def reader():
        for _ in range(500):
            yield from buffer.read_item("x")

    node.spawn(reader())
    sim.run()
    ratio = buffer.read_hits / (buffer.read_hits + buffer.read_misses)
    assert 0.12 < ratio < 0.28


def test_sync_write_miss_hits_disk():
    sim = Simulator(seed=2)
    node, buffer = make_buffer(sim, hit_ratio=0.0)

    def writer():
        yield from buffer.write_item_sync("x")

    node.spawn(writer())
    sim.run()
    assert buffer.sync_writes == 1
    assert node.disk.busy_time == pytest.approx(8.0)


def test_async_write_marks_dirty_without_disk_time():
    sim = Simulator()
    node, buffer = make_buffer(sim)
    buffer.write_item_async("x")
    buffer.write_item_async("y")
    assert buffer.dirty_count == 2
    assert node.disk.busy_time == 0.0


def test_write_behind_flusher_drains_dirty_items():
    sim = Simulator()
    node, buffer = make_buffer(sim)
    for index in range(5):
        buffer.write_item_async(f"item-{index}")
    buffer.start_write_behind(interval=10.0)
    sim.run(until=200.0)
    assert buffer.dirty_count == 0
    assert buffer.flushed_pages == 5
    assert node.disk.busy_time > 0.0


def test_background_write_factor_reduces_disk_time():
    sim = Simulator(seed=5)
    node, buffer = make_buffer(sim, background_write_factor=0.5)
    buffer.write_item_async("x")

    def drain():
        yield from buffer.flush_some()

    node.spawn(drain())
    sim.run()
    assert node.disk.busy_time == pytest.approx(4.0)


def test_backpressure_gate_closes_and_reopens():
    sim = Simulator()
    node, buffer = make_buffer(sim, max_dirty=4, low_watermark=0.5)
    for index in range(4):
        buffer.write_item_async(f"item-{index}")
    assert not buffer.has_space
    assert buffer.throttle_events == 1
    blocked = []

    def producer():
        yield buffer.wait_for_space()
        blocked.append(sim.now)

    def flusher():
        yield from buffer.flush_some()

    node.spawn(producer())
    node.spawn(flusher())
    sim.run()
    assert blocked                      # the producer eventually unblocked
    assert buffer.has_space


def test_wait_for_space_immediate_when_unbounded():
    sim = Simulator()
    node, buffer = make_buffer(sim)      # max_dirty=None
    for index in range(1000):
        buffer.write_item_async(f"item-{index}")
    assert buffer.has_space
    passed = []

    def producer():
        yield buffer.wait_for_space()
        passed.append(sim.now)

    node.spawn(producer())
    sim.run()
    assert passed == [0.0]


def test_lose_volatile_clears_dirty_and_reopens_gate():
    sim = Simulator()
    node, buffer = make_buffer(sim, max_dirty=2)
    buffer.write_item_async("a")
    buffer.write_item_async("b")
    assert not buffer.has_space
    buffer.lose_volatile()
    assert buffer.dirty_count == 0
    assert buffer.has_space


def test_invalid_parameters_rejected():
    sim = Simulator()
    node = Node(sim, "s1")
    with pytest.raises(ValueError):
        BufferPool(sim, node, hit_ratio=1.5)
    with pytest.raises(ValueError):
        BufferPool(sim, node, max_dirty=0)
    with pytest.raises(ValueError):
        BufferPool(sim, node, background_write_factor=0.0)
