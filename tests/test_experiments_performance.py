"""Tests of the Fig. 9 harness and the Sect. 7 scaling experiment.

These use shortened durations and (for the integration check of the full
sweep machinery) the real Table 4 topology at a single load point, so they
stay fast while still exercising the exact code path the benchmarks run.
"""

from __future__ import annotations

import pytest

from repro.experiments import (analytic_scaling, conflicting_updates_run,
                               crossover_load, curves, figure9_sweep,
                               render_figure9, render_scaling, run_load_point)
from repro.experiments.figure9 import FIGURE9_LOADS, FIGURE9_TECHNIQUES, LoadPoint
from repro.workload import SimulationParameters


def test_figure9_constants_match_the_paper():
    assert FIGURE9_TECHNIQUES == ("group-safe", "group-1-safe", "1-safe")
    assert FIGURE9_LOADS[0] == 20 and FIGURE9_LOADS[-1] == 40


@pytest.fixture(scope="module")
def single_point():
    return run_load_point("group-safe", load_tps=25.0,
                          duration_ms=6_000.0, warmup_ms=1_500.0, seed=4)


def test_run_load_point_produces_sane_statistics(single_point):
    point = single_point
    assert point.technique == "group-safe"
    assert point.committed_transactions > 50
    assert 0.0 <= point.abort_rate < 0.2
    assert 0.0 < point.mean_response_time_ms < 500.0
    assert point.p90_response_time_ms >= point.mean_response_time_ms * 0.5
    # The open-loop pool should achieve roughly the offered load.
    assert point.achieved_throughput_tps == pytest.approx(25.0, rel=0.35)


def test_curves_crossover_and_rendering_helpers():
    points = [
        LoadPoint("group-safe", 20, 60.0, 80.0, 0.01, 100, 1, 19.0, 1000.0),
        LoadPoint("group-safe", 40, 300.0, 400.0, 0.05, 150, 8, 30.0, 1000.0),
        LoadPoint("1-safe", 20, 130.0, 150.0, 0.0, 100, 0, 19.0, 1000.0),
        LoadPoint("1-safe", 40, 220.0, 260.0, 0.0, 150, 0, 30.0, 1000.0),
    ]
    series = curves(points)
    assert set(series) == {"group-safe", "1-safe"}
    assert [p.offered_load_tps for p in series["group-safe"]] == [20, 40]
    assert crossover_load(points) == 40
    rendering = render_figure9(points)
    assert "load (tps)" in rendering and "group-safe" in rendering
    # No crossover case.
    flat = [point for point in points if point.offered_load_tps == 20]
    assert crossover_load(flat) is None


def test_figure9_sweep_on_a_reduced_grid_preserves_the_low_load_ordering():
    points = figure9_sweep(loads=(22.0,), techniques=("group-safe", "1-safe"),
                           duration_ms=6_000.0, warmup_ms=1_500.0, seed=3)
    series = curves(points)
    group_safe = series["group-safe"][0]
    lazy = series["1-safe"][0]
    # The paper's low-load ordering: group-safe clearly outperforms lazy.
    assert group_safe.mean_response_time_ms < lazy.mean_response_time_ms


def test_analytic_scaling_and_rendering():
    points = analytic_scaling(server_counts=(3, 9, 15))
    assert [point.server_count for point in points] == [3, 9, 15]
    assert points[-1].group_safe_wins
    rendering = render_scaling(points)
    assert "servers" in rendering and "group-safe" in rendering


def test_conflicting_updates_diverge_only_under_lazy_replication():
    lazy = conflicting_updates_run("1-safe", conflicts=6, seed=8)
    group = conflicting_updates_run("group-safe", conflicts=6, seed=8)
    # Lazy accepts everything (no conflict handling)...
    assert lazy.aborted == 0
    assert lazy.committed == lazy.submitted
    # ...while certification aborts at least one of each conflicting pair.
    assert group.aborted >= 1
    # And the group-based copies never diverge.
    assert not group.diverged
