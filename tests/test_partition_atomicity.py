"""Atomicity of cross-partition transactions (the 2PC acceptance property).

Every transaction that spans several partitions must either commit on all
involved partitions or abort on all of them — regardless of the safety
technique each partition's replica group runs.
"""

from __future__ import annotations

import pytest

from repro.db.operations import make_program
from repro.db.transaction import WriteSetMessage
from repro.partition import (ABORT_VALIDATION, CrossPartitionOutcome,
                             PartitionedCluster, PartitionedOpenLoopClients)
from repro.replication.results import TransactionResult
from repro.workload import SimulationParameters


def build_cluster(technique="group-safe", partitions=2, items=100, seed=7,
                  techniques=None, **overrides):
    """A started partitioned cluster with range sharding (key control)."""
    params = SimulationParameters.small(server_count=3, item_count=items)
    if overrides:
        params = params.with_overrides(**overrides)
    cluster = PartitionedCluster(technique, params=params, seed=seed,
                                 partition_count=partitions, strategy="range",
                                 techniques=techniques)
    cluster.start()
    return cluster


def value_installed_somewhere(cluster, marker):
    """True if any server of any partition holds an item with ``marker``."""
    for group in cluster.groups:
        for name in group.server_names():
            items = group.database(name).items
            for key in items.keys():
                if items.get(key).value == marker:
                    return True
    return False


# ---------------------------------------------------------------- commit path
def test_cross_partition_commit_lands_on_all_partitions():
    cluster = build_cluster()
    # item-10 lives on partition 0, item-90 on partition 1 (range sharding).
    program = make_program([("r", "item-10"), ("w", "item-10", "both-0"),
                            ("r", "item-90"), ("w", "item-90", "both-1")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=5_000)

    outcome = waiter.value
    assert isinstance(outcome, CrossPartitionOutcome)
    assert outcome.committed
    assert outcome.partitions == (0, 1)
    for branch in outcome.branches:
        assert branch.committed and branch.txn_id is not None
        assert cluster.group(branch.partition_id).committed_everywhere(
            branch.txn_id)
    # The written values are installed on every server of both groups.
    for group, key, value in ((cluster.group(0), "item-10", "both-0"),
                              (cluster.group(1), "item-90", "both-1")):
        for name in group.server_names():
            assert group.database(name).value_of(key) == value


def test_read_only_cross_partition_transaction_commits_without_writes():
    cluster = build_cluster()
    program = make_program([("r", "item-10"), ("r", "item-90")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=2_000)
    outcome = waiter.value
    assert outcome.committed
    assert all(branch.txn_id is None for branch in outcome.branches)


def test_single_partition_program_takes_the_fast_path():
    cluster = build_cluster()
    program = make_program([("r", "item-10"), ("w", "item-11", "v")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=2_000)
    assert isinstance(waiter.value, TransactionResult)
    assert waiter.value.committed
    assert cluster.router.single_partition_count == 1
    assert len(cluster.cross_partition_outcomes()) == 0


# ---------------------------------------------------------------- abort path
def test_stale_prepare_aborts_on_every_partition():
    # Deterministic read times make the prepare window predictable: the
    # branch on partition 0 is a single 5 ms read, the branch on partition 1
    # reads ten items (>= 50 ms), so bumping the partition-0 item at t=20ms
    # lands squarely between the fast branch's read and vote collection.
    cluster = build_cluster(read_time_min=5.0, read_time_max=5.0,
                            buffer_hit_ratio=0.0)
    operations = [("r", "item-10"), ("w", "item-10", "poison-0")]
    operations += [("r", f"item-{60 + index}") for index in range(10)]
    operations += [("w", "item-90", "poison-1")]
    waiter = cluster.run_transaction(make_program(operations))
    cluster.run(until=20.0)

    # A concurrent writer overwrites item-10 on partition 0 while the other
    # branch is still reading: the recorded version is now stale.
    intruder = WriteSetMessage(txn_id="intruder", delegate="p0.s1",
                               read_versions={}, write_values={"item-10": "i"},
                               program_id=10_000)
    for name in cluster.group(0).server_names():
        cluster.group(0).database(name).install_writes(intruder)
    cluster.run(until=5_000)

    outcome = waiter.value
    assert not outcome.committed
    assert outcome.abort_reason == ABORT_VALIDATION
    assert not outcome.in_doubt
    # All-or-nothing: neither partition installed any of the writes.
    assert all(branch.txn_id is None for branch in outcome.branches)
    assert not value_installed_somewhere(cluster, "poison-0")
    assert not value_installed_somewhere(cluster, "poison-1")


def test_home_delegate_crash_during_decision_flush_aborts_cleanly():
    # Full buffer hits make both prepares finish within ~1 ms, so the crash
    # lands under the coordinator's decision flush on the home delegate; it
    # must abort the transaction, not tear down the simulation.
    cluster = build_cluster(buffer_hit_ratio=1.0,
                            write_time_min=5.0, write_time_max=5.0)
    program = make_program([("r", "item-10"), ("w", "item-10", "poison-0"),
                            ("w", "item-90", "poison-1")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=2.0)
    cluster.crash_server(0, "p0.s1")
    cluster.run(until=5_000)
    outcome = waiter.value
    assert not outcome.committed
    assert not value_installed_somewhere(cluster, "poison-0")
    assert not value_installed_somewhere(cluster, "poison-1")


def test_queued_decision_flushes_never_hang_after_home_delegate_crash():
    # Two coordinators contend for the home delegate's disk: when the crash
    # lands, one flush is in service and the other is still queued.  A
    # queued request is cancelled *silently* (no exception reaches the
    # sim-spawned coordinator), so only the bounded decision wait keeps the
    # clients from hanging forever.
    cluster = build_cluster(buffer_hit_ratio=1.0,
                            write_time_min=5.0, write_time_max=5.0)
    waiters = [
        cluster.run_transaction(make_program(
            [("w", "item-10", f"q{index}-0"), ("w", "item-90", f"q{index}-1")]))
        for index in range(2)]
    cluster.run(until=0.5)
    cluster.crash_server(0, "p0.s1")
    cluster.run(until=10_000)
    for index, waiter in enumerate(waiters):
        assert waiter.triggered, f"transaction {index} hung"
        outcome = waiter.value
        assert not outcome.committed
        assert not value_installed_somewhere(cluster, f"q{index}-0")
        assert not value_installed_somewhere(cluster, f"q{index}-1")


def test_decided_branch_blocks_through_outage_and_commits_on_recovery():
    # The global decision is logged, partition 0 commits its branch, then
    # partition 1 (lazy, so recovery is purely local) crashes wholesale.
    # The branch must block — not be dropped, not report a false abort — and
    # install once the group comes back.
    cluster = build_cluster(techniques=["group-safe", "1-safe"],
                            buffer_hit_ratio=0.0,
                            read_time_min=5.0, read_time_max=5.0,
                            write_time_min=5.0, write_time_max=5.0)
    program = make_program([("w", "item-10", "late-0"),
                            ("w", "item-90", "late-1")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=8.0)            # decision flushed at t=5ms; phase 2 live
    cluster.crash_partition(1)
    cluster.run(until=3_000)
    assert not waiter.triggered       # blocked, never a partial abort
    assert cluster.coordinator.in_doubt_branches == 1
    for name in cluster.group(1).server_names():
        cluster.recover_server(1, name)
    cluster.run(until=10_000)
    outcome = waiter.value
    assert outcome.committed
    assert cluster.coordinator.in_doubt_branches == 0
    for branch in outcome.branches:
        assert cluster.group(branch.partition_id).committed_anywhere(
            branch.txn_id)


def test_unavailable_partition_aborts_the_whole_transaction():
    cluster = build_cluster()
    cluster.crash_partition(1)
    program = make_program([("w", "item-10", "lost-0"),
                            ("w", "item-90", "lost-1")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=3_000)
    outcome = waiter.value
    assert not outcome.committed
    assert outcome.abort_reason is not None
    assert not value_installed_somewhere(cluster, "lost-0")
    assert not value_installed_somewhere(cluster, "lost-1")


def test_decision_records_are_not_phantom_commits():
    cluster = build_cluster()
    program = make_program([("w", "item-10", "d0"), ("w", "item-90", "d1")])
    waiter = cluster.run_transaction(program)
    cluster.run(until=5_000)
    assert waiter.value.committed
    # The 2PC decision went to some p0 WAL, but it must never surface as a
    # committed transaction (recovery redo / audit / committed_transactions).
    all_logged = [txn_id
                  for name in cluster.group(0).server_names()
                  for txn_id in cluster.group(0).database(name)
                  .logged_transactions()]
    assert not any(txn_id.startswith("xp-") for txn_id in all_logged)
    # And the fast-path result view excludes the internal branch installs.
    branch_ids = {branch.txn_id for branch in waiter.value.branches}
    fast_path_ids = {result.txn_id
                     for result in cluster.all_single_partition_results()}
    assert not branch_ids & fast_path_ids


# ---------------------------------------------------------------- bulk property
@pytest.mark.parametrize("technique", ["group-safe", "group-1-safe", "1-safe"])
def test_bulk_workload_is_all_or_nothing(technique):
    cluster = build_cluster(technique=technique, items=120, seed=13,
                            cross_partition_probability=0.5)
    clients = PartitionedOpenLoopClients(cluster, load_tps=25.0)
    clients.start()
    cluster.run(until=6_000)
    # Stop injecting new arrivals and let in-flight work settle: freeze time
    # advancement by running a bounded settle window instead.
    cluster.run(until=9_000)

    outcomes = cluster.cross_partition_outcomes()
    assert len(outcomes) > 10
    committed = [outcome for outcome in outcomes if outcome.committed]
    aborted = [outcome for outcome in outcomes if not outcome.committed]
    assert committed, "expected at least one cross-partition commit"
    for outcome in committed:
        for branch in outcome.branches:
            assert branch.committed
            if branch.txn_id is None:
                continue  # read-only branch
            group = cluster.group(branch.partition_id)
            if technique == "1-safe":
                # Lazy durability is delegate-local; propagation is eventual.
                assert group.committed_anywhere(branch.txn_id)
            else:
                assert group.committed_everywhere(branch.txn_id)
    for outcome in aborted:
        assert not outcome.in_doubt
        # An aborted transaction never submitted any branch anywhere.
        assert all(branch.txn_id is None for branch in outcome.branches)
