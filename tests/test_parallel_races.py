"""The runtime race detector of ``run_sharded(..., detect_races=True)``.

Two obligations: a shard that sends inside the conservative lookahead window
must be caught with full provenance, and on a protocol-clean scenario the
detector must be a pure observer — bit-identical digests with detection on
and off, at every worker count.
"""

from __future__ import annotations

import pytest

from repro.partition.parallel_cluster import ShardScenario, \
    run_parallel_sharded
from repro.sim.parallel import LookaheadViolation, ShardSpec, run_sharded

LOOKAHEAD = 5.0
UNTIL = 100.0


def _specs(latency: float):
    config = {"latency": latency, "period": 7.0, "until": UNTIL}
    return [ShardSpec(shard_id=shard_id, builder="racy_shard:build",
                      config=config)
            for shard_id in (0, 1)]


@pytest.mark.parametrize("workers", [0, 1])
def test_detector_catches_send_inside_lookahead_window(workers):
    with pytest.raises(LookaheadViolation) as excinfo:
        run_sharded(_specs(latency=0.5), lookahead=LOOKAHEAD, until=UNTIL,
                    workers=workers, detect_races=True)
    violation = excinfo.value
    assert violation.lookahead == LOOKAHEAD
    assert violation.offending is not None
    assert violation.offending.origin_shard == 0
    assert violation.offending.dest_shard == 1
    assert violation.offending.deliver_at < violation.floor + LOOKAHEAD
    assert "floor + lookahead" in str(violation)


def test_undetected_race_passes_silently_without_the_flag():
    # The same broken model runs to completion when detection is off — which
    # is exactly why the detector exists.
    report = run_sharded(_specs(latency=0.5), lookahead=LOOKAHEAD,
                         until=UNTIL, workers=0)
    assert report.windows > 0


@pytest.mark.parametrize("workers", [0, 2])
def test_clean_scenario_digests_identical_with_detection_on_and_off(workers):
    plain = run_sharded(_specs(latency=LOOKAHEAD), lookahead=LOOKAHEAD,
                        until=UNTIL, workers=workers)
    checked = run_sharded(_specs(latency=LOOKAHEAD), lookahead=LOOKAHEAD,
                          until=UNTIL, workers=workers, detect_races=True)
    assert plain.shard_results == checked.shard_results
    assert plain.windows == checked.windows
    assert plain.messages == checked.messages
    # The clean run really exchanged messages — non-vacuous.
    assert plain.messages > 0


def test_full_cluster_scenario_is_race_clean_under_detection():
    scenario = ShardScenario(
        technique="group-safe", shard_count=2, seed=5,
        items_per_shard=40, servers_per_shard=3,
        load_tps_per_shard=30.0, cross_shard_probability=0.3,
        cross_shard_latency=4.0, duration_ms=300.0, trace=True)
    plain = run_parallel_sharded(scenario, workers=0)
    checked = run_parallel_sharded(scenario, workers=0, detect_races=True)
    assert checked.digests == plain.digests
    assert checked.messages == plain.messages
