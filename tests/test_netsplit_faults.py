"""Tests of the LinkFault model and per-cause LAN drop accounting.

Pins the fault taxonomy (partition / isolate / asymmetric / lossy / slow),
the scheduled install/remove machinery that gives faults durations, the
directional semantics of ``Lan.block`` / ``unblock``, and the
``dropped_by_cause`` split the metrics collectors surface.
"""

from __future__ import annotations

import pytest

from repro.network import Lan, LinkFault, Message, Node
from repro.network.faults import FaultTables
from repro.sim import Simulator


def make_lan(sim, count=3, **kwargs):
    lan = Lan(sim, **kwargs)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, count + 1)]
    return lan, nodes


def delivered(lan, sender, destination, kind="X"):
    before = lan.delivered_count
    lan.send(Message(sender=sender, destination=destination, kind=kind))
    lan.sim.run()
    return lan.delivered_count - before


# -- LinkFault construction and validation --------------------------------------------

def test_fault_requires_name_and_valid_probabilities():
    with pytest.raises(ValueError):
        LinkFault(name="")
    with pytest.raises(ValueError):
        LinkFault.lossy("bad", ["a"], ["b"], probability=1.5)
    with pytest.raises(ValueError):
        LinkFault.slow("bad", ["a"], ["b"], factor=0.0)


def test_partition_constructor_blocks_both_directions():
    fault = LinkFault.partition("split", ["s1", "s2"], ["s3"])
    assert set(fault.blocked) == {("s1", "s3"), ("s3", "s1"),
                                  ("s2", "s3"), ("s3", "s2")}


def test_isolate_excludes_the_node_from_its_own_peer_set():
    fault = LinkFault.isolate("iso", "s1", ["s1", "s2", "s3"])
    assert set(fault.blocked) == {("s1", "s2"), ("s2", "s1"),
                                  ("s1", "s3"), ("s3", "s1")}


def test_fault_tables_compose_loss_and_latency():
    tables = FaultTables.combine([
        LinkFault.lossy("l1", ["a"], ["b"], 0.5),
        LinkFault.lossy("l2", ["a"], ["b"], 0.5),
        LinkFault.slow("w1", ["a"], ["b"], 2.0),
        LinkFault.slow("w2", ["a"], ["b"], 3.0),
    ])
    assert tables.loss[("a", "b")] == pytest.approx(0.75)
    assert tables.latency[("a", "b")] == pytest.approx(6.0)


# -- directional manual blocking ------------------------------------------------------

def test_block_is_directional_and_unblock_restores_it():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.block("s1", "s2")
    assert delivered(lan, "s1", "s2") == 0       # blocked direction drops
    assert delivered(lan, "s2", "s1") == 1       # reverse direction flows
    lan.unblock("s1", "s2")
    assert delivered(lan, "s1", "s2") == 1
    assert lan.dropped_by_cause == {"partitioned": 1}


def test_symmetric_blocking_takes_both_directions():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.block("s1", "s2")
    lan.block("s2", "s1")
    assert delivered(lan, "s1", "s2") == 0
    assert delivered(lan, "s2", "s1") == 0
    lan.unblock("s1", "s2")
    assert delivered(lan, "s1", "s2") == 1
    assert delivered(lan, "s2", "s1") == 0       # other direction still pinned


def test_heal_clears_manual_blocks_but_not_faults():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.block("s1", "s2")
    lan.install_fault(LinkFault.partition("split", ["s1"], ["s3"]))
    lan.heal()
    assert not lan.is_blocked("s1", "s2")
    assert lan.is_blocked("s1", "s3")
    lan.remove_fault("split")
    assert not lan.is_blocked("s1", "s3")


# -- installed faults -----------------------------------------------------------------

def test_partition_fault_drops_with_partitioned_cause():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.install_fault(LinkFault.partition("split", ["s1"], ["s2"]))
    assert delivered(lan, "s1", "s2") == 0
    assert delivered(lan, "s2", "s1") == 0
    assert delivered(lan, "s1", "s3") == 1
    assert lan.dropped_by_cause == {"partitioned": 2}


def test_asymmetric_fault_blocks_only_listed_directions():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.install_fault(LinkFault.asymmetric("oneway", [("s1", "s2")]))
    assert delivered(lan, "s1", "s2") == 0
    assert delivered(lan, "s2", "s1") == 1


def test_partition_arriving_mid_flight_drops_the_message():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    lan.install_fault(LinkFault.partition("split", ["s1"], ["s2"]))
    sim.run()
    assert lan.delivered_count == 0
    assert lan.dropped_by_cause == {"partitioned": 1}


def test_lossy_fault_drops_deterministically_per_seed():
    def run(seed):
        sim = Simulator(seed=seed)
        lan, _nodes = make_lan(sim)
        lan.install_fault(LinkFault.lossy("flaky", ["s1"], ["s2"], 0.5))
        for _ in range(200):
            lan.send(Message(sender="s1", destination="s2", kind="X"))
        sim.run()
        return lan.delivered_count, lan.dropped_by_cause.get("lossy-link", 0)

    first = run(7)
    assert first == run(7)                  # deterministic per seed
    assert first != run(8)                  # and seed-sensitive
    delivered_n, dropped_n = first
    assert delivered_n + dropped_n == 200
    assert 60 <= dropped_n <= 140           # roughly the configured rate


def test_lossy_fault_does_not_affect_unlisted_pairs():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.install_fault(LinkFault.lossy("flaky", ["s1"], ["s2"], 1.0))
    assert delivered(lan, "s1", "s2") == 0
    assert delivered(lan, "s1", "s3") == 1
    assert lan.dropped_by_cause == {"lossy-link": 1}


def test_slow_fault_multiplies_latency_for_listed_pairs_only():
    sim = Simulator()
    lan, (a, b, c) = make_lan(sim)
    lan.install_fault(LinkFault.slow("congested", ["s1"], ["s2"], 10.0))
    arrivals = {}

    def consumer(node):
        message = yield node.inbox.get()
        arrivals[node.name] = sim.now

    b.spawn(consumer(b))
    c.spawn(consumer(c))
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    lan.send(Message(sender="s1", destination="s3", kind="X"))
    sim.run()
    assert arrivals["s2"] == pytest.approx(0.7)
    assert arrivals["s3"] == pytest.approx(0.07)


def test_install_replaces_fault_of_same_name_and_remove_returns_it():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    lan.install_fault(LinkFault.partition("split", ["s1"], ["s2"]))
    lan.install_fault(LinkFault.partition("split", ["s1"], ["s3"]))
    assert not lan.is_blocked("s1", "s2")
    assert lan.is_blocked("s1", "s3")
    assert lan.active_faults() == ["split"]
    removed = lan.remove_fault("split")
    assert removed is not None and removed.name == "split"
    assert lan.remove_fault("split") is None


def test_scheduled_fault_has_a_duration():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    lan.schedule_fault(LinkFault.partition("window", ["s1"], ["s2"]),
                       at=10.0, until=20.0)
    with pytest.raises(ValueError):
        lan.schedule_fault(LinkFault.partition("bad", ["s1"], ["s2"]),
                           at=10.0, until=10.0)

    sent = []

    def sender():
        for when in (5.0, 15.0, 25.0):
            yield sim.timeout(when - sim.now)
            lan.send(Message(sender="s1", destination="s2", kind="X",
                             payload=when))
            sent.append(when)

    received = []

    def consumer():
        while True:
            message = yield b.inbox.get()
            received.append(message.payload)

    sim.spawn(sender())
    b.spawn(consumer())
    sim.run(until=100.0)
    assert sent == [5.0, 15.0, 25.0]
    assert received == [5.0, 25.0]          # only the mid-window send is lost
    assert lan.dropped_by_cause == {"partitioned": 1}


# -- per-cause accounting -------------------------------------------------------------

def test_dropped_by_cause_distinguishes_all_causes():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    lan.send(Message(sender="s1", destination="nowhere", kind="X"))
    b.crash()
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    lan.block("s1", "s3")
    lan.send(Message(sender="s1", destination="s3", kind="X"))
    sim.run()
    assert lan.dropped_by_cause == {"destination-unknown": 1,
                                    "destination-crashed": 1,
                                    "partitioned": 1}
    assert lan.dropped_count == 3


def test_no_fault_run_creates_no_loss_stream():
    sim = Simulator()
    lan, _nodes = make_lan(sim)
    assert lan._loss_stream is None
    lan.install_fault(LinkFault.partition("split", ["s1"], ["s2"]))
    assert lan._loss_stream is None          # blocking needs no randomness
    lan.install_fault(LinkFault.lossy("flaky", ["s1"], ["s2"], 0.1))
    assert lan._loss_stream is not None


# -- metrics surfacing ----------------------------------------------------------------

def test_metrics_collector_surfaces_drop_causes_and_suspicions():
    """The cluster snapshot splits LAN drops by cause and samples the
    per-group failure detectors — a netsplit shows up as ``partitioned``
    drops plus one suspect/restore pair on the affected shard only."""
    from repro.partition.cluster import PartitionedCluster
    from repro.workload import SimulationParameters

    params = SimulationParameters.small(server_count=3, item_count=120) \
        .with_overrides(partition_count=2,
                        failure_detector_mode="heartbeat",
                        heartbeat_period=10.0, heartbeat_timeout=60.0)
    cluster = PartitionedCluster("group-1-safe", params=params, seed=3,
                                 strategy="range")
    cluster.start()
    cluster.lan.schedule_fault(
        LinkFault.partition("split", ("p0.s3",), ("p0.s1", "p0.s2")),
        at=100.0, until=400.0)
    cluster.run(until=600.0)

    rows = cluster.metrics.snapshot()
    drops = {row["labels"]["cause"]: row["value"] for row in rows
             if row["name"] == "lan_drops"}
    assert drops == dict(cluster.lan.dropped_by_cause)
    assert drops.get("partitioned", 0) > 0
    suspicions = {(row["labels"]["shard"], row["labels"]["kind"]):
                  row["value"]
                  for row in rows if row["name"] == "fd_suspicions"}
    assert suspicions[(0, "suspect")] >= 1
    assert suspicions[(0, "restore")] >= 1   # healed after the window
    assert suspicions[(1, "suspect")] == 0
