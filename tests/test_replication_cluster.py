"""Tests of the cluster facade, routing policies and result bookkeeping."""

from __future__ import annotations

import pytest

from repro.replication import (GROUP_BASED_TECHNIQUES, TECHNIQUES,
                               PrimaryCopyRouting, ReplicatedDatabaseCluster,
                               UpdateEverywhereRouting, make_routing)
from repro.workload import SimulationParameters
from tests.conftest import build_cluster


def test_unknown_technique_rejected():
    with pytest.raises(ValueError):
        ReplicatedDatabaseCluster("3-safe")


def test_cluster_builds_requested_topology(small_params):
    cluster = ReplicatedDatabaseCluster("group-safe", params=small_params)
    assert cluster.server_names() == ["s1", "s2", "s3"]
    assert len(cluster.lan.nodes) == 3
    node = cluster.node("s2")
    assert node.cpu.capacity == small_params.cpus_per_server
    assert node.disk.capacity == small_params.disks_per_server
    assert len(cluster.database("s1").items) == small_params.item_count


def test_group_based_techniques_get_a_gcs_and_lazy_does_not(small_params):
    for technique in TECHNIQUES:
        cluster = ReplicatedDatabaseCluster(technique, params=small_params)
        if technique in GROUP_BASED_TECHNIQUES:
            assert cluster.gcs is not None
            assert cluster.gcs.end_to_end == (technique == "2-safe")
        else:
            assert cluster.gcs is None


def test_submit_requires_started_cluster(small_params):
    cluster = ReplicatedDatabaseCluster("group-safe", params=small_params)
    with pytest.raises(RuntimeError):
        cluster.submit(cluster.workload.next_program())


def test_routing_policies():
    update_everywhere = UpdateEverywhereRouting()
    assert update_everywhere.choose(["s1", "s2", "s3"], 0) == "s1"
    assert update_everywhere.choose(["s1", "s2", "s3"], 4) == "s2"
    primary = PrimaryCopyRouting("s2")
    assert primary.choose(["s1", "s2", "s3"], 7) == "s2"
    default_primary = PrimaryCopyRouting()
    assert default_primary.choose(["s1", "s2"], 3) == "s1"
    with pytest.raises(ValueError):
        primary.choose(["s1"], 0)
    with pytest.raises(ValueError):
        update_everywhere.choose([], 0)
    assert isinstance(make_routing("update-everywhere"), UpdateEverywhereRouting)
    assert isinstance(make_routing("primary-copy", "s1"), PrimaryCopyRouting)
    with pytest.raises(ValueError):
        make_routing("round-robin")


def test_primary_copy_cluster_routes_everything_to_the_primary(small_params):
    cluster = ReplicatedDatabaseCluster("1-safe", params=small_params,
                                        routing="primary-copy", primary="s1",
                                        seed=2)
    cluster.start()
    waiters = [cluster.run_transaction(cluster.workload.update_only_program(2))
               for _ in range(4)]
    cluster.run(until=4_000.0)
    assert all(waiter.value.delegate == "s1" for waiter in waiters)


def test_choose_delegate_skips_crashed_servers(cluster_factory):
    cluster = cluster_factory("group-safe")
    cluster.crash_server("s1")
    choices = {cluster.choose_delegate(index) for index in range(6)}
    assert "s1" not in choices
    assert choices == {"s2", "s3"}


def test_all_results_aggregates_across_servers(cluster_factory):
    cluster = cluster_factory("group-safe")
    for index, server in enumerate(cluster.server_names()):
        cluster.run_transaction(cluster.workload.update_only_program(2),
                                server=server)
    cluster.run(until=4_000.0)
    results = cluster.all_results()
    assert len(results) == 3
    assert {result.delegate for result in results} == {"s1", "s2", "s3"}
    assert results == sorted(results, key=lambda result: result.responded_at)


def test_crash_all_and_up_servers(cluster_factory):
    cluster = cluster_factory("group-safe")
    assert cluster.up_servers() == ["s1", "s2", "s3"]
    cluster.crash_all()
    assert cluster.up_servers() == []


def test_crashed_delegate_fails_pending_clients(cluster_factory):
    cluster = cluster_factory("group-1-safe")
    # Freeze processing everywhere so the transaction stays pending.
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.close()
    waiter = cluster.run_transaction(cluster.workload.update_only_program(2),
                                     server="s1")
    cluster.run(until=200.0)
    assert not waiter.triggered
    cluster.crash_server("s1")
    cluster.run(until=cluster.sim.now + 10.0)
    assert waiter.triggered
    assert not waiter.value.committed
    assert waiter.value.abort_reason == "delegate-crash"


def test_run_statistics_helper():
    from repro.replication import RunStatistics, TransactionResult
    stats = RunStatistics(technique="group-safe", simulated_duration_ms=10_000)
    stats.record(TransactionResult("t1", True, "s1", 0.0, 50.0))
    stats.record(TransactionResult("t2", True, "s1", 0.0, 150.0))
    stats.record(TransactionResult("t3", False, "s1", 0.0, 10.0,
                                   abort_reason="certification"))
    assert stats.measured_commits == 2
    assert stats.mean_response_time == 100.0
    assert stats.abort_rate == pytest.approx(1 / 3)
    assert stats.achieved_throughput_tps == pytest.approx(0.2)
    assert stats.abort_reasons == {"certification": 1}
    assert stats.percentile(0.0) == 50.0
    assert stats.percentile(1.0) == 150.0
