"""Every lint rule: must-flag, must-pass, and suppression-respected fixtures,
plus the two repo-level gates — ``src/repro`` lints clean, and the committed
violation fixture tree fails with one finding per rule."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (FloatTimeArithRule, LayerContractRule,
                            OrderingHazardRule, SlotsConsistencyRule,
                            UnseededRngRule, WallClockRule, default_rules,
                            run_lint)
from repro.analysis.lint import main as lint_main

FIXTURE_TREE = Path(__file__).parent / "fixtures" / "lint_violations"


def lint_tree(tmp_path, files, rules):
    tmp_path.mkdir(parents=True, exist_ok=True)
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(tmp_path, rules)


def rule_names(report):
    return [finding.rule for finding in report.findings]


# -- wall-clock ---------------------------------------------------------------------------


def test_wall_clock_flags_time_and_datetime_reads(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            import time
            import datetime as dt
            from time import perf_counter as pc

            def f():
                return time.monotonic() + pc()

            def g():
                return dt.datetime.now()
            """,
    }, [WallClockRule(allowed_modules=())])
    assert rule_names(report) == ["wall-clock"] * 3
    assert {finding.line for finding in report.findings} == {6, 9}


def test_wall_clock_allowlists_harness_modules(tmp_path):
    source = """\
        import time

        def stamp():
            return time.perf_counter()
        """
    flagged = lint_tree(tmp_path, {"model.py": source},
                        [WallClockRule(allowed_modules=())])
    allowed = lint_tree(tmp_path, {"model.py": source},
                        [WallClockRule(allowed_modules=("model.py",))])
    assert rule_names(flagged) == ["wall-clock"]
    assert allowed.findings == []


def test_wall_clock_suppression_respected(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            import time

            def stamp():
                return time.time()  # repro: allow(wall-clock): host-side harness timing
            """,
    }, [WallClockRule(allowed_modules=())])
    assert report.findings == []
    assert len(report.suppressed) == 1
    assert report.suppressed[0][1] == "host-side harness timing"


# -- unseeded-rng -------------------------------------------------------------------------


def test_unseeded_rng_flags_module_and_from_imports(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            import random
            from random import Random

            def f():
                return random.randint(0, 9) + Random(4).random()
            """,
    }, [UnseededRngRule(exempt_modules=())])
    assert rule_names(report) == ["unseeded-rng"] * 2


def test_unseeded_rng_exempts_the_interning_module_and_streams(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/rng.py": """\
            import random

            def make(seed):
                return random.Random(seed)
            """,
        "model.py": """\
            def f(streams):
                return streams.stream("arrivals").random()
            """,
    }, [UnseededRngRule()])
    assert report.findings == []


def test_unseeded_rng_suppression_respected(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            import random

            # repro: allow(unseeded-rng): fixture generator, not simulated code
            TOKEN = random.getrandbits(32)
            """,
    }, [UnseededRngRule(exempt_modules=())])
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- ordering-hazard ----------------------------------------------------------------------


def test_ordering_hazard_flags_unsorted_iteration(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/model.py": """\
            def drain(pending, extras):
                for callback in pending.values():
                    callback()
                return [key for key in pending.keys()] + list(set(extras))
            """,
    }, [OrderingHazardRule()])
    assert rule_names(report) == ["ordering-hazard"] * 3


def test_ordering_hazard_passes_order_insensitive_consumers(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/model.py": """\
            def f(table, extras):
                total = sorted(table.keys())
                floor = min(table.values())
                present = "x" in set(extras)
                members = {item for item in table.values()}
                every = all(flag for flag in table.values())
                return total, floor, present, members, every
            """,
    }, [OrderingHazardRule()])
    assert report.findings == []


def test_ordering_hazard_scoped_to_schedule_affecting_modules(tmp_path):
    source = """\
        def drain(pending):
            for callback in pending.values():
                callback()
        """
    scoped = lint_tree(tmp_path / "a", {"sim/model.py": source},
                       [OrderingHazardRule()])
    outside = lint_tree(tmp_path / "b", {"obs/model.py": source},
                        [OrderingHazardRule()])
    assert rule_names(scoped) == ["ordering-hazard"]
    assert outside.findings == []


def test_ordering_hazard_suppression_respected(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/model.py": """\
            def drain(pending):
                # repro: allow(ordering-hazard): insertion order is arrival order
                for callback in pending.values():
                    callback()
            """,
    }, [OrderingHazardRule()])
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- slots-consistency --------------------------------------------------------------------


def test_slots_rule_flags_unslotted_hot_path_class(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/events.py": """\
            class Bare:
                def __init__(self):
                    self.when = 0.0
            """,
    }, [SlotsConsistencyRule()])
    assert rule_names(report) == ["slots-consistency"]
    assert "Bare" in report.findings[0].message


def test_slots_rule_accepts_slots_dataclass_and_exceptions(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/events.py": """\
            from dataclasses import dataclass

            class Slotted:
                __slots__ = ("when",)

            @dataclass(frozen=True, slots=True)
            class Record:
                when: float

            class KernelError(RuntimeError):
                pass
            """,
        "other/module.py": """\
            class ColdPath:
                pass
            """,
    }, [SlotsConsistencyRule()])
    assert report.findings == []


def test_slots_rule_suppression_respected(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/events.py": """\
            # repro: allow(slots-consistency): debug-only class, never on the hot path
            class Inspector:
                pass
            """,
    }, [SlotsConsistencyRule()])
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- float-time-arith ---------------------------------------------------------------------


def test_float_time_rule_flags_exact_equality(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            def same(a, b, now):
                return a.deliver_at == b.deliver_at or now != b.sent_at
            """,
    }, [FloatTimeArithRule()])
    assert rule_names(report) == ["float-time-arith"] * 2


def test_float_time_rule_passes_bounds_and_sentinels(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            def ok(a, b, kind):
                ordered = a.deliver_at < b.deliver_at <= b.deadline
                unset = a.granted_at == None
                tag = kind == "tick"
                return ordered, unset, tag
            """,
    }, [FloatTimeArithRule()])
    assert report.findings == []


def test_float_time_rule_suppression_respected(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            def exact(a, b):
                # repro: allow(float-time-arith): both sides are the same interned constant
                return a.deliver_at == b.deliver_at
            """,
    }, [FloatTimeArithRule()])
    assert report.findings == []
    assert len(report.suppressed) == 1


# -- layer-contract -----------------------------------------------------------------------

#: Pre-dedented stub decorators; concatenated with dedented class bodies, so
#: the combined source has uniform zero indentation.
_LAYER_PRELUDE = textwrap.dedent("""\
    def implements(layer):
        def decorate(cls):
            return cls
        return decorate

    def uses(layer):
        def decorate(cls):
            return cls
        return decorate

    """)


def test_layer_rule_flags_upward_uses_and_unknown_layer(tmp_path):
    report = lint_tree(tmp_path, {
        "stack.py": _LAYER_PRELUDE + textwrap.dedent("""\
            @implements("links")
            @uses("membership")
            class Upward:
                pass

            @implements("transport")
            class Unknown:
                pass
            """),
    }, [LayerContractRule()])
    assert sorted(rule_names(report)) == ["layer-contract", "layer-contract"]
    messages = " / ".join(f.message for f in report.findings)
    assert "upward dependency" in messages
    assert "unknown protocol layer" in messages


def test_layer_rule_allows_downward_and_equal_layer_uses(tmp_path):
    report = lint_tree(tmp_path, {
        "stack.py": _LAYER_PRELUDE + textwrap.dedent("""\
            @implements("total_order")
            @uses("links")
            class Sequencer:
                pass

            @implements("total_order")
            @uses("total_order")
            class LoggingSequencer(Sequencer):
                pass
            """),
    }, [LayerContractRule()])
    assert report.findings == []


def test_layer_rule_flags_upward_import_between_modules(tmp_path):
    report = lint_tree(tmp_path, {
        "__init__.py": "",
        "low.py": _LAYER_PRELUDE + textwrap.dedent("""\
            from .high import Member

            @implements("links")
            class Link:
                pass
            """),
        "high.py": _LAYER_PRELUDE + textwrap.dedent("""\
            @implements("membership")
            class Member:
                pass
            """),
    }, [LayerContractRule()])
    assert rule_names(report) == ["layer-contract"]
    assert "upward import" in report.findings[0].message
    assert report.findings[0].path == "low.py"


def test_layer_rule_strict_adjacency_flags_skip_layer(tmp_path):
    files = {
        "stack.py": _LAYER_PRELUDE + textwrap.dedent("""\
            @implements("membership")
            @uses("links")
            class SkipsPastTotalOrder:
                pass
            """),
    }
    relaxed = lint_tree(tmp_path / "a", files, [LayerContractRule()])
    strict = lint_tree(tmp_path / "b", files,
                       [LayerContractRule(strict_adjacency=True)])
    assert relaxed.findings == []
    assert rule_names(strict) == ["layer-contract"]
    assert "skip-layer" in strict.findings[0].message
    assert "past 'total_order'" in strict.findings[0].message


def test_layer_rule_strict_adjacency_treats_failure_detector_as_oracle(
        tmp_path):
    # The failure detector is consulted, never routed through: any layer may
    # reach down to it, and it is transparent when computing adjacency (a
    # reliable-broadcast primitive sits directly on the links).
    report = lint_tree(tmp_path, {
        "stack.py": _LAYER_PRELUDE + textwrap.dedent("""\
            @implements("reliable_broadcast")
            @uses("links")
            class PointToPointFlood:
                pass

            @implements("membership")
            @uses("total_order")
            @uses("failure_detector")
            class ViewManager:
                pass
            """),
    }, [LayerContractRule(strict_adjacency=True)])
    assert report.findings == []


def test_layer_rule_strict_adjacency_exempts_the_application_layer(tmp_path):
    # The top of the stack is the application: replication composition
    # roots wire every layer below them by design.
    report = lint_tree(tmp_path, {
        "stack.py": _LAYER_PRELUDE + textwrap.dedent("""\
            @implements("replication")
            @uses("membership")
            @uses("total_order")
            @uses("links")
            class CompositionRoot:
                pass
            """),
    }, [LayerContractRule(strict_adjacency=True)])
    assert report.findings == []


# -- suppression machinery ----------------------------------------------------------------


def test_suppression_without_justification_is_itself_a_finding(tmp_path):
    report = lint_tree(tmp_path, {
        "model.py": """\
            import time

            def stamp():
                return time.time()  # repro: allow(wall-clock)
            """,
    }, [WallClockRule(allowed_modules=())])
    assert sorted(rule_names(report)) == ["suppression-syntax", "wall-clock"]


def test_suppression_only_covers_its_named_rules(tmp_path):
    report = lint_tree(tmp_path, {
        "sim/model.py": """\
            import time

            def f(pending):
                # repro: allow(ordering-hazard): arrival order is the contract
                for callback in pending.values():
                    callback(time.time())
            """,
    }, [WallClockRule(allowed_modules=()), OrderingHazardRule()])
    # The ordering hazard is silenced; the wall-clock read on the covered
    # line is not, because the suppression names a different rule.
    assert rule_names(report) == ["wall-clock"]
    assert len(report.suppressed) == 1


# -- repo-level gates ---------------------------------------------------------------------


def test_repo_lints_clean_with_active_suppressions():
    root = Path(repro.__file__).resolve().parent
    report = run_lint(root, default_rules())
    assert report.findings == []
    # Non-vacuity: the sweep documented real exceptions, so the clean result
    # must come from justified suppressions, not from rules never firing.
    assert len(report.suppressed) > 0
    assert report.files > 50


def test_repo_lints_clean_under_strict_layers():
    # The decomposed broadcast stack routes every layer through its
    # neighbour: strict adjacency passes with no layer-contract suppression
    # anywhere in the tree.
    root = Path(repro.__file__).resolve().parent
    report = run_lint(root, default_rules(strict_layers=True))
    assert report.findings == []
    assert all(finding.rule != "layer-contract"
               for finding, _ in report.suppressed)


def test_fixture_tree_fails_with_one_finding_per_rule():
    # layer-contract carries a second, gcs-specific case: an upward
    # dependency inside the decomposed broadcast stack; wall-clock and
    # unseeded-rng carry a second, fault-injection case (network/faults.py):
    # an un-interned loss draw and a wall-clock fault timestamp.
    report = run_lint(FIXTURE_TREE, default_rules())
    counts = report.counts_by_rule()
    assert counts == {
        "wall-clock": 2,
        "unseeded-rng": 2,
        "ordering-hazard": 1,
        "slots-consistency": 1,
        "float-time-arith": 1,
        "layer-contract": 2,
    }


# -- CLI ----------------------------------------------------------------------------------


def test_cli_exit_codes_and_json_artifact(tmp_path, capsys):
    assert lint_main([]) == 0
    capsys.readouterr()

    output = tmp_path / "lint_report.json"
    code = lint_main(["--root", str(FIXTURE_TREE), "--format", "json",
                      "--output", str(output)])
    assert code == 1
    payload = json.loads(output.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro.analysis.lint/1"
    assert payload["finding_count"] == 9
    assert {finding["rule"] for finding in payload["findings"]} == {
        "wall-clock", "unseeded-rng", "ordering-hazard",
        "slots-consistency", "float-time-arith", "layer-contract"}
    # The failure is still announced on stderr when the report goes to a file.
    assert "9 finding(s)" in capsys.readouterr().err


def test_cli_rule_filter_and_catalogue(capsys):
    assert lint_main(["--list-rules"]) == 0
    catalogue = capsys.readouterr().out
    for name in ("wall-clock", "unseeded-rng", "ordering-hazard",
                 "slots-consistency", "float-time-arith", "layer-contract"):
        assert name in catalogue

    code = lint_main(["--root", str(FIXTURE_TREE), "--rules", "wall-clock"])
    out = capsys.readouterr().out
    assert code == 1
    assert "2 finding(s)" in out

    with pytest.raises(SystemExit):
        lint_main(["--rules", "no-such-rule"])
