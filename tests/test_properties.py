"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (DeliveredOn, LoggedOn, SafetyLevel, classify,
                        classify_notification, group_failure_probability,
                        loss_condition, pairwise_conflict_probability)
from repro.db import (CommittedTransaction, Item, LockManager, LockMode,
                      check_one_copy_serializability)
from repro.sim import RandomStreams, Simulator, Tally


# --------------------------------------------------------------------------- sim
@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=200))
def test_tally_statistics_are_consistent(values):
    tally = Tally()
    tally.extend(values)
    slack = 1e-9 * (abs(tally.maximum) + 1.0)      # float accumulation error
    assert tally.minimum - slack <= tally.mean <= tally.maximum + slack
    assert tally.percentile(0.0) == tally.minimum
    assert tally.percentile(1.0) == tally.maximum
    assert tally.percentile(0.25) <= tally.percentile(0.75) + slack
    assert tally.count == len(values)


@given(st.integers(min_value=0, max_value=2**32),
       st.text(min_size=1, max_size=20))
def test_random_streams_reproducible_for_any_seed_and_name(seed, name):
    first = RandomStreams(seed).uniform(name, 0.0, 1.0)
    second = RandomStreams(seed).uniform(name, 0.0, 1.0)
    assert first == second
    assert 0.0 <= first <= 1.0


@given(st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=1,
                max_size=30))
@settings(max_examples=30, deadline=None)
def test_simulated_clock_is_monotone_for_any_timeout_set(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.timeout(delay).add_callback(lambda event: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


# --------------------------------------------------------------------------- db
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=50),
                          st.integers(min_value=0, max_value=1000)),
                min_size=1, max_size=100))
def test_item_install_converges_to_highest_commit_order(writes):
    item = Item(key="x", value=0)
    accepted = 0
    highest_so_far = 0
    for order, value in writes:
        item.install(value, writer=f"t{order}", commit_order=order)
        if order >= highest_so_far:        # Thomas write rule accepts this one
            accepted += 1
            highest_so_far = order
    max_order = max(order for order, _value in writes)
    assert item.commit_order == max_order
    # The surviving value was written at the highest commit order seen.
    assert item.value in [value for order, value in writes if order == max_order]
    assert item.version == accepted        # only accepted installs bump versions
    # Re-installing anything older never changes the value.
    item.install(999_999, writer="late", commit_order=0)
    assert item.commit_order == max_order


@given(st.lists(st.tuples(st.sampled_from(["t1", "t2", "t3", "t4"]),
                          st.sampled_from(["a", "b", "c"]),
                          st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE])),
                max_size=40))
@settings(max_examples=50, deadline=None)
def test_lock_manager_never_grants_conflicting_locks(requests):
    sim = Simulator()
    locks = LockManager(sim)
    events = []
    aborted = set()
    for owner, key, mode in requests:
        if owner in aborted:
            continue
        event = locks.acquire(owner, key, mode)
        events.append((owner, event))
        # A deadlock may abort *any* earlier pending request of any owner;
        # emulate the owning transactions handling their abort.
        for victim_owner, victim_event in events:
            if victim_event.triggered and not victim_event.ok and \
                    victim_owner not in aborted:
                victim_event.defuse()
                aborted.add(victim_owner)
                locks.release_all(victim_owner)
    for _owner, event in events:
        if event.triggered and not event.ok:
            event.defuse()
    sim.run()
    for key in ("a", "b", "c"):
        holders = locks.holders(key)
        exclusive = [owner for owner, mode in holders.items()
                     if mode is LockMode.EXCLUSIVE]
        if exclusive:
            assert len(holders) == 1, (
                f"exclusive holder {exclusive} coexists with {holders}")


@given(st.lists(st.tuples(st.integers(min_value=1, max_value=20),
                          st.lists(st.sampled_from(["x", "y", "z"]),
                                   max_size=3, unique=True)),
                min_size=1, max_size=20))
def test_serial_histories_in_commit_order_are_serializable(spec):
    """A history whose reads always observe the latest committed versions
    must pass the one-copy serialisability check."""
    current_version = {}
    transactions = []
    for index, (gap, write_keys) in enumerate(spec):
        order = index + 1
        reads = {key: current_version.get(key, 0) for key in write_keys}
        transactions.append(CommittedTransaction(
            txn_id=f"t{order}", commit_order=order, read_versions=reads,
            write_keys=tuple(write_keys)))
        for key in write_keys:
            current_version[key] = current_version.get(key, 0) + 1
    assert check_one_copy_serializability(transactions).serializable


# --------------------------------------------------------------------------- core
@given(st.sampled_from(list(DeliveredOn)), st.sampled_from(list(LoggedOn)))
def test_classification_is_total_and_consistent(delivered, logged):
    level = classify(delivered, logged)
    if level is None:
        assert delivered is DeliveredOn.ONE and logged is LoggedOn.ALL
    else:
        assert level.delivered_on is delivered
        assert level.logged_on is logged


@given(st.booleans(), st.booleans(), st.booleans())
def test_runtime_classification_never_fails(delivered, logged_delegate, logged_all):
    level = classify_notification(delivered, logged_delegate, logged_all)
    assert isinstance(level, SafetyLevel)


@given(st.booleans(), st.booleans())
def test_loss_conditions_compose_as_in_the_paper(group_fails, delegate_crashes):
    """Group-1-safety is the conjunction of its two constituents: it can lose
    a transaction only under failure patterns where *both* group-safety and
    1-safety could lose one, and 2-safety never loses one at all (Table 3)."""
    group_one = loss_condition(SafetyLevel.GROUP_ONE_SAFE, group_fails,
                               delegate_crashes)
    group_only = loss_condition(SafetyLevel.GROUP_SAFE, group_fails,
                                delegate_crashes)
    one_only = loss_condition(SafetyLevel.ONE_SAFE, group_fails,
                              delegate_crashes)
    assert group_one == (group_only and one_only)
    assert not loss_condition(SafetyLevel.TWO_SAFE, group_fails,
                              delegate_crashes)
    # 0-safety is never safer than 1-safety.
    assert loss_condition(SafetyLevel.ZERO_SAFE, group_fails,
                          delegate_crashes) >= one_only


@given(st.integers(min_value=1, max_value=25),
       st.floats(min_value=0.0, max_value=1.0))
def test_group_failure_probability_is_a_probability(n, p):
    value = group_failure_probability(n, p)
    assert 0.0 <= value <= 1.0 + 1e-9


@given(st.integers(min_value=2, max_value=30),
       st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=50)
def test_group_failure_decreases_with_group_size(n, p):
    smaller = group_failure_probability(n, p)
    larger = group_failure_probability(n + 2, p)
    assert larger <= smaller + 1e-9


@given(st.floats(min_value=0.0, max_value=50.0),
       st.integers(min_value=100, max_value=100_000))
def test_pairwise_conflict_probability_is_a_probability(writes, items):
    value = pairwise_conflict_probability(writes, items)
    assert 0.0 <= value <= 1.0
