"""2PC decision replay on recovery.

The cross-partition coordinator is co-located with the home delegate its
decision record is force-logged on.  These tests cover the recovery
contract: a home-delegate crash after the decision is durable leaves the
transaction decided-but-unfinished (clients block, branches stay in doubt);
recovering the delegate replays the DECISION records and drives every
remaining branch to commit — no decided write is ever dropped, and a
straggler decision whose client already saw an abort is reconciled as an
orphan instead of resurrecting the transaction.
"""

from __future__ import annotations

from repro.db.operations import make_program
from repro.partition import (CrossPartitionOutcome, PartitionedCluster)
from repro.workload import SimulationParameters


def build(partitions=2, technique="group-safe", seed=7, items=100,
          techniques=None, **overrides):
    params = SimulationParameters.small(server_count=3, item_count=items)
    if overrides:
        params = params.with_overrides(**overrides)
    cluster = PartitionedCluster(technique, params=params, seed=seed,
                                 partition_count=partitions, strategy="range",
                                 techniques=techniques)
    cluster.start()
    return cluster


def run_until_decided(cluster, limit=2_000.0, step=0.5):
    """Advance the sim until a 2PC decision is durable (registered)."""
    while not cluster.coordinator.decided_pending:
        assert cluster.sim.now < limit, "no decision was ever logged"
        cluster.run(until=cluster.sim.now + step)


def test_home_delegate_crash_after_decision_blocks_then_replays():
    cluster = build(buffer_hit_ratio=1.0,
                    write_time_min=5.0, write_time_max=5.0)
    program = make_program([("w", "item-10", "replay-0"),
                            ("w", "item-90", "replay-1")])
    waiter = cluster.run_transaction(program)
    run_until_decided(cluster)

    # The coordinator dies with its home delegate: phase 2 halts, the
    # client blocks on a decided transaction — classic 2PC blocking.
    cluster.crash_server(0, "p0.s1")
    cluster.run(until=3_000)
    assert not waiter.triggered
    assert cluster.coordinator.decided_pending

    # Recovery replays the durable DECISION record and finishes phase 2.
    cluster.recover_server(0, "p0.s1")
    cluster.run(until=15_000)
    outcome = waiter.value
    assert isinstance(outcome, CrossPartitionOutcome)
    assert outcome.committed
    assert not cluster.coordinator.decided_pending
    assert cluster.coordinator.in_doubt_branches == 0
    for branch in outcome.branches:
        assert branch.committed
        assert cluster.group(branch.partition_id).committed_anywhere(
            branch.txn_id)
    # The decided values landed on both partitions despite the crash.
    assert any(cluster.group(0).database(name).value_of("item-10")
               == "replay-0" for name in cluster.group(0).server_names())
    assert any(cluster.group(1).database(name).value_of("item-90")
               == "replay-1" for name in cluster.group(1).server_names())
    # The replay and the (revived) original coordinator must not both
    # record the outcome: exactly one entry, counted exactly once.
    recorded = [entry for entry in cluster.cross_partition_outcomes()
                if entry.xid == outcome.xid]
    assert len(recorded) == 1
    assert cluster.coordinator.committed_count == 1


def test_replay_resolves_branches_left_in_doubt_by_a_group_outage():
    # Decision durable, then BOTH the home delegate and the whole remote
    # group crash: the branch is decided and in doubt, and the coordinator
    # that would have retried it is dead.  Replay after recovery must still
    # install everything.
    cluster = build(techniques=["group-safe", "1-safe"],
                    buffer_hit_ratio=1.0,
                    write_time_min=5.0, write_time_max=5.0)
    program = make_program([("w", "item-10", "doubt-0"),
                            ("w", "item-90", "doubt-1")])
    waiter = cluster.run_transaction(program)
    run_until_decided(cluster)
    cluster.crash_server(0, "p0.s1")
    cluster.crash_partition(1)
    cluster.run(until=3_000)
    assert not waiter.triggered

    for name in cluster.group(1).server_names():
        cluster.recover_server(1, name)
    cluster.recover_server(0, "p0.s1")
    cluster.run(until=20_000)
    outcome = waiter.value
    assert outcome.committed
    assert cluster.coordinator.in_doubt_branches == 0
    assert cluster.group(1).committed_anywhere(outcome.branch(1).txn_id)


def test_orphan_decision_is_reconciled_with_the_client_visible_abort():
    cluster = build()
    # Synthesise the straggler: a durable DECISION record for a transaction
    # the coordinator reported aborted (the flush outran the bounded wait).
    database = cluster.group(0).database("p0.s1")
    database.wal.append_decision("xp-straggler")
    cluster.sim.spawn(database.wal.flush(), name="test.flush")
    cluster.run(until=100)
    assert any(record.txn_id == "xp-straggler"
               for record in database.wal.stable_records())
    cluster.coordinator.outcomes.append(CrossPartitionOutcome(
        xid="xp-straggler", committed=False, submitted_at=0.0,
        responded_at=1.0, partitions=(0, 1),
        abort_reason="xpartition-unavailable"))

    cluster.crash_server(0, "p0.s1")
    cluster.run(until=200)
    cluster.recover_server(0, "p0.s1")
    cluster.run(until=5_000)
    assert cluster.coordinator.orphan_decisions == 1
    # Replaying again does not double-count.
    cluster.coordinator.replay_decisions(0, "p0.s1")
    assert cluster.coordinator.orphan_decisions == 1


def test_recover_server_still_returns_a_process_for_plain_recovery():
    cluster = build()
    cluster.crash_server(0, "p0.s1")
    cluster.run(until=500)
    process = cluster.recover_server(0, "p0.s1")
    cluster.run(until=5_000)
    assert process.triggered
    assert "p0.s1" in cluster.group(0).up_servers()
