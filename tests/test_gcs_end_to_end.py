"""Tests of end-to-end atomic broadcast (delivery logging, ack, replay)."""

from __future__ import annotations

import pytest

from repro.gcs import GroupCommunicationSystem
from repro.network import Lan, Node
from repro.sim import Simulator


def build_group(member_count=3, seed=5, **kwargs):
    sim = Simulator(seed=seed)
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, member_count + 1)]
    gcs = GroupCommunicationSystem(sim, lan, end_to_end=True, **kwargs)
    gcs.start()
    return sim, lan, nodes, gcs


def test_delivery_is_logged_on_stable_storage():
    sim, lan, nodes, gcs = build_group()
    gcs.endpoint("s1").broadcast("payload")
    sim.run(until=20.0)
    for name in ("s1", "s2", "s3"):
        log = gcs.endpoint(name).message_log
        assert len(log) == 1
        assert log.unacknowledged()[0].payload == "payload"


def test_acknowledge_marks_successful_delivery():
    sim, lan, nodes, gcs = build_group()
    endpoint = gcs.endpoint("s2")

    def consumer():
        delivery = yield endpoint.deliveries.get()
        endpoint.acknowledge(delivery)

    nodes[1].spawn(consumer())
    gcs.endpoint("s1").broadcast("ack-me")
    sim.run(until=20.0)
    assert endpoint.message_log.unacknowledged() == []
    assert endpoint.ack_count == 1
    assert gcs.trace.check_end_to_end(["s2"])


def test_unacknowledged_messages_are_replayed_after_crash():
    sim, lan, nodes, gcs = build_group()
    # s3 never processes (no consumer): delivery is logged but not acked.
    gcs.endpoint("s1").broadcast("must-survive")
    sim.run(until=20.0)
    nodes[2].crash()
    sim.run(until=30.0)
    nodes[2].recover()

    def recovery():
        replayed = yield from gcs.endpoint("s3").recover(rejoin_timeout=10.0)
        return replayed

    process = nodes[2].spawn(recovery())
    sim.run(until=100.0)
    assert process.value == 1
    replays = []

    def consumer():
        delivery = yield gcs.endpoint("s3").deliveries.get()
        replays.append((delivery.payload, delivery.replayed))
        gcs.endpoint("s3").acknowledge(delivery)

    nodes[2].spawn(consumer())
    sim.run(until=150.0)
    assert replays == [("must-survive", True)]
    assert gcs.endpoint("s3").message_log.unacknowledged() == []


def test_acknowledged_messages_are_not_replayed():
    sim, lan, nodes, gcs = build_group()
    endpoint = gcs.endpoint("s3")

    def consumer():
        delivery = yield endpoint.deliveries.get()
        endpoint.acknowledge(delivery)

    nodes[2].spawn(consumer())
    gcs.endpoint("s1").broadcast("done")
    sim.run(until=20.0)
    nodes[2].crash()
    sim.run(until=25.0)
    nodes[2].recover()

    def recovery():
        replayed = yield from endpoint.recover(rejoin_timeout=5.0)
        return replayed

    process = nodes[2].spawn(recovery())
    sim.run(until=100.0)
    assert process.value == 0
    assert endpoint.deliveries.pending_items == 0


def test_whole_group_crash_recovery_replays_everywhere():
    """The Fig. 7 situation at the broadcast level: everyone crashes."""
    sim, lan, nodes, gcs = build_group()
    gcs.endpoint("s1").broadcast("all-crash")
    sim.run(until=20.0)
    for node in nodes:
        node.crash()
    sim.run(until=30.0)
    replay_counts = {}
    for node in nodes[1:]:        # only s2 and s3 come back
        node.recover()

        def recovery(name=node.name):
            replayed = yield from gcs.endpoint(name).recover(rejoin_timeout=10.0)
            replay_counts[name] = replayed

        node.spawn(recovery())
        sim.run(until=sim.now + 50.0)
    assert replay_counts == {"s2": 1, "s3": 1}


def test_sync_catch_up_fetches_missed_messages_from_peers():
    sim, lan, nodes, gcs = build_group()
    acked = {name: [] for name in ("s1", "s2", "s3")}

    def consumer(name):
        endpoint = gcs.endpoint(name)
        while True:
            delivery = yield endpoint.deliveries.get()
            acked[name].append(delivery.payload)
            endpoint.acknowledge(delivery)

    for node in nodes:
        node.spawn(consumer(node.name))
    gcs.endpoint("s1").broadcast("first")
    sim.run(until=20.0)
    nodes[2].crash()
    sim.run(until=25.0)
    # While s3 is down, the group keeps committing.
    gcs.endpoint("s1").broadcast("second")
    sim.run(until=60.0)
    nodes[2].recover()

    def recovery():
        yield from gcs.endpoint("s3").recover(rejoin_timeout=20.0)

    nodes[2].spawn(recovery())
    sim.run(until=sim.now + 100.0)
    nodes[2].spawn(consumer("s3"))
    sim.run(until=sim.now + 100.0)
    assert acked["s3"] == ["first", "second"]


def test_delivery_log_time_charges_the_disk():
    sim, lan, nodes, gcs = build_group(delivery_log_time=8.0)
    gcs.endpoint("s1").broadcast("expensive")
    sim.run(until=60.0)
    assert nodes[0].disk.busy_time >= 8.0
    assert nodes[1].disk.busy_time >= 8.0


def test_duplicate_ack_is_harmless():
    sim, lan, nodes, gcs = build_group()
    endpoint = gcs.endpoint("s1")
    deliveries = []

    def consumer():
        delivery = yield endpoint.deliveries.get()
        deliveries.append(delivery)
        endpoint.acknowledge(delivery)
        endpoint.acknowledge(delivery)

    nodes[0].spawn(consumer())
    endpoint.broadcast("twice-acked")
    sim.run(until=20.0)
    assert endpoint.message_log.is_acknowledged(deliveries[0].broadcast_id)
