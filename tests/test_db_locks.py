"""Tests of the two-phase-locking lock manager."""

from __future__ import annotations

import pytest

from repro.db import DeadlockError, LockManager, LockMode
from repro.sim import Simulator


@pytest.fixture
def locks(sim):
    return LockManager(sim)


def test_shared_locks_are_compatible(sim, locks):
    first = locks.acquire("t1", "x", LockMode.SHARED)
    second = locks.acquire("t2", "x", LockMode.SHARED)
    assert first.triggered and second.triggered
    assert locks.holds("t1", "x", LockMode.SHARED)
    assert locks.holds("t2", "x", LockMode.SHARED)


def test_exclusive_blocks_other_requests(sim, locks):
    holder = locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    reader = locks.acquire("t2", "x", LockMode.SHARED)
    writer = locks.acquire("t3", "x", LockMode.EXCLUSIVE)
    assert holder.triggered
    assert not reader.triggered and not writer.triggered
    assert locks.waiting("x") == ["t2", "t3"]


def test_release_all_grants_waiters_in_fifo_order(sim, locks):
    locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    second = locks.acquire("t2", "x", LockMode.EXCLUSIVE)
    third = locks.acquire("t3", "x", LockMode.EXCLUSIVE)
    locks.release_all("t1")
    assert second.triggered and not third.triggered
    locks.release_all("t2")
    assert third.triggered


def test_shared_holder_can_upgrade_when_alone(sim, locks):
    locks.acquire("t1", "x", LockMode.SHARED)
    upgrade = locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    assert upgrade.triggered
    assert locks.holds("t1", "x", LockMode.EXCLUSIVE)


def test_exclusive_holder_rerequests_are_granted(sim, locks):
    locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    again = locks.acquire("t1", "x", LockMode.SHARED)
    assert again.triggered


def test_deadlock_detected_and_youngest_aborted(sim, locks):
    # t1 holds x, t2 holds y, then each requests the other's item.
    locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    locks.acquire("t2", "y", LockMode.EXCLUSIVE)
    request_t1 = locks.acquire("t1", "y", LockMode.EXCLUSIVE)
    request_t2 = locks.acquire("t2", "x", LockMode.EXCLUSIVE)
    # The youngest participant (t2, it arrived later) is chosen as the victim.
    assert request_t2.triggered and not request_t2.ok
    assert isinstance(request_t2.value, DeadlockError)
    request_t2.defuse()
    assert not request_t1.triggered
    assert locks.deadlock_count == 1
    # Once the victim releases everything, t1 gets its lock.
    locks.release_all("t2")
    assert request_t1.triggered and request_t1.ok


def test_no_false_deadlock_on_plain_contention(sim, locks):
    locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    locks.acquire("t2", "x", LockMode.EXCLUSIVE)
    locks.acquire("t3", "x", LockMode.SHARED)
    assert locks.deadlock_count == 0


def test_release_all_removes_queued_requests(sim, locks):
    locks.acquire("t1", "x", LockMode.EXCLUSIVE)
    locks.acquire("t2", "x", LockMode.EXCLUSIVE)
    locks.release_all("t2")
    assert locks.waiting("x") == []
    locks.release_all("t1")
    assert locks.holders("x") == {}


def test_holders_and_waiting_reporting(sim, locks):
    locks.acquire("t1", "x", LockMode.SHARED)
    locks.acquire("t2", "x", LockMode.SHARED)
    locks.acquire("t3", "x", LockMode.EXCLUSIVE)
    holders = locks.holders("x")
    assert holders == {"t1": LockMode.SHARED, "t2": LockMode.SHARED}
    assert locks.waiting("x") == ["t3"]
    assert locks.holders("unknown") == {}
    assert locks.waiting("unknown") == []


def test_fifo_fairness_shared_behind_exclusive(sim, locks):
    locks.acquire("t1", "x", LockMode.SHARED)
    blocked_writer = locks.acquire("t2", "x", LockMode.EXCLUSIVE)
    late_reader = locks.acquire("t3", "x", LockMode.SHARED)
    # The late reader must not overtake the queued writer.
    assert not blocked_writer.triggered
    assert not late_reader.triggered
    locks.release_all("t1")
    assert blocked_writer.triggered
