"""Serial-vs-parallel determinism of the conservative sharded engine.

The license for the parallel execution mode is the same one every kernel
optimisation in this repo carries: the simulation must be *bit-identical* to
the reference execution.  These tests run the same sharded scenario on the
serial in-process engine (``workers=0``) and on 1, 2 and 4 worker processes
and require

* identical per-shard golden-trace digests (every event, in order, at every
  worker count), and
* an identical merged :class:`~repro.partition.stats.PartitionedRunStatistics`
  (dataclass equality, so every commit, abort reason, response time,
  migration report and crash record must match),

including a scenario with a mid-run migration and an injected crash
failpoint.
"""

from __future__ import annotations

import os

import pytest

from repro.partition.parallel_cluster import (CrashPlan, MigrationPlan,
                                              ShardScenario,
                                              run_parallel_sharded)
from repro.sim.parallel import ShardSpec, run_sharded

WORKER_COUNTS = (0, 1, 2, 4)

#: CI sets REPRO_DETECT_RACES=1 to re-run this suite with the runtime window
#: protocol cross-checks on — digests must be unaffected either way.
DETECT_RACES = os.environ.get("REPRO_DETECT_RACES", "") not in ("", "0")


def _plain_scenario() -> ShardScenario:
    return ShardScenario(
        technique="group-safe", shard_count=3, seed=7,
        items_per_shard=60, servers_per_shard=3,
        load_tps_per_shard=40.0, cross_shard_probability=0.25,
        cross_shard_latency=4.0, duration_ms=600.0, trace=True)


def _failure_scenario() -> ShardScenario:
    """Mid-run migration with a fence-phase crash failpoint plus a second,
    independently scheduled crash/recover pair on another shard."""
    return ShardScenario(
        technique="group-safe", shard_count=3, seed=11,
        items_per_shard=60, servers_per_shard=3,
        load_tps_per_shard=40.0, cross_shard_probability=0.25,
        cross_shard_latency=4.0, duration_ms=800.0, trace=True,
        migrations=(MigrationPlan(start_ms=250.0, source_shard=0,
                                  dest_shard=1, key_count=40,
                                  chunk_size=16,
                                  failpoint=("migration.fence", 1, 150.0)),),
        crashes=(CrashPlan(at_ms=300.0, shard=2, server_index=0,
                           recover_at_ms=520.0),))


def _strip_obs(statistics):
    statistics.obs = None
    return statistics


@pytest.mark.parametrize("scenario_factory, name",
                         [(_plain_scenario, "plain"),
                          (_failure_scenario, "migration+crash")])
def test_digests_and_statistics_identical_at_every_worker_count(
        scenario_factory, name):
    scenario = scenario_factory()
    reference = run_parallel_sharded(scenario, workers=0,
                                     detect_races=DETECT_RACES)
    assert all(digest is not None for digest in reference.digests.values())
    # The run must have actually exercised the cross-shard machinery,
    # otherwise the determinism claim is vacuous.
    assert reference.messages > 0
    assert reference.statistics.measured_commits > 0
    assert reference.statistics.cross.measured_commits > 0
    for workers in WORKER_COUNTS[1:]:
        parallel = run_parallel_sharded(scenario, workers=workers,
                                        detect_races=DETECT_RACES)
        assert parallel.digests == reference.digests, \
            f"{name}: per-shard digests diverged at workers={workers}"
        assert (_strip_obs(parallel.statistics) ==
                _strip_obs(reference.statistics)), \
            f"{name}: merged statistics diverged at workers={workers}"


def test_failure_scenario_really_injects_failures():
    report = run_parallel_sharded(_failure_scenario(), workers=0)
    statistics = report.statistics
    assert statistics.failpoints_fired == {"migration.fence": 1}
    kinds = [record.kind for record in statistics.injected_crashes]
    assert "crash" in kinds
    assert "failpoint:migration.fence" in kinds
    assert kinds.count("recover") == 2
    assert len(statistics.completed_migrations) == 1
    assert statistics.final_epoch == 1
    # Epoch-1 commits exist: the run continued after the routing install.
    assert statistics.epoch_commits.get(1, 0) > 0


def test_worker_count_beyond_shards_is_clamped():
    scenario = _plain_scenario()
    with pytest.warns(RuntimeWarning, match=r"clamped workers from 8 to 3"):
        report = run_parallel_sharded(scenario, workers=8)
    assert report.workers == scenario.shard_count
    assert report.requested_workers == 8
    assert report.digests == run_parallel_sharded(scenario,
                                                  workers=0).digests


def test_unclamped_run_emits_no_warning_and_reports_request():
    import warnings

    scenario = _plain_scenario()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        report = run_parallel_sharded(scenario, workers=2)
    assert report.workers == 2
    assert report.requested_workers == 2


def test_merged_chrome_trace_validates_with_one_pid_per_shard():
    from dataclasses import replace

    from repro.obs.export import validate_chrome_trace
    from repro.partition.parallel_cluster import merged_chrome_trace

    scenario = replace(_plain_scenario(), trace=False, observe=True,
                       duration_ms=300.0)
    report = run_parallel_sharded(scenario, workers=2)
    merged = merged_chrome_trace(report)
    assert validate_chrome_trace(merged) == []
    pids = {event["pid"] for event in merged["traceEvents"]}
    assert pids == {shard + 1 for shard in range(scenario.shard_count)}
    timestamps = [event["ts"] for event in merged["traceEvents"]
                  if event["ph"] != "M"]
    assert timestamps == sorted(timestamps)
    # Metadata (process / thread names) stays in front of the timed events.
    phases = [event["ph"] for event in merged["traceEvents"]]
    assert "M" not in phases[phases.index("X"):] if "X" in phases else True


def test_failure_matrix_worker_pool_matches_serial_run():
    """Pool.map returns cells in submission order, so the pooled matrix and
    its rendered report must match the serial run verdict for verdict.
    (Transaction *ids* are process-history dependent — the module-global
    program counter — so the comparison is on verdicts and the report, which
    is what the matrix publishes.)"""
    from repro.experiments.failure_matrix import (render_matrix,
                                                  run_failure_matrix)

    serial = run_failure_matrix(techniques=["1-safe"], seed=3)
    pooled = run_failure_matrix(techniques=["1-safe"], seed=3, workers=2)
    assert render_matrix(pooled) == render_matrix(serial)
    assert ([(entry.technique, entry.crash_pattern,
              entry.predicted_possible_loss, entry.observed_loss, entry.sound)
             for entry in pooled] ==
            [(entry.technique, entry.crash_pattern,
              entry.predicted_possible_loss, entry.observed_loss, entry.sound)
             for entry in serial])


def test_partitioned_matrix_worker_pool_matches_serial_run():
    from repro.experiments.partition_failure_matrix import (
        render_partitioned_matrix, run_partitioned_failure_matrix)

    kwargs = dict(techniques=["1-safe"],
                  patterns=["none", "shard-delegate"], seed=3)
    serial = run_partitioned_failure_matrix(**kwargs)
    pooled = run_partitioned_failure_matrix(workers=2, **kwargs)
    assert (render_partitioned_matrix(pooled) ==
            render_partitioned_matrix(serial))
    assert ([(entry.crash_pattern, entry.predicted_possible_loss,
              entry.observed_loss, entry.sound) for entry in pooled] ==
            [(entry.crash_pattern, entry.predicted_possible_loss,
              entry.observed_loss, entry.sound) for entry in serial])


def test_run_sharded_rejects_bad_arguments():
    spec = ShardSpec(shard_id=0,
                     builder="repro.partition.parallel_cluster:"
                             "build_shard_world",
                     config=_plain_scenario())
    with pytest.raises(ValueError):
        run_sharded([], lookahead=1.0, until=10.0)
    with pytest.raises(ValueError):
        run_sharded([spec], lookahead=0.0, until=10.0)
    with pytest.raises(ValueError):
        run_sharded([spec], lookahead=1.0, until=10.0, workers=-1)
