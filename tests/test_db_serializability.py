"""Tests of the one-copy serialisability checker."""

from __future__ import annotations

from repro.db import (CommittedTransaction, check_one_copy_serializability,
                      has_cycle, precedence_graph)


def test_clean_serial_history_passes():
    history = [
        CommittedTransaction("t1", 1, read_versions={"x": 0}, write_keys=("x",)),
        CommittedTransaction("t2", 2, read_versions={"x": 1}, write_keys=("y",)),
        CommittedTransaction("t3", 3, read_versions={"y": 1}, write_keys=("x",)),
    ]
    report = check_one_copy_serializability(history)
    assert report.serializable
    assert report.checked_transactions == 3
    assert bool(report) is True


def test_stale_read_detected():
    history = [
        CommittedTransaction("t1", 1, write_keys=("x",)),
        # t2 read x at version 0 although t1's write (version 1) committed first.
        CommittedTransaction("t2", 2, read_versions={"x": 0}, write_keys=("y",)),
    ]
    report = check_one_copy_serializability(history)
    assert not report.serializable
    assert any("stale read" in anomaly for anomaly in report.anomalies)


def test_lost_update_detected_on_equal_commit_order():
    history = [
        CommittedTransaction("t1", 5, write_keys=("x",)),
        CommittedTransaction("t2", 5, write_keys=("x",)),
    ]
    report = check_one_copy_serializability(history)
    assert not report.serializable
    assert any("lost update" in anomaly for anomaly in report.anomalies)


def test_reads_of_current_versions_are_fine():
    history = [
        CommittedTransaction("t1", 1, write_keys=("x",)),
        CommittedTransaction("t2", 2, read_versions={"x": 1}),
        CommittedTransaction("t3", 3, read_versions={"x": 1}),
    ]
    assert check_one_copy_serializability(history).serializable


def test_empty_history_is_serializable():
    assert check_one_copy_serializability([]).serializable


def test_precedence_graph_edges_and_acyclicity():
    history = [
        CommittedTransaction("t1", 1, write_keys=("x",)),
        CommittedTransaction("t2", 2, read_versions={"x": 1}, write_keys=("y",)),
        CommittedTransaction("t3", 3, read_versions={"y": 1}, write_keys=("x",)),
    ]
    graph = precedence_graph(history)
    assert "t2" in graph["t1"]       # t2 read what t1 wrote
    assert "t3" in graph["t2"]       # t3 read what t2 wrote
    assert "t3" in graph["t1"]       # t3 overwrote what t1 wrote
    assert not has_cycle(graph)


def test_has_cycle_detects_cycles():
    assert has_cycle({"a": {"b"}, "b": {"c"}, "c": {"a"}})
    assert not has_cycle({"a": {"b"}, "b": set(), "c": {"a", "b"}})
    assert not has_cycle({})
