"""Tests of the logical item store and transaction programs."""

from __future__ import annotations

import pytest

from repro.db import (Item, ItemStore, Operation, OperationType,
                      TransactionProgram, make_program, read, write)


def test_item_install_bumps_version_and_keeps_history():
    item = Item(key="x", value=0)
    item.install("v1", writer="t1", commit_order=1)
    item.install("v2", writer="t2", commit_order=2)
    assert item.value == "v2"
    assert item.version == 2
    assert item.writer == "t2"
    assert [version.value for version in item.history] == [0, "v1"]


def test_item_install_follows_thomas_write_rule():
    item = Item(key="x", value=0)
    item.install("new", writer="t2", commit_order=5)
    item.install("stale", writer="t1", commit_order=3)   # older commit: skipped
    assert item.value == "new"
    assert item.version == 1


def test_item_store_creation_and_lookup():
    store = ItemStore(item_count=10)
    assert len(store) == 10
    assert "item-0" in store and "item-9" in store
    assert "item-10" not in store
    with pytest.raises(KeyError):
        store.get("missing")
    with pytest.raises(ValueError):
        store.create("item-0")


def test_item_store_snapshot_and_restore():
    store = ItemStore(item_count=3)
    store.get("item-1").install("written", writer="t1", commit_order=1)
    snapshot = store.snapshot()
    store.get("item-1").install("changed", writer="t2", commit_order=2)
    store.restore(snapshot)
    assert store.get("item-1").value == "written"
    assert store.get("item-1").version == 1
    assert store.versions()["item-2"] == 0


def test_operation_constructors_and_flags():
    r = read("x")
    w = write("y", 42)
    assert r.is_read and not r.is_write
    assert w.is_write and w.value == 42
    assert r.op_type is OperationType.READ


def test_program_structure_queries():
    program = TransactionProgram(operations=(
        read("a"), write("b", 1), read("a"), write("b", 2), write("c", 3)))
    assert program.length == 5
    assert program.read_keys == ["a"]
    assert program.write_keys == ["b", "c"]
    assert not program.is_read_only


def test_program_requires_operations_and_unique_ids():
    with pytest.raises(ValueError):
        TransactionProgram(operations=())
    first = TransactionProgram(operations=(read("a"),))
    second = TransactionProgram(operations=(read("a"),))
    assert first.program_id != second.program_id


def test_read_only_program_detection():
    program = TransactionProgram(operations=(read("a"), read("b")))
    assert program.is_read_only


def test_make_program_compact_spec():
    program = make_program([("r", "x"), ("w", "y", 9)], client="tester")
    assert program.operations[0].is_read
    assert program.operations[1].value == 9
    assert program.client == "tester"
    with pytest.raises(ValueError):
        make_program([("q", "x")])
