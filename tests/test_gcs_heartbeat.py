"""Tests of the heartbeat/timeout failure detector.

Pins the quorum-freshness rule (a member is suspected once fewer than a
majority has heard from it within the timeout), its behaviour under crashes,
netsplits and heals, the detector's blindness when the timeout outlasts the
fault, and the mode selection plumbed through the GCS composition root.
"""

from __future__ import annotations

import pytest

from repro.gcs import GroupCommunicationSystem
from repro.gcs.failure_detector import (FailureDetector,
                                        HeartbeatFailureDetector,
                                        build_failure_detector)
from repro.network import Dispatcher, Lan, LinkFault, Node
from repro.sim import Simulator


def build_detector(member_count=3, period=10.0, timeout=50.0, seed=7):
    sim = Simulator(seed=seed)
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, member_count + 1)]
    detector = HeartbeatFailureDetector(sim, lan, nodes,
                                        period=period, timeout=timeout)
    for node in nodes:
        dispatcher = Dispatcher(sim, node)
        detector.bind_dispatcher(node.name, dispatcher)
        dispatcher.start()
        # Restart the receive loop when the node comes back, as the GCS
        # composition root does for its members.
        node.add_listener(lambda n, event, d=dispatcher:
                          d.start() if event == "recover" else None)
    return sim, lan, nodes, detector


def test_parameter_validation():
    sim = Simulator()
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, "s1"))]
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(sim, lan, nodes, period=0.0)
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(sim, lan, nodes, period=10.0, timeout=5.0)


def test_healthy_group_suspects_nobody():
    sim, lan, nodes, detector = build_detector()
    sim.run(until=500.0)
    assert detector.alive_members() == ["s1", "s2", "s3"]
    assert detector.suspicion_count == 0


def test_crashed_member_is_suspected_then_restored_on_recovery():
    sim, lan, (a, b, c), detector = build_detector()
    events = []
    detector.subscribe(lambda member, kind: events.append((sim.now, member, kind)))
    sim.call_at(100.0, c.crash)
    sim.call_at(300.0, c.recover)
    sim.run(until=500.0)
    assert not detector.is_suspected("s3")
    kinds = [(member, kind) for _, member, kind in events]
    assert kinds == [("s3", "suspect"), ("s3", "restore")]
    suspect_time = events[0][0]
    restore_time = events[1][0]
    # Suspicion needs a full timeout of silence plus at most one sweep.
    assert 100.0 + detector.timeout <= suspect_time <= 100.0 + detector.timeout + 2 * detector.period
    assert 300.0 <= restore_time <= 300.0 + 2 * detector.period
    assert detector.suspicion_count == 1
    assert detector.restore_count == 1


def test_netsplit_suspects_the_minority_not_the_majority():
    sim, lan, nodes, detector = build_detector()
    lan.schedule_fault(LinkFault.isolate("iso", "s3", ["s1", "s2", "s3"]),
                       at=100.0)
    sim.run(until=300.0)
    # The majority side's view: the cut-off member is suspected exactly like
    # a crash, the majority members keep vouching for each other.
    assert detector.is_suspected("s3")
    assert not detector.is_suspected("s1")
    assert not detector.is_suspected("s2")


def test_healed_netsplit_restores_the_minority():
    sim, lan, nodes, detector = build_detector()
    lan.schedule_fault(LinkFault.partition("split", ["s1", "s2"], ["s3"]),
                       at=100.0, until=300.0)
    sim.run(until=500.0)
    assert not detector.is_suspected("s3")
    assert detector.suspicion_count == 1
    assert detector.restore_count == 1


def test_fault_shorter_than_timeout_is_invisible():
    sim, lan, nodes, detector = build_detector(period=10.0, timeout=200.0)
    lan.schedule_fault(LinkFault.partition("blip", ["s1", "s2"], ["s3"]),
                       at=100.0, until=250.0)
    sim.run(until=600.0)
    assert detector.suspicion_count == 0


def test_single_lossy_link_alone_suspects_nobody():
    sim, lan, nodes, detector = build_detector()
    # s2<->s3 drops half its traffic; s1 still hears both, and each member's
    # own beat counts, so every member keeps a fresh majority.
    lan.install_fault(LinkFault.lossy("flaky", ["s2"], ["s3"], 0.5))
    sim.run(until=1000.0)
    assert detector.suspicion_count == 0


def test_asymmetric_isolation_still_reaches_quorum_silence():
    sim, lan, nodes, detector = build_detector()
    # s3's outbound beats are dropped; its inbound links still work.  Nobody
    # but s3 itself hears s3, so s3 is suspected.
    lan.install_fault(LinkFault.asymmetric(
        "deaf", [("s3", "s1"), ("s3", "s2")]))
    sim.run(until=300.0)
    assert detector.is_suspected("s3")
    assert not detector.is_suspected("s1")


def test_build_failure_detector_selects_modes():
    sim = Simulator()
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, 4)]
    perfect = build_failure_detector("perfect", sim, lan, nodes,
                                     detection_delay=2.0)
    assert isinstance(perfect, FailureDetector)
    heartbeat = build_failure_detector("heartbeat", sim, lan, nodes,
                                       heartbeat_period=5.0,
                                       heartbeat_timeout=25.0)
    assert isinstance(heartbeat, HeartbeatFailureDetector)
    assert heartbeat.period == 5.0 and heartbeat.timeout == 25.0
    with pytest.raises(ValueError):
        build_failure_detector("psychic", sim, lan, nodes)


def test_perfect_detector_counts_suspicions_and_restores():
    sim = Simulator()
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, 4)]
    detector = FailureDetector(sim, lan, detection_delay=1.0)
    sim.call_at(10.0, nodes[2].crash)
    sim.call_at(20.0, nodes[2].recover)
    sim.run(until=50.0)
    assert detector.suspicion_count == 1
    assert detector.restore_count == 1


def test_perfect_detector_cannot_see_partitions():
    sim = Simulator()
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, 4)]
    detector = FailureDetector(sim, lan, detection_delay=1.0)
    lan.install_fault(LinkFault.isolate("iso", "s3", ["s1", "s2", "s3"]))
    sim.run(until=500.0)
    assert detector.suspicion_count == 0     # the documented blind spot


# -- the GCS composition root ---------------------------------------------------------

def build_group(detector_mode, member_count=3, seed=7, **kwargs):
    sim = Simulator(seed=seed)
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, member_count + 1)]
    gcs = GroupCommunicationSystem(sim, lan, detector_mode=detector_mode,
                                   **kwargs)
    gcs.start()
    return sim, lan, nodes, gcs


def test_gcs_default_mode_is_perfect_and_sends_no_heartbeats():
    sim, lan, nodes, gcs = build_group("perfect")
    sim.run(until=200.0)
    assert isinstance(gcs.failure_detector, FailureDetector)
    assert lan.sent_count == 0


def test_gcs_heartbeat_mode_delivers_broadcasts_and_detects_a_crash():
    sim, lan, nodes, gcs = build_group("heartbeat",
                                       heartbeat_period=10.0,
                                       heartbeat_timeout=50.0)
    delivered = {node.name: [] for node in nodes}

    def consumer(name):
        endpoint = gcs.endpoint(name)
        while True:
            delivery = yield endpoint.deliveries.get()
            delivered[name].append(delivery.payload)

    for node in nodes:
        node.spawn(consumer(node.name))
    gcs.endpoint("s2").broadcast("hello")
    sim.call_at(100.0, nodes[2].crash)
    sim.run(until=400.0)
    assert isinstance(gcs.failure_detector, HeartbeatFailureDetector)
    assert delivered["s1"] == ["hello"]
    assert delivered["s2"] == ["hello"]
    assert gcs.failure_detector.is_suspected("s3")
    # The membership consumed the suspicion: s3 left the view.
    assert "s3" not in gcs.membership.view.members
