"""Tests of the failure-injection experiments (Fig. 5, Fig. 7, Tables 2 and 3)."""

from __future__ import annotations

import pytest

from repro.experiments import (CRASH_PATTERNS, crash_tolerance_summary,
                               demonstrated_losses, figure5_scenario,
                               figure7_scenario, render_matrix,
                               run_crash_scenario, run_failure_matrix,
                               single_crash_scenario, soundness_violations)


def test_figure5_classical_broadcast_loses_the_confirmed_transaction():
    outcome = figure5_scenario()
    assert outcome.confirmed
    assert outcome.transaction_lost
    # Only the (crashed, never-recovered) delegate ever committed it.
    assert outcome.committed_on == ["s1"]
    assert outcome.group_failed and outcome.delegate_crashed


def test_figure7_end_to_end_broadcast_recovers_the_transaction():
    outcome = figure7_scenario()
    assert outcome.confirmed
    assert not outcome.transaction_lost
    # The recovered servers replayed and committed it.
    assert set(outcome.committed_on) >= {"s2", "s3"}


def test_one_safe_cannot_tolerate_a_single_crash():
    outcome = single_crash_scenario("1-safe")
    assert outcome.confirmed
    assert outcome.transaction_lost


def test_group_safe_tolerates_a_single_crash_of_the_delegate():
    outcome = single_crash_scenario("group-safe")
    assert outcome.confirmed
    assert not outcome.transaction_lost


def test_two_safe_survives_the_crash_of_every_server():
    outcome = run_crash_scenario("2-safe", "all-recover-all",
                                 freeze_non_delegates=True)
    assert outcome.confirmed
    assert not outcome.transaction_lost
    assert set(outcome.committed_on) == {"s1", "s2", "s3"}


def test_group_safe_loses_when_the_whole_group_fails():
    outcome = run_crash_scenario("group-safe", "all-delegate-stays-down",
                                 freeze_non_delegates=True)
    assert outcome.confirmed
    assert outcome.transaction_lost


def test_unknown_crash_pattern_rejected():
    with pytest.raises(ValueError):
        run_crash_scenario("group-safe", "not-a-pattern")
    assert "all-recover-all" in CRASH_PATTERNS


@pytest.fixture(scope="module")
def failure_matrix():
    return run_failure_matrix(seed=2)


def test_failure_matrix_is_sound(failure_matrix):
    assert soundness_violations(failure_matrix) == []


def test_failure_matrix_demonstrates_the_expected_losses(failure_matrix):
    demonstrated = {(entry.technique, entry.crash_pattern)
                    for entry in demonstrated_losses(failure_matrix)}
    assert ("1-safe", "delegate") in demonstrated
    assert ("0-safe", "delegate") in demonstrated
    assert ("group-safe", "all-delegate-stays-down") in demonstrated
    assert ("group-1-safe", "all-delegate-stays-down") in demonstrated
    assert not any(technique == "2-safe" for technique, _ in demonstrated)


def test_failure_matrix_crash_tolerance_matches_table2(failure_matrix):
    tolerance = crash_tolerance_summary(failure_matrix)
    # 2-safe survived even the pattern crashing all 3 servers.
    assert tolerance["2-safe"] == 3
    # The group-based techniques survived the single-crash patterns.
    assert tolerance["group-safe"] >= 1
    assert tolerance["group-1-safe"] >= 1


def test_render_matrix_output(failure_matrix):
    rendering = render_matrix(failure_matrix)
    assert "technique" in rendering
    assert "LOST" in rendering and "kept" in rendering
