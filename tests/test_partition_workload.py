"""Partition-aware workload generation: skew, spanning, determinism."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.partition import (PartitionedWorkloadGenerator, RoutingTable,
                             TransactionRouter)
from repro.sim import Simulator
from repro.workload import SimulationParameters, WorkloadGenerator


def programs_signature(generator, count):
    """A comparable rendering of the next ``count`` programs."""
    signature = []
    for _ in range(count):
        program = generator.next_program(client="c")
        signature.append(tuple((op.op_type.value, op.key, op.value)
                               for op in program.operations))
    return signature


# ---------------------------------------------------------------- zipf skew
def test_zipf_skew_is_deterministic_under_fixed_seed():
    params = SimulationParameters.small(item_count=100).with_overrides(
        zipf_skew=1.1)
    first = programs_signature(
        WorkloadGenerator(Simulator(seed=99), params), 30)
    second = programs_signature(
        WorkloadGenerator(Simulator(seed=99), params), 30)
    assert first == second


def test_different_seeds_differ():
    params = SimulationParameters.small(item_count=100).with_overrides(
        zipf_skew=1.1)
    first = programs_signature(
        WorkloadGenerator(Simulator(seed=99), params), 30)
    other = programs_signature(
        WorkloadGenerator(Simulator(seed=100), params), 30)
    assert first != other


def test_zipf_skew_concentrates_accesses():
    params = SimulationParameters.small(item_count=200)
    uniform = WorkloadGenerator(Simulator(seed=5), params)
    skewed = WorkloadGenerator(Simulator(seed=5), params, skew=1.2)
    counts_uniform: Counter = Counter()
    counts_skewed: Counter = Counter()
    for _ in range(2000):
        counts_uniform[uniform.choose_key()] += 1
        counts_skewed[skewed.choose_key()] += 1
    hot = [f"item-{index}" for index in range(10)]
    hot_uniform = sum(counts_uniform[key] for key in hot)
    hot_skewed = sum(counts_skewed[key] for key in hot)
    # 10/200 items take ~5% of a uniform workload but the bulk of a skewed one.
    assert hot_skewed > 3 * hot_uniform
    assert counts_skewed["item-0"] == counts_skewed.most_common(1)[0][1]


def test_zero_skew_reproduces_the_uniform_draws():
    params = SimulationParameters.small(item_count=100)
    plain = programs_signature(WorkloadGenerator(Simulator(seed=3), params), 20)
    zero_skew = programs_signature(
        WorkloadGenerator(Simulator(seed=3), params, skew=0.0), 20)
    assert plain == zero_skew


def test_negative_skew_rejected():
    params = SimulationParameters.small(item_count=10)
    with pytest.raises(ValueError):
        WorkloadGenerator(Simulator(seed=1), params, skew=-0.5)


# ---------------------------------------------------------------- partition spanning
def make_generator(seed=7, cross=0.3, items=120, partitions=4, skew=0.0):
    params = SimulationParameters.small(item_count=items).with_overrides(
        cross_partition_probability=cross, zipf_skew=skew)
    table = RoutingTable.from_strategy("hash", partitions)
    return (PartitionedWorkloadGenerator(Simulator(seed=seed), params,
                                         table),
            TransactionRouter(table))


def test_partitioned_generation_is_deterministic():
    first, _ = make_generator(seed=42, cross=0.4, skew=0.9)
    second, _ = make_generator(seed=42, cross=0.4, skew=0.9)
    assert programs_signature(first, 40) == programs_signature(second, 40)


def test_zero_probability_generates_only_single_partition():
    generator, router = make_generator(cross=0.0)
    for _ in range(50):
        assert router.is_single_partition(generator.next_program())
    assert generator.cross_partition_generated == 0


def test_full_probability_generates_only_spanning_programs():
    generator, router = make_generator(cross=1.0)
    for _ in range(50):
        program = generator.next_program()
        assert len(router.partitions_of(program)) == 2
    assert generator.single_partition_generated == 0


def test_span_is_respected():
    params = SimulationParameters.small(item_count=120).with_overrides(
        cross_partition_probability=1.0, cross_partition_span=3)
    table = RoutingTable.from_strategy("hash", 4)
    generator = PartitionedWorkloadGenerator(Simulator(seed=2), params,
                                             table)
    router = TransactionRouter(table)
    for _ in range(30):
        assert len(router.partitions_of(generator.next_program())) == 3


def test_single_partition_traffic_preserves_the_global_distribution():
    # Sharding must change where keys live, not how often each is accessed:
    # the home partition is drawn from the global key marginal, so under
    # skew the hot item keeps its true Zipf share and hot partitions attract
    # proportionally more transactions.
    from collections import Counter
    params = SimulationParameters.small(item_count=400).with_overrides(
        zipf_skew=1.0)
    table = RoutingTable.from_strategy("hash", 8)
    generator = PartitionedWorkloadGenerator(Simulator(seed=2), params,
                                             table)
    key_counts: Counter = Counter()
    partition_counts: Counter = Counter()
    total_ops = 0
    for _ in range(2000):
        program = generator.next_program()
        for op in program.operations:
            key_counts[op.key] += 1
            total_ops += 1
        partition_counts[table.partition_of(
            program.operations[0].key)] += 1
    true_hot_share = 1.0 / sum(1.0 / (rank + 1) for rank in range(400))
    measured_hot_share = key_counts["item-0"] / total_ops
    assert abs(measured_hot_share - true_hot_share) < 0.03
    # Hot-partition imbalance is visible, not flattened to 1/8 each.
    shares = sorted(count / 2000 for count in partition_counts.values())
    assert shares[-1] > 1.5 * shares[0]


def test_every_partition_must_own_items():
    # 2 items cannot populate 8 hash buckets.
    params = SimulationParameters.small(item_count=2)
    with pytest.raises(ValueError):
        PartitionedWorkloadGenerator(Simulator(seed=1), params,
                                     RoutingTable.from_strategy("hash", 8))


# ---------------------------------------------------------------- epoch refresh
def test_generator_follows_ownership_across_an_epoch_change():
    params = SimulationParameters.small(item_count=100).with_overrides(
        cross_partition_probability=0.0)
    table = RoutingTable.from_strategy("range", 2, 100)
    generator = PartitionedWorkloadGenerator(Simulator(seed=4), params, table)
    table.migrate(0, destination_group=1)
    # Every generated single-partition program now routes to group 1 — the
    # generator rebuilt its caches at the new epoch instead of targeting a
    # group that owns nothing.
    for _ in range(20):
        program = generator.next_program()
        owners = {table.partition_of(op.key) for op in program.operations}
        assert owners == {1}


def test_generator_tolerates_emptied_partitions_after_migration():
    from repro.partition import RoutingTable
    params = SimulationParameters.small(item_count=100).with_overrides(
        cross_partition_probability=0.5, cross_partition_span=2)
    table = RoutingTable.from_strategy("range", 2, 100)
    generator = PartitionedWorkloadGenerator(Simulator(seed=4), params, table)
    table.migrate(0, destination_group=1)
    # With a single non-empty partition no cross-partition program can be
    # built; generation degrades to single-partition instead of raising.
    for _ in range(30):
        generator.next_program()
    assert generator.cross_partition_generated == 0


# ---------------------------------------------------------------- closed loop
def closed_loop_cluster(**overrides):
    from repro.partition import PartitionedCluster
    params = SimulationParameters.small(server_count=3, item_count=120)
    params = params.with_overrides(partition_count=2,
                                   cross_partition_probability=0.2,
                                   **overrides)
    cluster = PartitionedCluster("group-safe", params=params, seed=17,
                                 strategy="range")
    cluster.start()
    return cluster


def test_closed_loop_pool_drives_both_result_kinds():
    from repro.partition import PartitionedClosedLoopClients
    cluster = closed_loop_cluster()
    clients = PartitionedClosedLoopClients(cluster, think_time_mean=150.0,
                                           warmup=500.0)
    clients.start()
    # 2 partitions x 3 servers x 2 clients/server = 12 closed-loop clients.
    assert clients.client_count == 12
    cluster.run(until=6_000)
    assert clients.committed_count > 0
    assert clients.cross_results, "expected some cross-partition traffic"
    assert clients.submitted_count >= clients.committed_count
    # The closed loop self-throttles: never more in flight than clients.
    from repro.partition import collect_statistics
    stats = collect_statistics(clients, duration_ms=5_500)
    assert stats.measured_commits == clients.committed_count
    assert stats.offered_load_tps == 0.0   # no fixed offered load

    assert stats.achieved_throughput_tps > 0


def test_closed_loop_pool_validates_think_time():
    from repro.partition import PartitionedClosedLoopClients
    cluster = closed_loop_cluster()
    with pytest.raises(ValueError):
        PartitionedClosedLoopClients(cluster, think_time_mean=0.0)


def test_closed_loop_pool_survives_a_live_migration():
    from repro.partition import PartitionedClosedLoopClients
    from repro.experiments import audit_commit_integrity
    cluster = closed_loop_cluster()
    clients = PartitionedClosedLoopClients(cluster, think_time_mean=100.0)
    clients.start()
    cluster.run(until=1_000)
    driver = cluster.migrate(0, destination_group=1)
    cluster.run(until=10_000)
    assert driver.value.completed
    assert clients.epoch_commits.get(1, 0) > 0
    assert audit_commit_integrity(cluster, clients) == []
