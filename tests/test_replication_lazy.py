"""Tests of lazy (1-safe) and 0-safe replication."""

from __future__ import annotations

import pytest

from repro.core import SafetyLevel, classify_result
from repro.db import make_program
from tests.conftest import build_cluster


def run_one(cluster, program, server="s1", until=3_000.0):
    waiter = cluster.run_transaction(program, server=server)
    cluster.run(until=cluster.sim.now + until)
    assert waiter.triggered
    return waiter.value


def test_lazy_commits_locally_and_flags_one_safety():
    cluster = build_cluster("1-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    assert result.committed
    assert result.logged_on_delegate
    assert not result.delivered_to_group
    assert classify_result(result) is SafetyLevel.ONE_SAFE
    assert cluster.database("s1").wal.is_logged(result.txn_id)


def test_zero_safe_answers_before_anything_is_durable():
    cluster = build_cluster("0-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    assert result.committed
    assert not result.logged_on_delegate
    assert classify_result(result) is SafetyLevel.ZERO_SAFE


def test_zero_safe_responds_faster_than_one_safe():
    lazy = build_cluster("1-safe", seed=9)
    zero = build_cluster("0-safe", seed=9)
    lazy_result = run_one(lazy, lazy.workload.update_only_program(4))
    zero_result = run_one(zero, zero.workload.update_only_program(4))
    assert zero_result.response_time < lazy_result.response_time


def test_propagation_applies_updates_on_the_other_replicas():
    cluster = build_cluster("1-safe")
    program = make_program([("w", "item-7", "propagated")])
    result = run_one(cluster, program, until=5_000.0)
    # After at least one propagation interval, every replica has the value
    # and records the transaction as committed.
    assert cluster.committed_everywhere(result.txn_id)
    for name in cluster.server_names():
        assert cluster.database(name).value_of("item-7") == "propagated"


def test_propagation_happens_outside_the_response_time():
    cluster = build_cluster("1-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3),
                     until=100.0)
    # The client already has its answer ...
    assert result.committed
    # ... but the other replicas have not applied anything yet (the
    # propagation interval of 250 ms has not elapsed).
    others = [name for name in cluster.server_names() if name != "s1"]
    assert not any(cluster.database(name).testable.has_committed(result.txn_id)
                   for name in others)


def test_lazy_read_only_transaction_commits():
    cluster = build_cluster("1-safe")
    result = run_one(cluster, make_program([("r", "item-1"), ("r", "item-2")]))
    assert result.committed


def test_lazy_divergence_possible_with_conflicting_concurrent_updates():
    """The Sect. 7 hazard: lazy replication has no conflict handling."""
    cluster = build_cluster("1-safe")
    program_a = make_program([("w", "item-9", "from-s1")])
    program_b = make_program([("w", "item-9", "from-s2")])
    waiter_a = cluster.run_transaction(program_a, server="s1")
    waiter_b = cluster.run_transaction(program_b, server="s2")
    cluster.run(until=5_000.0)
    # Both clients were told "committed" — lazy replication accepted both.
    assert waiter_a.value.committed and waiter_b.value.committed
    # Whether the copies converged depends on the (last-writer-wins) apply
    # order; the essential contrast with certification is that *both*
    # transactions committed and neither client was told about the conflict.
    outcomes = {cluster.database(name).value_of("item-9")
                for name in cluster.server_names()}
    assert outcomes <= {"from-s1", "from-s2"}


def test_group_safe_prevents_the_lazy_anomaly():
    cluster = build_cluster("group-safe")
    # Same concurrent conflicting pattern as the lazy test above: freeze the
    # processing stage so both read phases observe the initial versions.
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.close()
    program_a = make_program([("r", "item-9"), ("w", "item-9", "from-s1")])
    program_b = make_program([("r", "item-9"), ("w", "item-9", "from-s2")])
    waiter_a = cluster.run_transaction(program_a, server="s1")
    waiter_b = cluster.run_transaction(program_b, server="s2")
    cluster.run(until=200.0)
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.open()
    cluster.run(until=5_000.0)
    outcomes = sorted([waiter_a.value.committed, waiter_b.value.committed])
    assert outcomes == [False, True]      # certification aborted one of them


def test_lazy_recovery_redoes_only_local_durable_state():
    cluster = build_cluster("1-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3),
                     until=5_000.0)
    cluster.crash_server("s2")
    cluster.run(until=cluster.sim.now + 50.0)
    cluster.recover_server("s2")
    cluster.run(until=cluster.sim.now + 2_000.0)
    assert cluster.database("s2").testable.has_committed(result.txn_id)


def test_lazy_delegate_crash_before_propagation_loses_transaction():
    cluster = build_cluster("1-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3),
                     until=50.0)
    assert result.committed
    cluster.crash_server("s1")
    cluster.run(until=cluster.sim.now + 5_000.0)
    others = [name for name in cluster.server_names() if name != "s1"]
    assert not any(cluster.database(name).testable.has_committed(result.txn_id)
                   for name in others)
