"""Tests of the network substrate: LAN, nodes, dispatcher."""

from __future__ import annotations

import pytest

from repro.network import Dispatcher, Lan, Message, Node
from repro.sim import Simulator


def make_lan(sim, count=3):
    lan = Lan(sim)
    nodes = [lan.attach(Node(sim, f"s{i}")) for i in range(1, count + 1)]
    return lan, nodes


def test_point_to_point_delivery_after_latency():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    lan.send(Message(sender="s1", destination="s2", kind="PING", payload=7))
    received = []

    def consumer():
        message = yield b.inbox.get()
        received.append((message.payload, sim.now))

    b.spawn(consumer())
    sim.run()
    assert received == [(7, pytest.approx(0.07))]
    assert lan.delivered_count == 1


def test_broadcast_reaches_every_node_including_sender():
    sim = Simulator()
    lan, nodes = make_lan(sim)
    lan.broadcast(Message(sender="s1", destination="*", kind="HELLO"))
    sim.run()
    assert all(node.inbox.pending_items == 1 for node in nodes)


def test_message_to_unknown_or_crashed_node_dropped():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    lan.send(Message(sender="s1", destination="nowhere", kind="X"))
    b.crash()
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    sim.run()
    assert lan.dropped_count == 2
    assert lan.delivered_count == 0


def test_message_dropped_if_destination_crashes_in_flight():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    b.crash()           # crash before the 0.07 ms latency elapses
    sim.run()
    assert lan.dropped_count == 1


def test_partition_blocks_and_heals():
    sim = Simulator()
    lan, (a, b, c) = make_lan(sim)
    lan.partition(["s1"], ["s2", "s3"])
    assert lan.is_blocked("s1", "s2") and lan.is_blocked("s3", "s1")
    assert not lan.is_blocked("s2", "s3")
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    sim.run()
    assert lan.dropped_count == 1
    lan.heal()
    lan.send(Message(sender="s1", destination="s2", kind="X"))
    sim.run()
    assert lan.delivered_count == 1


def test_duplicate_node_names_rejected():
    sim = Simulator()
    lan = Lan(sim)
    lan.attach(Node(sim, "s1"))
    with pytest.raises(ValueError):
        lan.attach(Node(sim, "s1"))


def test_node_crash_kills_processes_and_preserves_stable_storage():
    sim = Simulator()
    node = Node(sim, "s1")
    stable = node.register_stable("log", ["entry"])
    progress = []

    def worker():
        yield sim.timeout(100.0)
        progress.append("finished")

    node.spawn(worker())
    node.inbox.put("pending message")
    sim.call_after(10.0, node.crash)
    sim.run()
    assert progress == []                       # the process was killed
    assert node.inbox.pending_items == 0        # volatile inbox wiped
    assert node.stable("log") == ["entry"]      # stable storage survived
    assert node.is_crashed and node.crash_count == 1


def test_crashed_node_refuses_new_processes_until_recovery():
    sim = Simulator()
    node = Node(sim, "s1")
    node.crash()
    with pytest.raises(RuntimeError):
        node.spawn(iter(()))
    node.recover()
    assert node.is_up
    assert node.recovery_times


def test_node_listener_notifications():
    sim = Simulator()
    node = Node(sim, "s1")
    events = []
    node.add_listener(lambda n, event: events.append(event))
    node.crash()
    node.crash()      # double crash is a no-op
    node.recover()
    node.recover()    # double recovery is a no-op
    assert events == ["crash", "recover"]


def test_node_rejects_invalid_hardware():
    sim = Simulator()
    with pytest.raises(ValueError):
        Node(sim, "bad", cpus=0)


def test_dispatcher_routes_by_kind_and_counts_unhandled():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    dispatcher = Dispatcher(sim, b)
    seen = []
    dispatcher.register("KNOWN", lambda message: seen.append(message.payload))
    dispatcher.start()
    lan.send(Message(sender="s1", destination="s2", kind="KNOWN", payload=1))
    lan.send(Message(sender="s1", destination="s2", kind="UNKNOWN", payload=2))
    sim.run()
    assert seen == [1]
    assert dispatcher.dispatched_count == 2
    assert dispatcher.unhandled_count == 1


def test_dispatcher_default_handler_and_restart():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    dispatcher = Dispatcher(sim, b)
    fallback = []
    dispatcher.register_default(lambda message: fallback.append(message.kind))
    dispatcher.start()
    assert dispatcher.is_running
    lan.send(Message(sender="s1", destination="s2", kind="ANY"))
    sim.run()
    assert fallback == ["ANY"]
    b.crash()
    assert not dispatcher.is_running
    b.recover()
    dispatcher.start()
    lan.send(Message(sender="s1", destination="s2", kind="AGAIN"))
    sim.run()
    assert fallback == ["ANY", "AGAIN"]


def test_dispatcher_charges_cpu_for_reception():
    sim = Simulator()
    lan, (a, b, _c) = make_lan(sim)
    dispatcher = Dispatcher(sim, b)
    dispatcher.register("K", lambda message: None)
    dispatcher.start()
    lan.send(Message(sender="s1", destination="s2", kind="K"))
    sim.run()
    assert b.cpu.busy_time == pytest.approx(b.cpu_time_per_network_op)


def test_message_with_destination_keeps_identity():
    original = Message(sender="s1", destination="*", kind="K", payload="x")
    copy = original.with_destination("s2")
    assert copy.message_id == original.message_id
    assert copy.destination == "s2"
    assert copy.payload == "x"
