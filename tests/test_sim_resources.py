"""Tests of resources, stores and gates."""

from __future__ import annotations

import pytest

from repro.sim import Gate, Resource, SimulationError, Simulator, Store


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    first, second, third = (resource.request() for _ in range(3))
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.in_use == 2
    assert resource.queue_length == 1


def test_resource_release_wakes_fifo_waiter():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    completion_order = []

    def worker(name, duration):
        yield from resource.use(duration)
        completion_order.append((name, sim.now))

    sim.spawn(worker("a", 5.0))
    sim.spawn(worker("b", 3.0))
    sim.spawn(worker("c", 2.0))
    sim.run()
    assert completion_order == [("a", 5.0), ("b", 8.0), ("c", 10.0)]


def test_resource_parallel_slots():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    done = []

    def worker(name):
        yield from resource.use(4.0)
        done.append((name, sim.now))

    for name in ("a", "b", "c"):
        sim.spawn(worker(name))
    sim.run()
    assert done == [("a", 4.0), ("b", 4.0), ("c", 8.0)]


def test_resource_rejects_bad_capacity_and_release():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)
    resource = Resource(sim, capacity=1)
    request = resource.request()
    resource.release(request)
    with pytest.raises(SimulationError):
        resource.release(request)


def test_resource_release_of_waiting_request_cancels_it():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    holder = resource.request()
    waiter = resource.request()
    resource.release(waiter)      # give up the queued request
    assert resource.queue_length == 0
    resource.release(holder)
    assert resource.in_use == 0


def test_resource_busy_time_accounting():
    sim = Simulator()
    resource = Resource(sim, capacity=1)

    def worker():
        yield from resource.use(6.0)

    sim.spawn(worker())
    sim.run()
    assert resource.busy_time == pytest.approx(6.0)
    assert resource.granted_count == 1


def test_resource_cancel_all_clears_state():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.request()
    resource.request()
    resource.cancel_all()
    assert resource.in_use == 0
    assert resource.queue_length == 0


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    received = []

    def consumer():
        for _ in range(2):
            item = yield store.get()
            received.append(item)

    sim.spawn(consumer())
    sim.run()
    assert received == ["a", "b"]


def test_store_blocking_get_wakes_on_put():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer():
        item = yield store.get()
        received.append((item, sim.now))

    def producer():
        yield sim.timeout(7.0)
        store.put("late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert received == [("late", 7.0)]


def test_store_clear_drops_items_and_getters():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.clear()
    assert len(store) == 0
    assert store.pending_items == 0


def test_gate_blocks_until_opened():
    sim = Simulator()
    gate = Gate(sim)
    passed = []

    def waiter(name):
        yield gate.wait()
        passed.append((name, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.call_after(5.0, gate.open)
    sim.run()
    assert passed == [("a", 5.0), ("b", 5.0)]


def test_open_gate_lets_waiters_through_immediately():
    sim = Simulator()
    gate = Gate(sim, opened=True)
    passed = []

    def waiter():
        yield gate.wait()
        passed.append(sim.now)

    sim.spawn(waiter())
    sim.run()
    assert passed == [0.0]


def test_gate_close_blocks_future_waiters():
    sim = Simulator()
    gate = Gate(sim, opened=True)
    gate.close()
    passed = []

    def waiter():
        yield gate.wait()
        passed.append(sim.now)

    sim.spawn(waiter())
    sim.run(until=10.0)
    assert passed == []
    gate.open()
    sim.run()
    assert passed == [10.0]
