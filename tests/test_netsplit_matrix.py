"""The netsplit matrix: derived predictions, cell runners and the gates.

The prediction tests pin :func:`repro.core.matrix.netsplit_outcome` cell by
cell; the scenario tests run a few representative (engine, fault, detector)
cells end to end and check the observed progress/blocking against the
predictions, the commit-integrity audit and the convergence check; the
gate tests exercise the soundness/match classification on synthetic
outcomes so a regression in the matrix's own accounting cannot hide.
"""

from __future__ import annotations

import pytest

from repro.core.matrix import (NETSPLIT_FAULT_KINDS, NetsplitPrediction,
                               netsplit_outcome)
from repro.experiments.netsplit_matrix import (
    DETECTOR_CONFIGS, FAULT_END, FAULT_START, GROUP_FAULT_PATTERNS,
    NetsplitCellOutcome, engines_missing_minority_blocking,
    netsplit_prediction_mismatches, netsplit_soundness_violations,
    render_netsplit_matrix, run_gray_2pc_scenario,
    run_group_netsplit_scenario, run_migration_fence_split_scenario,
    run_netsplit_matrix)


# ---------------------------------------------------------------- predictions
def test_partition_predictions_follow_the_quorum_discipline():
    blind = netsplit_outcome("partition", coordinator_in_minority=True,
                             detector_sees_fault=False)
    assert blind == NetsplitPrediction(minority_blocks=True,
                                       majority_progress=False,
                                       possible_loss=False)
    seen = netsplit_outcome("partition", coordinator_in_minority=True,
                            detector_sees_fault=True)
    assert seen.majority_progress is True
    follower = netsplit_outcome("partition", coordinator_in_minority=False,
                                detector_sees_fault=False)
    assert follower.majority_progress is True
    assert follower.minority_blocks is True


def test_lossy_predicts_nothing_about_progress():
    prediction = netsplit_outcome("lossy", False, False)
    assert prediction.minority_blocks is None
    assert prediction.majority_progress is None
    assert prediction.possible_loss is False


@pytest.mark.parametrize("kind", ["slow", "gray-disk", "gray-cpu"])
def test_delay_faults_predict_progress_everywhere(kind):
    prediction = netsplit_outcome(kind, False, False)
    assert prediction == NetsplitPrediction(minority_blocks=False,
                                            majority_progress=True,
                                            possible_loss=False)


def test_no_netsplit_cell_may_lose_a_confirmed_transaction():
    for kind in NETSPLIT_FAULT_KINDS:
        for minority in (True, False):
            for seen in (True, False):
                assert not netsplit_outcome(kind, minority, seen).possible_loss


def test_unknown_fault_kind_is_rejected():
    with pytest.raises(ValueError, match="unknown fault kind"):
        netsplit_outcome("emp", False, False)


# ---------------------------------------------------------------- cell gates
def _outcome(**overrides) -> NetsplitCellOutcome:
    base = dict(engine="fixed-sequencer", fault_pattern="split-minority-follower",
                detector="perfect",
                prediction=netsplit_outcome("partition", False, False),
                majority_commits=3, minority_commits=0, post_heal_ok=True,
                converged=True)
    base.update(overrides)
    return NetsplitCellOutcome(**base)


def test_a_clean_cell_is_sound_and_matched():
    entry = _outcome()
    assert entry.sound and entry.matched
    assert entry.demonstrates_minority_blocking


def test_minority_commit_in_a_blocked_cell_is_a_soundness_violation():
    entry = _outcome(minority_commits=1)
    assert not entry.sound
    assert not entry.matched
    assert netsplit_soundness_violations([entry]) == [entry]


def test_observed_loss_and_divergence_are_soundness_violations():
    assert not _outcome(observed_loss=True).sound
    assert not _outcome(converged=False).sound
    assert not _outcome(post_heal_ok=False).sound


def test_blocked_majority_in_a_progress_cell_is_a_mismatch_not_a_violation():
    entry = _outcome(majority_commits=0)
    assert entry.sound
    assert not entry.matched
    assert netsplit_prediction_mismatches([entry]) == [entry]


def test_unpredicted_axes_never_mismatch():
    entry = _outcome(prediction=netsplit_outcome("lossy", False, False),
                     majority_commits=0, minority_commits=5)
    assert entry.matched
    assert not entry.demonstrates_minority_blocking


def test_engines_missing_minority_blocking_names_the_engine():
    blocking = _outcome()
    silent = _outcome(engine="multi-paxos",
                      prediction=netsplit_outcome("slow", False, False),
                      minority_commits=2)
    assert engines_missing_minority_blocking([blocking, silent]) == \
        ["multi-paxos"]
    assert engines_missing_minority_blocking([blocking]) == []


def test_render_lists_counts_and_violations():
    text = render_netsplit_matrix([_outcome(), _outcome(minority_commits=2)])
    assert "cells: 2" in text
    assert "soundness violations: 1" in text
    assert "VIOLATION" in text


# ---------------------------------------------------------------- live cells
def test_unknown_pattern_and_detector_are_rejected():
    with pytest.raises(ValueError, match="unknown fault pattern"):
        run_group_netsplit_scenario("fixed-sequencer", "meteor", "perfect")
    with pytest.raises(ValueError, match="unknown detector"):
        run_group_netsplit_scenario("fixed-sequencer",
                                    "split-minority-follower", "psychic")


def test_follower_split_cell_commits_on_the_majority_only():
    outcome = run_group_netsplit_scenario("fixed-sequencer",
                                          "split-minority-follower",
                                          "perfect", seed=1)
    assert outcome.majority_commits == 3
    assert outcome.minority_commits == 0
    assert outcome.sound and outcome.matched
    assert outcome.demonstrates_minority_blocking
    assert outcome.drops_by_cause.get("partitioned", 0) > 0


def test_blind_detector_with_coordinator_in_minority_blocks_everything():
    outcome = run_group_netsplit_scenario("fixed-sequencer",
                                          "split-minority-coordinator",
                                          "perfect", seed=1)
    assert outcome.majority_commits == 0
    assert outcome.minority_commits == 0
    assert not outcome.observed_loss
    assert outcome.sound and outcome.matched


def test_heartbeat_detector_restores_majority_progress():
    outcome = run_group_netsplit_scenario("multi-paxos",
                                          "split-minority-coordinator",
                                          "hb-fast", seed=1)
    assert outcome.majority_commits > 0
    assert outcome.minority_commits == 0
    assert outcome.suspicion_count >= 1
    assert outcome.sound and outcome.matched


def test_gray_disk_cell_commits_with_inflated_latency():
    outcome = run_group_netsplit_scenario("fixed-sequencer",
                                          "gray-degraded-disk",
                                          "perfect", seed=1)
    assert outcome.majority_commits == 3
    assert outcome.minority_commits == 2
    assert outcome.latency_inflation is not None
    assert outcome.latency_inflation > 1.5
    assert outcome.sound and outcome.matched


def test_migration_fence_split_completes_and_resyncs_the_victim():
    outcome = run_migration_fence_split_scenario("fixed-sequencer", seed=1)
    assert outcome.majority_commits == 1   # the migration completed
    assert outcome.post_heal_ok
    assert outcome.converged
    assert outcome.sound and outcome.matched


def test_gray_2pc_cell_commits_atomically_under_the_degraded_disk():
    outcome = run_gray_2pc_scenario("multi-paxos", seed=1)
    assert outcome.majority_commits == 1
    assert outcome.latency_inflation is not None
    assert outcome.latency_inflation > 1.5
    assert outcome.post_heal_ok
    assert outcome.sound and outcome.matched


def test_matrix_runner_spans_engines_patterns_and_detectors():
    entries = run_netsplit_matrix(engines=["fixed-sequencer"],
                                  patterns=["split-minority-follower"],
                                  detectors=["perfect", "hb-slow"],
                                  include_partitioned=False)
    assert [(e.engine, e.fault_pattern, e.detector) for e in entries] == [
        ("fixed-sequencer", "split-minority-follower", "perfect"),
        ("fixed-sequencer", "split-minority-follower", "hb-slow")]
    assert netsplit_soundness_violations(entries) == []
    assert netsplit_prediction_mismatches(entries) == []


def test_fault_window_and_configs_are_consistent():
    assert FAULT_END > FAULT_START
    assert DETECTOR_CONFIGS["hb-fast"]["heartbeat_timeout"] < \
        FAULT_END - FAULT_START
    assert DETECTOR_CONFIGS["hb-slow"]["heartbeat_timeout"] > \
        FAULT_END - FAULT_START
    for pattern, (kind, minority, _) in GROUP_FAULT_PATTERNS.items():
        assert kind in NETSPLIT_FAULT_KINDS, pattern
        assert "s2" not in minority, "s2 is the fixed majority delegate"
