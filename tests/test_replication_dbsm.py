"""Tests of the database state machine techniques (group-safe, group-1-safe, 2-safe)."""

from __future__ import annotations

import pytest

from repro.core import SafetyLevel, classify_result
from repro.db import make_program
from tests.conftest import build_cluster


def run_one(cluster, program, server="s1", until=3_000.0):
    waiter = cluster.run_transaction(program, server=server)
    cluster.run(until=cluster.sim.now + until)
    assert waiter.triggered, "transaction never terminated"
    return waiter.value


@pytest.mark.parametrize("technique", ["group-safe", "group-1-safe", "2-safe"])
def test_update_transaction_commits_on_every_server(technique):
    cluster = build_cluster(technique)
    program = cluster.workload.update_only_program(write_count=4)
    result = run_one(cluster, program)
    assert result.committed
    cluster.run(until=cluster.sim.now + 1_000.0)
    assert cluster.committed_everywhere(result.txn_id)
    # Every copy converged to the same values for the written items.
    for key in program.write_keys:
        values = {cluster.database(name).value_of(key)
                  for name in cluster.server_names()}
        assert len(values) == 1


def test_group_safe_notification_guarantee_flags():
    cluster = build_cluster("group-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    assert result.delivered_to_group
    assert not result.logged_on_delegate
    assert classify_result(result) is SafetyLevel.GROUP_SAFE


def test_group_one_safe_notification_guarantee_flags():
    cluster = build_cluster("group-1-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    assert result.delivered_to_group
    assert result.logged_on_delegate
    assert classify_result(result) is SafetyLevel.GROUP_ONE_SAFE
    # Group-1-safe answered only after the delegate's commit record was durable.
    assert cluster.database("s1").wal.is_logged(result.txn_id)


def test_two_safe_logs_before_answering_and_uses_e2e_broadcast():
    cluster = build_cluster("2-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    assert result.logged_on_delegate
    assert cluster.gcs.end_to_end
    endpoint = cluster.gcs.endpoint("s1")
    assert endpoint.message_log.is_acknowledged(
        endpoint.message_log.entries()[0].broadcast_id)


def test_group_safe_responds_before_delegate_logs():
    cluster = build_cluster("group-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    # The response time of group-safe excludes the synchronous log flush, so
    # it must be well below one disk write plus the read phase of a
    # write-only transaction (which has no reads at all).
    assert result.response_time < 4.0
    cluster.run(until=cluster.sim.now + 2_000.0)
    # Eventually the commit record still reaches stable storage (group commit).
    assert cluster.database("s1").wal.is_logged(result.txn_id)


def test_group_one_safe_response_slower_than_group_safe():
    program_writes = 5
    fast = build_cluster("group-safe", seed=3)
    slow = build_cluster("group-1-safe", seed=3)
    fast_result = run_one(fast, fast.workload.update_only_program(program_writes))
    slow_result = run_one(slow, slow.workload.update_only_program(program_writes))
    assert fast_result.response_time < slow_result.response_time


def test_read_only_transaction_commits_locally_without_broadcast():
    cluster = build_cluster("group-safe")
    program = make_program([("r", "item-1"), ("r", "item-2")])
    result = run_one(cluster, program)
    assert result.committed
    assert not result.delivered_to_group
    # Only the delegate decided it; the others never heard of it.
    assert cluster.committed_anywhere(result.txn_id) == ["s1"]
    assert cluster.gcs.endpoint("s1").broadcast_count == 0


def test_certification_aborts_conflicting_transaction_everywhere():
    cluster = build_cluster("group-safe")
    # Freeze processing on every server so both transactions execute their
    # read phase against the same (initial) versions before either write set
    # is applied anywhere — a genuine concurrent conflict.  The one ordered
    # second by the atomic broadcast must then abort on every server.
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.close()
    program_a = make_program([("r", "item-5"), ("w", "item-5", "a")])
    program_b = make_program([("r", "item-5"), ("w", "item-5", "b")])
    waiter_a = cluster.run_transaction(program_a, server="s1")
    waiter_b = cluster.run_transaction(program_b, server="s2")
    cluster.run(until=200.0)
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.open()
    cluster.run(until=5_000.0)
    results = sorted([waiter_a.value, waiter_b.value],
                     key=lambda result: result.committed, reverse=True)
    assert results[0].committed and not results[1].committed
    assert results[1].abort_reason == "certification"
    loser = results[1].txn_id
    for name in cluster.server_names():
        assert cluster.database(name).testable.outcome(loser) == "abort"
    # The committed value is the winner's value on every copy.
    values = {cluster.database(name).value_of("item-5")
              for name in cluster.server_names()}
    assert len(values) == 1


def test_non_conflicting_concurrent_transactions_both_commit():
    cluster = build_cluster("group-safe")
    program_a = make_program([("r", "item-10"), ("w", "item-10", "a")])
    program_b = make_program([("r", "item-20"), ("w", "item-20", "b")])
    waiter_a = cluster.run_transaction(program_a, server="s1")
    waiter_b = cluster.run_transaction(program_b, server="s2")
    cluster.run(until=5_000.0)
    assert waiter_a.value.committed and waiter_b.value.committed


def test_delegate_crash_after_confirmation_does_not_lose_group_safe_txn():
    cluster = build_cluster("group-safe")
    result = run_one(cluster, cluster.workload.update_only_program(3))
    cluster.crash_server("s1")
    cluster.run(until=cluster.sim.now + 2_000.0)
    survivors = [name for name in cluster.server_names() if name != "s1"]
    assert all(cluster.database(name).testable.has_committed(result.txn_id)
               for name in survivors)


def test_recovered_server_catches_up_after_minority_crash_two_safe():
    cluster = build_cluster("2-safe")
    first = run_one(cluster, cluster.workload.update_only_program(3))
    cluster.crash_server("s3")
    cluster.run(until=cluster.sim.now + 100.0)
    second = run_one(cluster, cluster.workload.update_only_program(3))
    assert first.committed and second.committed
    cluster.recover_server("s3")
    cluster.run(until=cluster.sim.now + 3_000.0)
    assert cluster.database("s3").testable.has_committed(second.txn_id)
