#!/usr/bin/env python3
"""Compare the total-order broadcast engines under the same workload.

The replication techniques never name an ordering protocol; the engine is a
parameter (``SimulationParameters.broadcast_engine``).  This example runs
the identical 30-transaction workload over every registered engine twice —
once undisturbed, once crashing the initial coordinator/leader mid-run —
and prints committed counts, mean response time and message cost side by
side.  On a quiet LAN the two commit the same transactions at comparable
latency; their message economies differ, and under leader loss Multi-Paxos
rides through via ballot changeover while the sequencer re-routes through a
view change.

Run it with::

    python examples/engine_comparison.py
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.gcs.engines import engine_names, resolve_engine
from repro.replication import ReplicatedDatabaseCluster
from repro.workload import SimulationParameters

TECHNIQUE = "group-safe"
TRANSACTIONS = 30
CRASH_AT, RECOVER_AT, END_AT = 300.0, 450.0, 3_000.0


def run_cell(engine: str, crash_leader: bool, seed: int = 7):
    """One engine x {steady, leader-crash} cell of the comparison."""
    params = SimulationParameters.small(server_count=3, item_count=200) \
        .with_overrides(broadcast_engine=engine)
    cluster = ReplicatedDatabaseCluster(TECHNIQUE, params=params, seed=seed)
    cluster.start()
    servers = cluster.server_names()
    waiters = []

    def driver():
        for index in range(TRANSACTIONS):
            program = cluster.workload.next_program(client=f"c{index}")
            delegate = servers[index % len(servers)]
            if cluster.nodes[delegate].is_crashed:
                delegate = cluster.up_servers()[0]
            waiters.append(cluster.submit(program, server=delegate))
            yield cluster.sim.timeout(40.0)

    cluster.sim.spawn(driver())
    if crash_leader:
        cluster.run(until=CRASH_AT)
        cluster.crash_server(servers[0])
        cluster.run(until=RECOVER_AT)
        cluster.recover_server(servers[0])
    cluster.run(until=END_AT)

    results = [waiter.value for waiter in waiters if waiter.triggered]
    committed = [result for result in results if result.committed]
    mean_rt = (sum(result.response_time for result in committed)
               / len(committed)) if committed else 0.0
    return (len(committed), len(results), f"{mean_rt:.1f} ms",
            cluster.lan.sent_count)


def main() -> None:
    print(f"Broadcast-engine comparison — {TECHNIQUE}, "
          f"{TRANSACTIONS} transactions, 3 servers\n")
    rows = []
    for engine in engine_names():
        spec = resolve_engine(engine)
        for crash_leader in (False, True):
            committed, responded, mean_rt, sent = run_cell(engine,
                                                           crash_leader)
            rows.append((engine,
                         "leader crash+recover" if crash_leader else "steady",
                         f"{committed}/{responded}", mean_rt, sent))
        print(f"  {engine}: {spec.description}")
    print()
    print(format_table(
        ("engine", "scenario", "committed/responded", "mean response",
         "LAN messages"),
        rows))
    print("\nSame techniques, same workload, same seed — only the ordering"
          "\nprotocol differs.  Select an engine with"
          "\nSimulationParameters.broadcast_engine or the CLIs' --engine.")


if __name__ == "__main__":
    main()
