#!/usr/bin/env python3
"""Section 7 analysis: lazy vs group-safe replication as the group grows.

Two views of the paper's closing argument:

* the analytic probability of an ACID violation per epoch — growing with the
  number of servers for lazy replication (more concurrent conflicting
  updates), shrinking for group-safe replication (a larger group is less
  likely to lose its quorum);
* a simulated demonstration of the mechanism: deliberately conflicting
  updates submitted on two servers at once are silently accepted by lazy
  replication and arbitrated by certification under group-safe replication.

Run it with::

    python examples/scaling_analysis.py
"""

from __future__ import annotations

from repro.core import acid_violation_probability
from repro.experiments import (analytic_scaling, conflicting_updates_run,
                               render_scaling)


def main() -> None:
    print("Sect. 7 — probability of violating the ACID properties per epoch")
    print("(per-server unavailability 5 %, 30 tps system load, Table 4 workload)\n")
    points = analytic_scaling(server_counts=(3, 5, 7, 9, 11, 13, 15))
    print(render_scaling(points))

    print("\nSensitivity to the per-server unavailability (9 servers):")
    for downtime in (0.01, 0.05, 0.10, 0.20):
        group = acid_violation_probability("group-safe", 9,
                                           server_down_probability=downtime)
        lazy = acid_violation_probability("1-safe", 9,
                                          server_down_probability=downtime)
        print(f"  p(down)={downtime:4.0%}:  group-safe {group:8.4%}   "
              f"lazy {lazy:8.4%}")

    print("\nSimulated mechanism behind the lazy curve "
          "(8 conflicting update pairs):")
    for technique in ("1-safe", "group-safe"):
        outcome = conflicting_updates_run(technique, conflicts=8, seed=5)
        print(f"  {technique:>10}: committed {outcome.committed}/"
              f"{outcome.submitted}, aborted {outcome.aborted}, "
              f"divergent items after settling: {len(outcome.divergent_items)}")
    print("\nLazy replication accepted every conflicting update without telling")
    print("any client; the database state machine aborted one of each pair and")
    print("kept all copies identical — the group pays with aborts, never with")
    print("silent inconsistency.")


if __name__ == "__main__":
    main()
