#!/usr/bin/env python3
"""Quickstart for the partitioned replication subsystem.

The example shards a small database across four replica groups (each running
the group-safe technique on its own atomic broadcast), drives it with a mixed
workload in which one transaction in five spans two partitions, and prints:

* the per-partition routing and commit counts,
* the fast-path vs. coordinated (2PC) response times,
* an atomicity check over every cross-partition transaction.

Run it with::

    python examples/partitioned_quickstart.py
"""

from __future__ import annotations

from repro.partition import (PartitionedCluster, PartitionedOpenLoopClients,
                             collect_statistics)
from repro.workload import SimulationParameters

PARTITIONS = 4
LOAD_TPS = 60.0
DURATION_MS = 10_000.0


def main() -> None:
    params = SimulationParameters.small(server_count=3, item_count=400)
    params = params.with_overrides(partition_count=PARTITIONS,
                                   cross_partition_probability=0.2)
    cluster = PartitionedCluster("group-safe", params=params, seed=7)
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=LOAD_TPS,
                                         warmup=1_000.0)
    clients.start()
    cluster.run(until=DURATION_MS)
    stats = collect_statistics(clients, duration_ms=DURATION_MS - 1_000.0)

    print(f"Partitioned cluster: {PARTITIONS} group-safe replica groups, "
          f"{LOAD_TPS:.0f} tps offered\n")
    print(f"  routing: {cluster.router.single_partition_count} single-partition, "
          f"{cluster.router.cross_partition_count} cross-partition")
    print(f"  per-partition local commits: {cluster.commit_counts()}")
    print(f"  fast path   : {stats.single.measured_commits} committed, "
          f"mean rt {stats.single.mean_response_time:.1f} ms, "
          f"p95 {stats.single.percentile(0.95):.1f} ms")
    print(f"  coordinated : {stats.cross.measured_commits} committed, "
          f"{stats.cross.measured_aborts} aborted "
          f"({stats.cross.abort_reasons or 'no aborts'}), "
          f"mean rt {stats.cross.mean_response_time:.1f} ms")
    print(f"  overall throughput: {stats.achieved_throughput_tps:.1f} tps\n")

    violations = 0
    for outcome in cluster.cross_partition_outcomes():
        if not outcome.committed:
            continue
        for branch in outcome.branches:
            if branch.txn_id and not cluster.group(
                    branch.partition_id).committed_anywhere(branch.txn_id):
                violations += 1
    total = len(cluster.cross_partition_outcomes())
    if violations:
        print(f"Atomicity check over {total} cross-partition transactions: "
              f"{violations} committed branch(es) MISSING from their "
              f"partition — atomicity violated!")
    else:
        print(f"Atomicity check over {total} cross-partition transactions: "
              f"no committed branch missing from its partition — every "
              f"transaction committed on all involved partitions or on none.")


if __name__ == "__main__":
    main()
