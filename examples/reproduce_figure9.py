#!/usr/bin/env python3
"""Reproduce Fig. 9: response time vs. load for the three techniques.

By default a reduced grid is swept so the example finishes in a couple of
minutes; pass ``--full`` for the paper's exact grid (20–40 tps in steps of 2,
30 s of simulated time per point), or ``--quick`` for a 3-point smoke run.

Run it with::

    python examples/reproduce_figure9.py [--quick | --full]
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (FIGURE9_LOADS, crossover_load, curves,
                               figure9_sweep, render_figure9)

PROFILES = {
    "quick": dict(loads=(20.0, 30.0, 40.0), duration_ms=8_000.0,
                  warmup_ms=2_000.0),
    "default": dict(loads=(20.0, 24.0, 28.0, 32.0, 36.0, 38.0, 40.0),
                    duration_ms=12_000.0, warmup_ms=3_000.0),
    "full": dict(loads=tuple(float(load) for load in FIGURE9_LOADS),
                 duration_ms=30_000.0, warmup_ms=5_000.0),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="3 load points, short measurement window")
    parser.add_argument("--full", action="store_true",
                        help="the paper's full 20-40 tps grid")
    parser.add_argument("--seed", type=int, default=1)
    arguments = parser.parse_args()
    profile = PROFILES["full" if arguments.full else
                       "quick" if arguments.quick else "default"]

    print("Reproducing Fig. 9 (response time vs. load, Table 4 configuration)")
    print(f"  loads      : {', '.join(f'{load:g}' for load in profile['loads'])} tps")
    print(f"  measurement: {profile['duration_ms'] / 1000:.0f} s simulated per "
          f"point ({profile['warmup_ms'] / 1000:.0f} s warm-up)")
    print()

    started = time.time()
    points = figure9_sweep(seed=arguments.seed, **profile)
    elapsed = time.time() - started

    print(render_figure9(points))
    print()
    crossover = crossover_load(points, "group-safe", "1-safe")
    if crossover is None:
        print("group-safe outperformed lazy replication over the whole sweep")
    else:
        print(f"group-safe loses its advantage over lazy replication at "
              f"~{crossover:g} tps (paper: 38 tps)")
    series = curves(points)
    worst = max(series["group-1-safe"],
                key=lambda point: point.mean_response_time_ms)
    print(f"group-1-safe degrades fastest (up to "
          f"{worst.mean_response_time_ms:.0f} ms at {worst.offered_load_tps:g} tps)")
    print(f"\nwall-clock time: {elapsed:.1f} s")


if __name__ == "__main__":
    main()
