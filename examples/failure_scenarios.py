#!/usr/bin/env python3
"""Failure scenarios: reproduce Fig. 5 and Fig. 7 and the Table 2/3 matrix.

The example replays the paper's central failure scenario — every server
crashes right after a transaction was confirmed to the client, with the
non-delegate servers caught between *delivering* the transaction's message
and *processing* it — once on classical atomic broadcast (the transaction is
lost, Fig. 5) and once on end-to-end atomic broadcast (it is recovered,
Fig. 7).  It then runs the full failure-injection matrix behind Tables 2
and 3.

Run it with::

    python examples/failure_scenarios.py
"""

from __future__ import annotations

from repro.experiments import (crash_tolerance_summary, figure5_scenario,
                               figure7_scenario, render_matrix,
                               run_failure_matrix, single_crash_scenario,
                               soundness_violations)


def describe(outcome) -> None:
    """Print one scenario outcome in a readable way."""
    print(f"  technique           : {outcome.technique}")
    print(f"  crash pattern       : {outcome.crash_pattern}")
    print(f"  client was told     : "
          f"{'committed' if outcome.confirmed else 'aborted'}")
    print(f"  servers crashed     : {', '.join(outcome.crashed_servers) or '—'}")
    print(f"  servers recovered   : {', '.join(outcome.recovered_servers) or '—'}")
    print(f"  committed on        : {', '.join(outcome.committed_on) or 'nobody'}")
    verdict = "TRANSACTION LOST" if outcome.transaction_lost else "transaction safe"
    print(f"  outcome             : {verdict}")


def main() -> None:
    print("=" * 72)
    print("Fig. 5 — group-1-safe replication on CLASSICAL atomic broadcast")
    print("=" * 72)
    describe(figure5_scenario())
    print("\nThe message carrying the transaction was delivered everywhere, but")
    print("delivery guarantees nothing about processing: after the crash no")
    print("component will ever present it again, so the confirmed transaction")
    print("is gone (the paper's Sect. 3 argument).")

    print()
    print("=" * 72)
    print("Fig. 7 — 2-safe replication on END-TO-END atomic broadcast")
    print("=" * 72)
    describe(figure7_scenario())
    print("\nThe group-communication component logged the delivery and replays it")
    print("after recovery; testable transactions make the replay commit exactly")
    print("once — the transaction survives the crash of every server.")

    print()
    print("=" * 72)
    print("A single crash: 1-safe vs group-safe (Table 2, first two rows)")
    print("=" * 72)
    for technique in ("1-safe", "group-safe"):
        print(f"\n-- {technique} --")
        describe(single_crash_scenario(technique))

    print()
    print("=" * 72)
    print("Full failure-injection matrix (measured side of Tables 2 and 3)")
    print("=" * 72)
    entries = run_failure_matrix()
    print(render_matrix(entries))
    violations = soundness_violations(entries)
    print(f"\nsoundness violations (losses where the criterion forbids them): "
          f"{len(violations)}")
    print("observed crash tolerance (largest crash count survived):")
    for technique, tolerated in sorted(crash_tolerance_summary(entries).items()):
        print(f"  {technique:>14}: {tolerated} simultaneous crashes")


if __name__ == "__main__":
    main()
