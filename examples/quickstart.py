#!/usr/bin/env python3
"""Quickstart: run a few transactions on each replication technique.

The example builds a small replicated database (3 servers) for every
technique of the paper, submits the same transactions to each, and prints the
client-observed response times together with the safety guarantee that held
when the client was answered.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import classify_result, criterion_for, safety_of_technique
from repro.experiments import format_table
from repro.replication import TECHNIQUES, ReplicatedDatabaseCluster
from repro.workload import SimulationParameters


def run_technique(technique: str, transaction_count: int = 5, seed: int = 42):
    """Run a handful of update transactions on one technique."""
    params = SimulationParameters.small(server_count=3, item_count=500)
    cluster = ReplicatedDatabaseCluster(technique, params=params, seed=seed)
    cluster.start()

    waiters = []
    for index in range(transaction_count):
        program = cluster.workload.next_program(client=f"client-{index}")
        delegate = cluster.server_names()[index % len(cluster.server_names())]
        waiters.append(cluster.run_transaction(program, server=delegate))
    cluster.run(until=10_000.0)
    return cluster, [waiter.value for waiter in waiters if waiter.triggered]


def main() -> None:
    print("Group-safety quickstart — one row per replication technique\n")
    rows = []
    for technique in TECHNIQUES:
        cluster, results = run_technique(technique)
        committed = [result for result in results if result.committed]
        mean_rt = (sum(result.response_time for result in committed)
                   / len(committed)) if committed else 0.0
        level = safety_of_technique(technique)
        observed_levels = {classify_result(result).value
                           for result in committed}
        rows.append((technique, len(committed), len(results) - len(committed),
                     f"{mean_rt:.1f} ms", level.value,
                     ", ".join(sorted(observed_levels))))
    print(format_table(
        ("technique", "committed", "aborted", "mean response",
         "claimed safety", "observed guarantee"),
        rows))

    print("\nWhat each criterion means (from the paper):")
    for technique in TECHNIQUES:
        criterion = criterion_for(safety_of_technique(technique))
        print(f"\n  {technique}:")
        print(f"    {criterion.statement}")
        print(f"    durability relies on: {criterion.durability_relies_on}")
        print(f"    a transaction can be lost when: "
              f"{criterion.can_lose_transaction_when}")


if __name__ == "__main__":
    main()
