#!/usr/bin/env python3
"""Quickstart for the autobalance controller: no operator in the loop.

The example range-shards a Zipf-skewed keyspace across four replica groups
and attaches a ``RebalanceController``: a simulated process that watches
*windowed* per-shard load (the routing table's access counters decay every
window, so the signal tracks recent traffic, not all-time totals) and
triggers ``cluster.rebalance()`` when one shard's share of the window
crosses a threshold — with cooldowns and hysteresis so an oscillating
hotspot is damped instead of chased.

Mid-run the workload's Zipf ranking is rotated so the hot head jumps to the
middle of the keyspace — a hotspot shift no static map recovers from.  The
controller must repair both the initial skew and the shift on its own; the
identically seeded static run is the baseline.  It prints:

* committed throughput before the shift, in the repair window, and in the
  recovered steady state, for both runs,
* the controller's decision counters — including what it *declined* to do
  (below-threshold, cooldown, hysteresis skips),
* each controller-driven migration's copy/fence telemetry,
* the per-key commit audit: zero lost and zero duplicated commits.

Run it with::

    python examples/autobalance_quickstart.py
"""

from __future__ import annotations

from repro.experiments import (render_autobalance_report,
                               run_autobalance_experiment)


def main() -> None:
    print("Static map under a Zipf hotspot shift (no controller) ...")
    static = run_autobalance_experiment(controlled=False)
    print("Same seed with the autobalance controller attached ...\n")
    controlled = run_autobalance_experiment(controlled=True)

    print(render_autobalance_report(static, controlled))

    print()
    stats = controlled.controller_stats
    if stats is None or not stats.rebalances_triggered:
        print("The controller never triggered — see the report above.")
        return
    ratio = (controlled.recovered_tput / static.recovered_tput
             if static.recovered_tput else float("inf"))
    print(f"The controller repaired the shift by itself: "
          f"{stats.rebalances_triggered} rebalances, recovered committed "
          f"throughput {ratio:.1f}x the static map's.")


if __name__ == "__main__":
    main()
