#!/usr/bin/env python3
"""Quickstart for online rebalancing with the epoch-versioned routing table.

The example range-shards a Zipf-skewed keyspace across four replica groups —
so the hot head of the keyspace all lands on partition 0, which saturates —
then, mid-run and under sustained load, calls ``cluster.rebalance()``: the
hot shard is split at its access-weighted median and the head is live-
migrated (state-transfer copy, dual-write window, brief write fence,
force-logged epoch bump) to the least-loaded group.  It prints:

* committed throughput before / during / after the move, against the
  identically seeded static baseline,
* the migration protocol's own telemetry (copy sizes, fence duration,
  forwarded dual-writes, the new epoch),
* the per-key commit audit: zero lost and zero duplicated commits.

Run it with::

    python examples/rebalance_quickstart.py
"""

from __future__ import annotations

from repro.experiments import (render_rebalance_report,
                               run_rebalance_experiment)


def main() -> None:
    print("Static baseline (range sharding, Zipf skew 1.1, 150 tps offered)"
          " ...")
    static = run_rebalance_experiment(rebalance=False)
    print("Same seed, rebalancing the hot head mid-run ...\n")
    rebalanced = run_rebalance_experiment(rebalance=True)

    print(render_rebalance_report(static, rebalanced))

    migration = rebalanced.migration
    print()
    if migration is None or not migration.completed:
        print("The migration did not complete — see the report above.")
        return
    gain = rebalanced.after_tput / static.after_tput if static.after_tput \
        else float("inf")
    print(f"Moving {migration.key_range.width} hot keys off group "
          f"{migration.source_group} multiplied post-rebalance committed "
          f"throughput by {gain:.1f}x.")
    print(f"Routing epochs travelled: 0 -> {migration.epoch} "
          f"(split + migrate), "
          f"{rebalanced.wrong_epoch_retries} submissions retried while "
          f"ownership moved.")
    if rebalanced.audit_ok and static.audit_ok:
        print("Per-key commit audit: zero lost, zero duplicated commits.")
    else:
        print("Per-key commit audit FAILED:")
        for failure in (static.audit_failures +
                        rebalanced.audit_failures)[:10]:
            print(f"  - {failure}")


if __name__ == "__main__":
    main()
