"""The local database component (Sect. 2.2 of the paper).

Each server of the replicated database hosts one :class:`LocalDatabase`, which
bundles the logical item store, strict two-phase locking, the write-ahead log,
the buffer pool / disk-timing model and the testable-transaction registry.
The replication techniques of :mod:`repro.replication` are built on top of
this component and of the group-communication component
(:mod:`repro.gcs`).
"""

from .buffer import BufferPool
from .engine import LocalDatabase
from .errors import (DatabaseError, DeadlockError, InvalidTransactionState,
                     LockError, TransactionAborted, UnknownItemError)
from .items import Item, ItemStore, ItemVersion
from .locks import LockManager, LockMode
from .operations import (Operation, OperationType, TransactionProgram,
                         make_program, read, write)
from .recovery import install_checkpoint, redo_from_log
from .serializability import (CommittedTransaction, SerializabilityReport,
                              check_one_copy_serializability, has_cycle,
                              precedence_graph)
from .stable_storage import StableLog, StableStorage
from .testable import TestableTransactionRegistry
from .transaction import Transaction, TransactionStatus, WriteSetMessage
from .wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "LocalDatabase",
    "BufferPool",
    "ItemStore",
    "Item",
    "ItemVersion",
    "LockManager",
    "LockMode",
    "Operation",
    "OperationType",
    "TransactionProgram",
    "make_program",
    "read",
    "write",
    "Transaction",
    "TransactionStatus",
    "WriteSetMessage",
    "WriteAheadLog",
    "LogRecord",
    "LogRecordType",
    "StableStorage",
    "StableLog",
    "TestableTransactionRegistry",
    "redo_from_log",
    "install_checkpoint",
    "CommittedTransaction",
    "SerializabilityReport",
    "check_one_copy_serializability",
    "precedence_graph",
    "has_cycle",
    "DatabaseError",
    "TransactionAborted",
    "DeadlockError",
    "LockError",
    "UnknownItemError",
    "InvalidTransactionState",
]
