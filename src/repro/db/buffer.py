"""Buffer pool and disk timing model.

Table 4 of the paper models data access with three quantities: a buffer hit
ratio of 20 %, a read time of 4–12 ms, a write time of 4–12 ms, and 0.4 ms of
CPU per I/O operation.  The :class:`BufferPool` turns those numbers into
simulated time:

* :meth:`read_item` — charge CPU, then with probability ``1 - hit_ratio``
  occupy a disk for one read time;
* :meth:`write_item_sync` — same, for a synchronous (in-transaction) write;
* :meth:`write_item_async` — mark the item dirty and return immediately; the
  background write-behind flusher started with :meth:`start_write_behind`
  later performs the physical writes, outside any transaction boundary.

The asynchronous path is what the group-safe technique uses ("group-safe
replication basically allows all disk writes to be done asynchronously, thus
enabling optimisations like write caching", Sect. 5.1); the synchronous path
is what group-1-safe and lazy replication use on the delegate.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Timeout
from ..sim.resources import Gate


class BufferPool:
    """Probabilistic buffer model charging Table 4 I/O times.

    The pool holds at most ``max_dirty`` modified items waiting for their
    background write; once the limit is reached, :meth:`wait_for_space`
    blocks until the write-behind flusher has drained the backlog below the
    low watermark.  This back-pressure is what keeps the asynchronous-write
    optimisation of group-safe replication honest: deferring disk writes
    hides their latency, but it cannot create disk bandwidth — under
    overload, the apply stage stalls and response times grow, which is the
    high-load regime of the paper's Fig. 9.
    """

    def __init__(self, sim: Simulator, node: Node, hit_ratio: float = 0.2,
                 read_time_low: float = 4.0, read_time_high: float = 12.0,
                 write_time_low: float = 4.0, write_time_high: float = 12.0,
                 max_dirty: Optional[int] = None,
                 low_watermark: float = 0.75,
                 background_write_factor: float = 1.0,
                 name: str = "buffer") -> None:
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError(f"hit ratio out of range: {hit_ratio}")
        if max_dirty is not None and max_dirty < 1:
            raise ValueError("max_dirty must be positive (or None)")
        if background_write_factor <= 0:
            raise ValueError("background_write_factor must be positive")
        self.sim = sim
        self.node = node
        self.name = name
        self.hit_ratio = hit_ratio
        self.read_time_low = read_time_low
        self.read_time_high = read_time_high
        self.write_time_low = write_time_low
        self.write_time_high = write_time_high
        self.max_dirty = max_dirty
        self.low_watermark = low_watermark
        #: Disk-time factor applied to write-behind (background) writes.  The
        #: flusher sorts and coalesces adjacent pages ("writes of adjacent
        #: pages would also be scheduled together to maximise disk
        #: throughput", Sect. 5.1 of the paper), so a background write is
        #: cheaper than a random in-transaction write.
        self.background_write_factor = background_write_factor
        # Insertion-ordered so the flusher drains oldest pages first and
        # the drain order is independent of string hashing (a plain set
        # would make runs depend on PYTHONHASHSEED).
        self._dirty: Dict[str, None] = {}
        # Interned per-node stream handles (seeded by name only, so hoisting
        # them out of the per-I/O hot path is draw-exact).
        streams = sim.random
        self._hit_stream = streams.stream(f"{node.name}.buffer_hit")
        self._read_stream = streams.stream(f"{node.name}.disk_read")
        self._write_stream = streams.stream(f"{node.name}.disk_write")
        self._flusher_running = False
        self._space_gate = Gate(sim, opened=True, name=f"{name}.space")
        #: Statistics counters.
        self.read_hits = 0
        self.read_misses = 0
        self.sync_writes = 0
        self.async_writes = 0
        self.flushed_pages = 0
        self.throttle_events = 0

    # -- timing helpers ---------------------------------------------------------
    def _is_hit(self) -> bool:
        return self._hit_stream.random() < self.hit_ratio

    def _read_duration(self) -> float:
        return self._read_stream.uniform(self.read_time_low,
                                         self.read_time_high)

    def _write_duration(self) -> float:
        return self._write_stream.uniform(self.write_time_low,
                                          self.write_time_high)

    # -- reads ----------------------------------------------------------------------
    # The read/write generators below write ``cpu.use(...)`` / ``disk.use``
    # out inline (identical event schedule) — one generator object less per
    # I/O on the single hottest charge path of the database model.
    def read_item(self, key: str):
        """Generator: charge the cost of reading ``key``.

        ``LocalDatabase.read`` inlines this exact sequence on the
        transaction hot path; a change here must be mirrored there
        (``test_engine_read_matches_buffer_read_item`` pins the pair).
        """
        node = self.node
        cpu = node.cpu
        sim = self.sim
        obs = sim.obs
        span = None
        if obs is not None:
            span = obs.begin("buffer.read", category="disk",
                             track=f"server.{node.name}",
                             labels={"key": key})
        try:
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, node.cpu_time_per_io)
            finally:
                cpu.release(request)
            if self._hit_stream.random() < self.hit_ratio:
                self.read_hits += 1
                return
            self.read_misses += 1
            disk = node.disk
            duration = self._read_stream.uniform(self.read_time_low,
                                                 self.read_time_high)
            request = disk.request()
            yield request
            try:
                yield Timeout(sim, duration)
            finally:
                disk.release(request)
        finally:
            if span is not None:
                obs.end(span)

    # -- writes ----------------------------------------------------------------------
    def write_item_sync(self, key: str):
        """Generator: charge the cost of writing ``key`` inside the transaction."""
        self.sync_writes += 1
        node = self.node
        cpu = node.cpu
        sim = self.sim
        obs = sim.obs
        span = None
        if obs is not None:
            span = obs.begin("buffer.write", category="disk",
                             track=f"server.{node.name}",
                             labels={"key": key})
        try:
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, node.cpu_time_per_io)
            finally:
                cpu.release(request)
            if self._hit_stream.random() < self.hit_ratio:
                # The page is resident: the modification stays in the buffer
                # and will reach disk with a later flush, off the critical
                # path.
                self._mark_dirty(key)
                return
            disk = node.disk
            duration = self._write_stream.uniform(self.write_time_low,
                                                  self.write_time_high)
            request = disk.request()
            yield request
            try:
                yield Timeout(sim, duration)
            finally:
                disk.release(request)
        finally:
            if span is not None:
                obs.end(span)

    def write_item_async(self, key: str) -> None:
        """Mark ``key`` dirty; the physical write happens in the background."""
        self.async_writes += 1
        self._mark_dirty(key)

    def _mark_dirty(self, key: str) -> None:
        self._dirty[key] = None
        if self.max_dirty is not None and len(self._dirty) >= self.max_dirty:
            if self._space_gate.is_open:
                self.throttle_events += 1
            self._space_gate.close()

    # -- back-pressure ------------------------------------------------------------------
    @property
    def has_space(self) -> bool:
        """True while the dirty backlog is below its limit."""
        return self.max_dirty is None or len(self._dirty) < self.max_dirty

    def wait_for_space(self):
        """Event that fires once the dirty backlog is below the low watermark."""
        return self._space_gate.wait()

    def _maybe_reopen(self) -> None:
        if self.max_dirty is None or self._space_gate.is_open:
            return
        if len(self._dirty) <= self.max_dirty * self.low_watermark:
            self._space_gate.open()

    # -- background flushing ---------------------------------------------------------
    @property
    def dirty_count(self) -> int:
        """Number of items waiting for a background write."""
        return len(self._dirty)

    def flush_some(self, max_items: Optional[int] = None):
        """Generator: physically write up to ``max_items`` dirty items."""
        written = 0
        node = self.node
        cpu = node.cpu
        disk = node.disk
        sim = self.sim
        dirty = self._dirty
        while dirty and (max_items is None or written < max_items):
            key = next(iter(dirty))
            dirty.pop(key, None)
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, node.cpu_time_per_io)
            finally:
                cpu.release(request)
            duration = self.background_write_factor * self._write_duration()
            request = disk.request()
            yield request
            try:
                yield Timeout(sim, duration)
            finally:
                disk.release(request)
            self.flushed_pages += 1
            written += 1
            self._maybe_reopen()

    def start_write_behind(self, interval: float = 50.0,
                           batch: Optional[int] = None,
                           workers: Optional[int] = None) -> None:
        """Start the background flusher processes on the hosting node.

        ``workers`` flusher processes (default: one per disk of the node) poll
        every ``interval`` milliseconds and write the dirty items (up to
        ``batch`` each) to disk.  The processes are volatile: they die with
        the node on a crash and must be restarted after recovery.
        """
        if self._flusher_running:
            return
        self._flusher_running = True
        worker_count = workers if workers is not None else self.node.disk.capacity

        def flusher():
            try:
                while True:
                    yield self.sim.timeout(interval)
                    yield from self.flush_some(batch)
            finally:
                self._flusher_running = False

        for _index in range(max(1, worker_count)):
            self.node.spawn(flusher(), name=f"{self.name}.write_behind")

    # -- crash handling ------------------------------------------------------------------
    def lose_volatile(self) -> None:
        """Forget dirty state (the buffer content dies with the node)."""
        self._dirty.clear()
        self._flusher_running = False
        self._space_gate.open()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<BufferPool {self.node.name} dirty={len(self._dirty)} "
                f"hits={self.read_hits} misses={self.read_misses}>")
