"""Logical database state: items, versions and the item store.

The database of the paper's simulation is a flat collection of 10'000 items
(Table 4).  Each item carries a *version*, incremented every time a committed
transaction overwrites it.  Versions serve two purposes:

* the database state machine certification test compares the versions a
  transaction read against the current versions to detect conflicts with
  concurrently committed transactions;
* the serialisability checker and the experiment audits use versions to
  reconstruct which committed write produced the value that is visible.

The :class:`ItemStore` is purely *logical* (no simulated time is consumed by
reading or writing it): the time cost of touching an item lives in the buffer
pool and disk models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class ItemVersion:
    """A single committed version of an item."""

    value: object
    version: int
    writer: Optional[str] = None          # transaction id that wrote it
    commit_order: int = 0                 # global certification order


@dataclass
class Item:
    """One logical database item and its committed history."""

    key: str
    value: object = 0
    version: int = 0
    writer: Optional[str] = None
    commit_order: int = 0
    history: List[ItemVersion] = field(default_factory=list)

    def install(self, value: object, writer: Optional[str],
                commit_order: int) -> None:
        """Install a new committed version of the item.

        Installation follows the Thomas write rule: a write belonging to an
        *older* commit order than the currently installed one is skipped, so
        that physically out-of-order application (several apply processes
        racing on the disks) still converges to the state of the logical
        total order.
        """
        if commit_order < self.commit_order:
            return
        self.history.append(ItemVersion(value=self.value, version=self.version,
                                        writer=self.writer,
                                        commit_order=self.commit_order))
        self.value = value
        self.version += 1
        self.writer = writer
        self.commit_order = commit_order


class ItemStore:
    """A named collection of :class:`Item` objects."""

    def __init__(self, item_count: int = 0, prefix: str = "item") -> None:
        self._items: Dict[str, Item] = {}
        #: Bound ``dict.get`` over the item map — the hot lookup handle for
        #: per-operation access (returns None for unknown keys).  The dict is
        #: only ever mutated in place, so the binding stays valid.
        self.lookup = self._items.get
        self.prefix = prefix
        for index in range(item_count):
            self.create(f"{prefix}-{index}")

    # -- item management ----------------------------------------------------
    def create(self, key: str, value: object = 0) -> Item:
        """Create a new item (version 0) and return it."""
        if key in self._items:
            raise ValueError(f"item {key!r} already exists")
        item = Item(key=key, value=value)
        self._items[key] = item
        return item

    def get(self, key: str) -> Item:
        """Return the item called ``key``; raise ``KeyError`` if unknown."""
        return self._items[key]

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        # repro: allow(ordering-hazard): dict preserves creation order, which is the contract
        return iter(self._items.values())

    def keys(self) -> List[str]:
        """All item keys in creation order."""
        return list(self._items)

    # -- snapshots -----------------------------------------------------------
    def snapshot(self) -> Dict[str, ItemVersion]:
        """Return a point-in-time copy of every item's committed state."""
        return {
            key: ItemVersion(value=item.value, version=item.version,
                             writer=item.writer, commit_order=item.commit_order)
            for key, item in self._items.items()
        }

    def restore(self, snapshot: Dict[str, ItemVersion]) -> None:
        """Replace the store's contents with ``snapshot`` (state transfer)."""
        for key, version in snapshot.items():
            if key not in self._items:
                self.create(key)
            item = self._items[key]
            item.value = version.value
            item.version = version.version
            item.writer = version.writer
            item.commit_order = version.commit_order
            item.history = []

    def versions(self) -> Dict[str, int]:
        """Mapping of item key to current committed version number."""
        return {key: item.version for key, item in self._items.items()}
