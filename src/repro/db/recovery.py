"""Crash recovery of the local database: redo from the write-ahead log.

The durable state of a server is the flushed prefix of its write-ahead log.
Recovery therefore resets the in-memory item store and *redoes* every durable
commit record in log-sequence order.  Redo is idempotent (the Thomas write
rule in :meth:`~repro.db.items.Item.install` skips out-of-date installs), so
repeating recovery — for instance because a server crashes again while
recovering — is harmless.

This module also provides the checkpoint-based alternative used by the
*state-transfer* recovery of classical group communication (Sect. 2.3 of the
paper): :func:`install_checkpoint` replaces the local state wholesale with a
snapshot taken on another replica.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .items import ItemStore, ItemVersion
from .wal import LogRecord, LogRecordType


def redo_from_log(items: ItemStore, records: Iterable[LogRecord]) -> int:
    """Reset ``items`` and redo every durable commit record.

    Returns the number of committed transactions that were redone.  Abort and
    checkpoint records are ignored (redo-only logging: nothing was installed
    before the commit record reached the log, so there is nothing to undo).
    """
    _reset(items)
    redone = 0
    for record in records:
        if record.record_type is not LogRecordType.COMMIT:
            continue
        commit_order = record.commit_order if record.commit_order is not None \
            else redone + 1
        for key, value in record.payload.items():
            if key not in items:
                items.create(key)
            items.get(key).install(value, record.txn_id, commit_order)
        redone += 1
    return redone


def install_checkpoint(items: ItemStore,
                       checkpoint: Dict[str, ItemVersion]) -> None:
    """Replace the local item state with ``checkpoint`` (state transfer)."""
    _reset(items)
    items.restore(checkpoint)


def committed_in_log(records: Iterable[LogRecord]) -> List[str]:
    """Transaction ids with a commit record among ``records``, in order."""
    return [record.txn_id for record in records
            if record.record_type is LogRecordType.COMMIT]


def _reset(items: ItemStore) -> None:
    """Reset every item to its initial (version 0) state."""
    for item in items:
        item.value = 0
        item.version = 0
        item.writer = None
        item.commit_order = 0
        item.history = []
