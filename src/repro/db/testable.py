"""Testable transactions: exactly-once commits across message replays.

Section 2.2 of the paper assumes that the local database "has a mechanism to
detect and handle transactions that are submitted multiple times, e.g.,
testable transactions".  The mechanism matters for the end-to-end atomic
broadcast of Sect. 4: after a crash the group-communication component replays
every message whose processing was not acknowledged, so the same transaction
may be handed to the database twice; the registry below guarantees that it is
*committed* at most once while still letting the replay be acknowledged.

The registry lives on stable storage (it records the *outcome* of a
transaction, which is exactly what must survive a crash for the test to be
meaningful).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..network.node import Node
from .stable_storage import StableStorage


class TestableTransactionRegistry:
    """Crash-surviving record of transaction outcomes on one server."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, node: Node, name: str = "testable") -> None:
        self.node = node
        self._outcomes: StableStorage = node.register_stable(
            f"{name}.outcomes", StableStorage(f"{node.name}.{name}"))
        #: Number of duplicate submissions detected (statistics / tests).
        self.duplicates_detected = 0

    def record_commit(self, txn_id: str, commit_order: Optional[int] = None) -> None:
        """Durably record that ``txn_id`` committed."""
        self._outcomes.put(txn_id, {"outcome": "commit",
                                    "commit_order": commit_order})

    def record_abort(self, txn_id: str, reason: str = "aborted") -> None:
        """Durably record that ``txn_id`` aborted."""
        self._outcomes.put(txn_id, {"outcome": "abort", "reason": reason})

    def outcome(self, txn_id: str) -> Optional[str]:
        """Return ``"commit"``, ``"abort"`` or ``None`` if never decided here."""
        entry = self._outcomes.get(txn_id)
        return entry["outcome"] if entry else None

    def has_committed(self, txn_id: str) -> bool:
        """True if this server already committed ``txn_id``."""
        return self.outcome(txn_id) == "commit"

    def has_decided(self, txn_id: str) -> bool:
        """True if this server already decided (commit or abort) ``txn_id``."""
        return self.outcome(txn_id) is not None

    def check_duplicate(self, txn_id: str) -> bool:
        """Return True (and count it) if ``txn_id`` was already decided."""
        if self.has_decided(txn_id):
            self.duplicates_detected += 1
            return True
        return False

    def committed_ids(self) -> List[str]:
        """All committed transaction ids on this server, in sorted order."""
        return [txn_id for txn_id in sorted(self._outcomes.keys())
                if self.has_committed(txn_id)]

    def as_dict(self) -> Dict[str, str]:
        """Mapping txn id -> outcome, for audits and tests."""
        return {txn_id: self._outcomes.get(txn_id)["outcome"]
                for txn_id in sorted(self._outcomes.keys())}
