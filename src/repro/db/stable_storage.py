"""Stable storage: the part of a server's state that survives crashes.

The distinction between volatile memory and stable storage is what the whole
paper turns on: 2-safety relies on stable storage for durability, group-safety
relies on the *group* instead.  :class:`StableStorage` is a simple key/value
abstraction registered with the hosting :class:`~repro.network.node.Node` so
that a crash wipes everything *except* these objects.

Writing to stable storage is modelled in two steps so that the timing model
stays explicit:

* the *logical* mutation (``put`` / ``append``) is free of simulated time;
* the *physical* disk occupation is charged by the caller through the node's
  disk resource (the write-ahead log and the buffer pool do this), because
  how and when the physical write happens is precisely what differs between
  the replication techniques.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional


class StableStorage:
    """Crash-surviving key/value store of one server."""

    def __init__(self, name: str = "stable") -> None:
        self.name = name
        self._data: Dict[str, Any] = {}
        #: Number of logical writes, for statistics and tests.
        self.write_count = 0

    def put(self, key: str, value: Any) -> None:
        """Durably associate ``value`` with ``key``."""
        self._data[key] = value
        self.write_count += 1

    def get(self, key: str, default: Any = None) -> Any:
        """Return the value stored under ``key`` (or ``default``)."""
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def delete(self, key: str) -> None:
        """Remove ``key`` if present."""
        self._data.pop(key, None)

    def keys(self) -> List[str]:
        """All stored keys."""
        return list(self._data)

    def clear(self) -> None:
        """Erase the storage (used only by experiment setup, never by crashes)."""
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<StableStorage {self.name!r} entries={len(self._data)}>"


class StableLog:
    """An append-only crash-surviving sequence (the shape WALs want)."""

    def __init__(self, name: str = "log") -> None:
        self.name = name
        self._entries: List[Any] = []

    def append(self, entry: Any) -> int:
        """Append ``entry`` and return its log sequence number (0-based)."""
        self._entries.append(entry)
        return len(self._entries) - 1

    def entries(self, start: int = 0, end: Optional[int] = None) -> List[Any]:
        """Return entries ``start:end`` (a copy)."""
        return list(self._entries[start:end])

    def __iter__(self) -> Iterator[Any]:
        return iter(list(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def truncate(self, up_to: int) -> None:
        """Discard entries before index ``up_to`` (log compaction)."""
        if up_to <= 0:
            return
        del self._entries[:up_to]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<StableLog {self.name!r} entries={len(self._entries)}>"
