"""Runtime transaction objects.

A :class:`Transaction` is the server-side incarnation of a
:class:`~repro.db.operations.TransactionProgram`: it records what was read
(and at which version), what is to be written, and moves through the usual
lifecycle ``ACTIVE -> (BROADCAST ->) COMMITTED | ABORTED``.

The read-set with versions plus the write-set is exactly the information the
database state machine broadcasts and certifies (Sect. 2.1 of the paper); the
object is therefore also the payload carried by the atomic broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from .errors import InvalidTransactionState
from .operations import TransactionProgram


class TransactionStatus(Enum):
    """Lifecycle states of a transaction replica-side."""

    ACTIVE = "active"
    BROADCAST = "broadcast"       # sent to the group, waiting for delivery
    COMMITTED = "committed"
    ABORTED = "aborted"


#: State transitions allowed by :meth:`Transaction.set_status`.
_ALLOWED_TRANSITIONS = {
    TransactionStatus.ACTIVE: {TransactionStatus.BROADCAST,
                               TransactionStatus.COMMITTED,
                               TransactionStatus.ABORTED},
    TransactionStatus.BROADCAST: {TransactionStatus.COMMITTED,
                                  TransactionStatus.ABORTED},
    TransactionStatus.COMMITTED: set(),
    TransactionStatus.ABORTED: set(),
}


@dataclass
class Transaction:
    """A transaction being executed on behalf of a client.

    Attributes
    ----------
    txn_id:
        Globally unique identifier (``"<delegate>:<program id>"`` by
        convention), used by the testable-transaction mechanism to guarantee
        exactly-once commits across message replays.
    program:
        The static operation list submitted by the client.
    delegate:
        Name of the server acting as delegate for this transaction.
    read_versions:
        Mapping item key -> version observed during the read phase; input to
        the certification test.
    write_values:
        Mapping item key -> value to install on commit (deferred updates).
    """

    txn_id: str
    program: TransactionProgram
    delegate: str
    status: TransactionStatus = TransactionStatus.ACTIVE
    read_versions: Dict[str, int] = field(default_factory=dict)
    write_values: Dict[str, object] = field(default_factory=dict)
    start_time: Optional[float] = None
    broadcast_time: Optional[float] = None
    decision_time: Optional[float] = None
    response_time: Optional[float] = None
    commit_order: Optional[int] = None
    abort_reason: Optional[str] = None

    # -- read / write bookkeeping ------------------------------------------------
    def record_read(self, key: str, version: int) -> None:
        """Record that the read phase observed ``key`` at ``version``."""
        if key not in self.read_versions:
            self.read_versions[key] = version

    def record_write(self, key: str, value: object) -> None:
        """Record a deferred write of ``value`` to ``key``."""
        self.write_values[key] = value

    @property
    def read_set(self) -> List[str]:
        """Keys read, in first-read order."""
        return list(self.read_versions)

    @property
    def write_set(self) -> List[str]:
        """Keys written, in first-write order."""
        return list(self.write_values)

    @property
    def is_update(self) -> bool:
        """True if the transaction has at least one write."""
        return bool(self.write_values) or not self.program.is_read_only

    # -- lifecycle --------------------------------------------------------------
    def set_status(self, status: TransactionStatus) -> None:
        """Move the transaction to ``status``, validating the transition."""
        if status is self.status:
            return
        if status not in _ALLOWED_TRANSITIONS[self.status]:
            raise InvalidTransactionState(
                f"{self.txn_id}: illegal transition {self.status.value} -> "
                f"{status.value}")
        self.status = status

    @property
    def is_terminated(self) -> bool:
        """True once the transaction committed or aborted."""
        return self.status in (TransactionStatus.COMMITTED,
                               TransactionStatus.ABORTED)

    @property
    def committed(self) -> bool:
        """True if the transaction reached ``COMMITTED``."""
        return self.status is TransactionStatus.COMMITTED

    @property
    def aborted(self) -> bool:
        """True if the transaction reached ``ABORTED``."""
        return self.status is TransactionStatus.ABORTED

    # -- certification payload -----------------------------------------------------
    def certification_payload(self) -> "WriteSetMessage":
        """Build the message payload broadcast to the group."""
        return WriteSetMessage(txn_id=self.txn_id, delegate=self.delegate,
                               read_versions=dict(self.read_versions),
                               write_values=dict(self.write_values),
                               program_id=self.program.program_id,
                               client=self.program.client)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Transaction {self.txn_id} {self.status.value}>"


@dataclass(frozen=True)
class WriteSetMessage:
    """The read-versions + write-set payload carried by the atomic broadcast.

    This is what every server certifies and applies in delivery order.  It is
    immutable because the same payload object is shared by all simulated
    servers (the simulated network does not deep-copy messages).
    """

    txn_id: str
    delegate: str
    read_versions: Dict[str, int]
    write_values: Dict[str, object]
    program_id: int
    client: str = "client"

    @property
    def write_set(self) -> List[str]:
        """Keys written by the transaction."""
        return list(self.write_values)

    @property
    def read_set(self) -> List[str]:
        """Keys read (with recorded versions) by the transaction."""
        return list(self.read_versions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"WriteSetMessage({self.txn_id} reads={len(self.read_versions)} "
                f"writes={len(self.write_values)})")
