"""The local database engine hosted on one server.

:class:`LocalDatabase` assembles the pieces of the database component of the
paper's architecture (Fig. 1 / Sect. 2.2): the logical item store, the lock
manager, the write-ahead log, the buffer pool and the testable-transaction
registry, all bound to one :class:`~repro.network.node.Node`.

It deliberately exposes *mechanisms*, not *policy*: whether writes are applied
synchronously or buffered, whether the commit record is flushed before or
after the client is answered, and whether conflicts are handled by locking or
by certification are decisions made by the replication technique built on top
(``repro.replication``), because those decisions are precisely what
distinguishes 1-safe, group-safe, group-1-safe and 2-safe replication.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional

from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Timeout
from .buffer import BufferPool
from .errors import TransactionAborted, UnknownItemError
from .items import ItemStore
from .locks import LockManager, LockMode
from .operations import Operation, TransactionProgram
from .recovery import redo_from_log
from .testable import TestableTransactionRegistry
from .transaction import Transaction, TransactionStatus, WriteSetMessage
from .wal import WriteAheadLog

_local_txn_ids = itertools.count(1)


class LocalDatabase:
    """One server's local database component."""

    def __init__(self, sim: Simulator, node: Node, item_count: int = 0,
                 hit_ratio: float = 0.2,
                 read_time_low: float = 4.0, read_time_high: float = 12.0,
                 write_time_low: float = 4.0, write_time_high: float = 12.0,
                 buffer_max_dirty: Optional[int] = None,
                 background_write_factor: float = 1.0,
                 existing_items: Optional[ItemStore] = None) -> None:
        self.sim = sim
        self.node = node
        self.items = existing_items if existing_items is not None \
            else ItemStore(item_count)
        self.locks = LockManager(sim, name=f"{node.name}.locks")
        self.wal = WriteAheadLog(sim, node, write_time_low=write_time_low,
                                 write_time_high=write_time_high)
        self.buffer = BufferPool(sim, node, hit_ratio=hit_ratio,
                                 read_time_low=read_time_low,
                                 read_time_high=read_time_high,
                                 write_time_low=write_time_low,
                                 write_time_high=write_time_high,
                                 max_dirty=buffer_max_dirty,
                                 background_write_factor=background_write_factor)
        self.testable = TestableTransactionRegistry(node)
        #: Monotonic counter of certified commits (the logical total order
        #: position at which each commit was installed on this copy).
        self.commit_counter = 0
        #: Statistics.
        self.committed_count = 0
        self.aborted_count = 0
        self.certification_aborts = 0
        node.add_listener(self._on_node_event)

    # ------------------------------------------------------------------ begin
    def begin(self, program: TransactionProgram, delegate: Optional[str] = None,
              txn_id: Optional[str] = None) -> Transaction:
        """Create the runtime transaction for ``program`` on this server."""
        delegate_name = delegate or self.node.name
        identifier = txn_id or f"{delegate_name}:{program.program_id}"
        transaction = Transaction(txn_id=identifier, program=program,
                                  delegate=delegate_name,
                                  start_time=self.sim.now)
        return transaction

    # ------------------------------------------------------------- read / write
    def read(self, transaction: Transaction, key: str, use_lock: bool = False):
        """Generator: read ``key``, recording its version in the read set.

        With ``use_lock`` the read takes a shared lock first (2PL, used by the
        lazy technique); without it the read is an unlocked snapshot read whose
        version is later validated by certification (database state machine).
        Returns the item value.
        """
        item = self.items.lookup(key)
        if item is None:
            raise UnknownItemError(key)
        if use_lock:
            grant = self.locks.acquire(transaction.txn_id, key, LockMode.SHARED)
            yield grant
        # Inlined self.buffer.read_item(key) — identical charges and stream
        # draws, one generator object less on the per-operation read path
        # (the single hottest charge sequence of transaction execution).
        # MUST stay in lockstep with BufferPool.read_item (still used by the
        # migration copy path); test_engine_read_matches_buffer_read_item
        # pins the two implementations to identical accounting and timing.
        buffer = self.buffer
        node = buffer.node
        cpu = node.cpu
        sim = self.sim
        obs = sim.obs
        span = None
        if obs is not None:
            span = obs.begin("db.read", category="disk",
                             track=f"server.{node.name}",
                             parent=("txn", transaction.txn_id),
                             labels={"key": key})
        try:
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, node.cpu_time_per_io)
            finally:
                cpu.release(request)
            if buffer._hit_stream.random() < buffer.hit_ratio:
                buffer.read_hits += 1
            else:
                buffer.read_misses += 1
                duration = buffer._read_stream.uniform(buffer.read_time_low,
                                                       buffer.read_time_high)
                disk = node.disk
                request = disk.request()
                yield request
                try:
                    yield Timeout(sim, duration)
                finally:
                    disk.release(request)
        finally:
            if span is not None:
                obs.end(span)
        # The version is read after the I/O completed (it may have advanced
        # while the read occupied the disk) — only the lookup is hoisted.
        transaction.record_read(key, item.version)
        return item.value

    def stage_write(self, transaction: Transaction, key: str,
                    value: object) -> None:
        """Record a deferred write (no simulated time, no physical I/O)."""
        if self.items.lookup(key) is None:
            raise UnknownItemError(key)
        transaction.record_write(key, value)

    def write_locked(self, transaction: Transaction, key: str, value: object):
        """Generator: 2PL write — exclusive lock, buffer write, deferred install.

        Used by the lazy technique, which executes its updates under local
        locking before commit.  The physical write is charged synchronously;
        the logical install still happens at commit time so that aborts need
        no undo.
        """
        if key not in self.items:
            raise UnknownItemError(key)
        grant = self.locks.acquire(transaction.txn_id, key, LockMode.EXCLUSIVE)
        yield grant
        obs = self.sim.obs
        span = None
        if obs is not None:
            span = obs.begin("db.write", category="disk",
                             track=f"server.{self.node.name}",
                             parent=("txn", transaction.txn_id),
                             labels={"key": key})
        try:
            yield from self.buffer.write_item_sync(key)
        finally:
            if span is not None:
                obs.end(span)
        transaction.record_write(key, value)

    def execute_operation(self, transaction: Transaction, operation: Operation,
                          use_locks: bool = False):
        """Generator: run one program operation (read or deferred write)."""
        if operation.is_read:
            value = yield from self.read(transaction, operation.key,
                                         use_lock=use_locks)
            return value
        if use_locks:
            yield from self.write_locked(transaction, operation.key,
                                         operation.value)
        else:
            self.stage_write(transaction, operation.key, operation.value)
        return None

    # ---------------------------------------------------------------- certification
    def certify(self, payload: WriteSetMessage) -> bool:
        """Deterministic certification test of the database state machine.

        A transaction passes certification iff none of the items it read has
        been overwritten (its recorded version is still current).  Because all
        servers apply committed write sets in the same total order before
        certifying the next message, the outcome is identical everywhere —
        this is what makes the technique *non-voting*.
        """
        for key, version in payload.read_versions.items():
            if key not in self.items:
                return False
            if self.items.get(key).version != version:
                return False
        return True

    def install_writes(self, payload: WriteSetMessage,
                       commit_order: Optional[int] = None) -> int:
        """Logically install a certified write set and bump item versions.

        Returns the commit order assigned on this copy.  The physical disk
        work is charged separately (:meth:`apply_physical_writes`), which is
        what lets the replication techniques choose between synchronous and
        asynchronous disk writes without affecting the logical state.
        """
        if commit_order is None:
            self.commit_counter += 1
            commit_order = self.commit_counter
        else:
            self.commit_counter = max(self.commit_counter, commit_order)
        for key, value in payload.write_values.items():
            if key not in self.items:
                self.items.create(key)
            self.items.get(key).install(value, payload.txn_id, commit_order)
        return commit_order

    def apply_physical_writes(self, keys: Iterable[str], synchronous: bool):
        """Generator: charge the disk/CPU cost of writing ``keys``.

        ``synchronous=True`` performs the buffer-pool write inside the caller
        (in-transaction, group-1-safe / lazy delegate); ``synchronous=False``
        only marks the items dirty for the write-behind flusher (group-safe).
        """
        for key in keys:
            if synchronous:
                yield from self.buffer.write_item_sync(key)
            else:
                self.buffer.write_item_async(key)

    # ------------------------------------------------------------------ logging
    def log_commit(self, transaction_or_payload, commit_order: Optional[int],
                   synchronous: bool):
        """Generator: append (and optionally flush) the commit record."""
        txn_id, writes = _id_and_writes(transaction_or_payload)
        self.wal.append_commit(txn_id, writes, commit_order=commit_order)
        if synchronous:
            yield from self.wal.flush()

    def log_abort(self, transaction_or_payload, synchronous: bool = False):
        """Generator: append (and optionally flush) an abort record."""
        txn_id, _writes = _id_and_writes(transaction_or_payload)
        self.wal.append_abort(txn_id)
        if synchronous:
            yield from self.wal.flush()

    # ------------------------------------------------------------------ finalisation
    def finalize_commit(self, transaction: Transaction,
                        commit_order: Optional[int] = None) -> None:
        """Mark ``transaction`` committed locally and release its locks."""
        transaction.commit_order = commit_order
        transaction.set_status(TransactionStatus.COMMITTED)
        transaction.decision_time = self.sim.now
        self.testable.record_commit(transaction.txn_id, commit_order)
        self.locks.release_all(transaction.txn_id)
        self.committed_count += 1

    def finalize_abort(self, transaction: Transaction, reason: str) -> None:
        """Mark ``transaction`` aborted locally and release its locks."""
        transaction.abort_reason = reason
        transaction.set_status(TransactionStatus.ABORTED)
        transaction.decision_time = self.sim.now
        self.testable.record_abort(transaction.txn_id, reason)
        self.locks.release_all(transaction.txn_id)
        self.aborted_count += 1
        if reason == "certification":
            self.certification_aborts += 1

    # ------------------------------------------------------------------ recovery
    def recover(self) -> int:
        """Rebuild the in-memory state from stable storage after a crash.

        The durable truth is the flushed write-ahead log: the item store is
        reset to its initial state and every durable commit record is redone
        in log order.  Returns the number of transactions redone.
        """
        redone = redo_from_log(self.items, self.wal.stable_records())
        self.commit_counter = max(
            [record.commit_order or 0 for record in self.wal.stable_records()] or [0])
        return redone

    def logged_transactions(self) -> List[str]:
        """Transaction ids whose commit record is durable on this server."""
        return self.wal.committed_transactions()

    # -- gray failures ------------------------------------------------------------
    def degrade_disk(self, factor: float) -> None:
        """Inflate this server's WAL flush times by ``factor`` (see
        :meth:`repro.db.wal.WriteAheadLog.degrade_disk`)."""
        self.wal.degrade_disk(factor)

    def restore_disk(self) -> None:
        """End a :meth:`degrade_disk` episode."""
        self.wal.restore_disk()

    # ------------------------------------------------------------------ crash hook
    def _on_node_event(self, node: Node, event: str) -> None:
        if event == "crash":
            self.wal.lose_volatile()
            self.buffer.lose_volatile()
            self.locks = LockManager(self.sim, name=f"{node.name}.locks")

    # ------------------------------------------------------------------ queries
    def value_of(self, key: str) -> object:
        """Current committed value of ``key`` (logical read, no timing)."""
        if key not in self.items:
            raise UnknownItemError(key)
        return self.items.get(key).value

    def version_of(self, key: str) -> int:
        """Current committed version of ``key``."""
        if key not in self.items:
            raise UnknownItemError(key)
        return self.items.get(key).version

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<LocalDatabase {self.node.name} items={len(self.items)} "
                f"committed={self.committed_count}>")


def _id_and_writes(transaction_or_payload) -> tuple:
    """Accept either a Transaction or a WriteSetMessage and normalise."""
    if isinstance(transaction_or_payload, Transaction):
        return (transaction_or_payload.txn_id,
                dict(transaction_or_payload.write_values))
    if isinstance(transaction_or_payload, WriteSetMessage):
        return (transaction_or_payload.txn_id,
                dict(transaction_or_payload.write_values))
    raise TypeError(
        f"expected Transaction or WriteSetMessage, got "
        f"{type(transaction_or_payload).__name__}")
