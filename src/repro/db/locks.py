"""Strict two-phase locking with deadlock detection.

The lock manager implements the local concurrency control mentioned in
Sect. 2.2 of the paper ("the database component ... enforces the ACID
properties (in particular serialisability) locally").  It is used directly by
the lazy replication technique, whose delegate executes transactions under
ordinary 2PL, and by tests that exercise the local database in isolation.
The group-communication techniques use certification instead (deferred
updates), so they only take short apply-time latches.

Deadlocks are detected by cycle search in the waits-for graph; the youngest
transaction in the cycle is chosen as the victim.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from ..sim.engine import Simulator
from ..sim.events import Event
from .errors import DeadlockError, LockError


class LockMode(Enum):
    """Lock modes: shared for reads, exclusive for writes."""

    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    """Classic S/X compatibility matrix."""
    return held is LockMode.SHARED and requested is LockMode.SHARED


@dataclass
class _LockRequest:
    owner: str
    mode: LockMode
    event: Event
    granted: bool = False


@dataclass
class _LockEntry:
    """All holders and waiters for one lockable key."""

    holders: "OrderedDict[str, LockMode]" = field(default_factory=OrderedDict)
    queue: List[_LockRequest] = field(default_factory=list)


class LockManager:
    """A per-server lock table with FIFO queuing and deadlock detection."""

    def __init__(self, sim: Simulator, name: str = "locks") -> None:
        self.sim = sim
        self.name = name
        self._table: Dict[str, _LockEntry] = {}
        self._waits_for: Dict[str, Set[str]] = {}
        #: transaction id -> arrival order, used to pick deadlock victims.
        self._ages: Dict[str, int] = {}
        self._age_counter = 0
        #: Number of deadlocks resolved, for statistics.
        self.deadlock_count = 0

    # -- public API -------------------------------------------------------------
    def acquire(self, owner: str, key: str, mode: LockMode) -> Event:
        """Request ``mode`` on ``key`` for transaction ``owner``.

        Returns an event that fires when the lock is granted.  If granting
        would create a deadlock, the *youngest* transaction in the cycle is
        aborted: its pending request event fails with :class:`DeadlockError`.
        Lock upgrades (S already held, X requested) are supported.
        """
        if owner not in self._ages:
            self._age_counter += 1
            self._ages[owner] = self._age_counter

        entry = self._table.setdefault(key, _LockEntry())
        event = Event(self.sim)
        request = _LockRequest(owner=owner, mode=mode, event=event)

        if self._can_grant(entry, request):
            self._grant(entry, request)
            return event

        entry.queue.append(request)
        self._rebuild_waits_for()
        victim = self._find_deadlock_victim()
        if victim is not None:
            self.deadlock_count += 1
            self._abort_waiter(victim)
        return event

    def release_all(self, owner: str) -> None:
        """Release every lock held or requested by ``owner``."""
        for key in list(self._table):
            entry = self._table[key]
            entry.holders.pop(owner, None)
            entry.queue = [request for request in entry.queue
                           if request.owner != owner]
            self._promote_waiters(entry)
            if not entry.holders and not entry.queue:
                del self._table[key]
        self._ages.pop(owner, None)
        self._rebuild_waits_for()

    def holders(self, key: str) -> Dict[str, LockMode]:
        """Mapping of transaction id -> mode for current holders of ``key``."""
        entry = self._table.get(key)
        return dict(entry.holders) if entry else {}

    def waiting(self, key: str) -> List[str]:
        """Transaction ids queued (not yet granted) on ``key``."""
        entry = self._table.get(key)
        return [request.owner for request in entry.queue] if entry else []

    def holds(self, owner: str, key: str, mode: Optional[LockMode] = None) -> bool:
        """True if ``owner`` currently holds ``key`` (in ``mode`` if given)."""
        held = self.holders(key).get(owner)
        if held is None:
            return False
        return mode is None or held is mode or held is LockMode.EXCLUSIVE

    # -- grant logic ----------------------------------------------------------------
    def _can_grant(self, entry: _LockEntry, request: _LockRequest) -> bool:
        other_holders = {owner: mode for owner, mode in entry.holders.items()
                         if owner != request.owner}
        held_by_self = entry.holders.get(request.owner)
        if held_by_self is LockMode.EXCLUSIVE:
            return True
        if held_by_self is LockMode.SHARED and request.mode is LockMode.SHARED:
            return True
        # Upgrade or fresh grant: every *other* holder must be compatible, and
        # FIFO fairness requires no earlier incompatible waiter (unless this
        # is an upgrade, which jumps the queue to avoid the classic upgrade
        # deadlock with queued X requests of the same transaction).
        # repro: allow(ordering-hazard): all-must-be-compatible scan, order-free
        for mode in other_holders.values():
            if not _compatible(mode, request.mode):
                return False
        if held_by_self is None:
            for waiting in entry.queue:
                if waiting is request:
                    break
                if not _compatible(waiting.mode, request.mode) or \
                        not _compatible(request.mode, waiting.mode):
                    return False
        return True

    def _grant(self, entry: _LockEntry, request: _LockRequest) -> None:
        current = entry.holders.get(request.owner)
        if current is None or request.mode is LockMode.EXCLUSIVE:
            entry.holders[request.owner] = request.mode
        request.granted = True
        if not request.event.triggered:
            request.event.succeed(request.mode)

    def _promote_waiters(self, entry: _LockEntry) -> None:
        made_progress = True
        while made_progress:
            made_progress = False
            for request in list(entry.queue):
                if self._can_grant(entry, request):
                    entry.queue.remove(request)
                    self._grant(entry, request)
                    made_progress = True
                else:
                    break  # FIFO: do not overtake an ungrantable head

    # -- deadlock detection -------------------------------------------------------------
    def _rebuild_waits_for(self) -> None:
        graph: Dict[str, Set[str]] = {}
        # repro: allow(ordering-hazard): pure set-union aggregation, order-free
        for entry in self._table.values():
            for request in entry.queue:
                blockers = {owner for owner, mode in entry.holders.items()
                            if owner != request.owner and
                            not _compatible(mode, request.mode)}
                # Also wait for incompatible holders when upgrading.
                if not blockers and request.owner in entry.holders:
                    blockers = {owner for owner in entry.holders
                                if owner != request.owner}
                if blockers:
                    graph.setdefault(request.owner, set()).update(blockers)
        self._waits_for = graph

    def _find_deadlock_victim(self) -> Optional[str]:
        """Return the youngest transaction on a waits-for cycle, if any."""
        graph = self._waits_for
        visited: Set[str] = set()

        def explore(start: str, node: str, path: List[str]) -> Optional[List[str]]:
            for successor in graph.get(node, ()):
                if successor == start:
                    return path
                if successor in path:
                    continue
                found = explore(start, successor, path + [successor])
                if found is not None:
                    return found
            return None

        for node in graph:
            if node in visited:
                continue
            cycle = explore(node, node, [node])
            if cycle:
                return max(cycle, key=lambda txn: self._ages.get(txn, 0))
            visited.add(node)
        return None

    def _abort_waiter(self, owner: str) -> None:
        """Fail the pending request(s) of ``owner`` with a deadlock error."""
        # repro: allow(ordering-hazard): per-entry removal is independent, order-free
        for entry in self._table.values():
            for request in list(entry.queue):
                if request.owner == owner and not request.event.triggered:
                    entry.queue.remove(request)
                    request.event.fail(DeadlockError(owner))
        self._rebuild_waits_for()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<LockManager {self.name!r} keys={len(self._table)}>"
