"""One-copy serialisability checking.

The correctness criterion of the replicated database (Sect. 2.1 of the paper)
is one-copy serialisability: the interleaved execution over all copies must be
equivalent to some serial execution over a single copy.  This module provides
an *offline* checker used by tests and by the experiment audit: it takes the
committed transactions (with the versions they read and the writes they
installed) and verifies that the version order induces an acyclic
serialisation graph, and that every read observed the value produced by the
preceding committed write in that order.

The checker is intentionally conservative and simple — it targets the
histories produced by the replication techniques in this library, where every
committed update transaction has a global commit order (the atomic broadcast
delivery order, or the delegate's local order for lazy replication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass
class CommittedTransaction:
    """What the checker needs to know about one committed transaction."""

    txn_id: str
    commit_order: int
    read_versions: Dict[str, int] = field(default_factory=dict)
    write_keys: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.write_keys = tuple(self.write_keys)


@dataclass
class SerializabilityReport:
    """Outcome of a serialisability check."""

    serializable: bool
    anomalies: List[str] = field(default_factory=list)
    checked_transactions: int = 0

    def __bool__(self) -> bool:
        return self.serializable


def check_one_copy_serializability(
        transactions: Sequence[CommittedTransaction]) -> SerializabilityReport:
    """Check that the committed history is one-copy serialisable.

    The serial order hypothesised is the commit order.  Two kinds of anomalies
    are reported:

    * ``stale read`` — a transaction read a version of an item older than the
      version installed by the latest write that committed before it;
    * ``lost update`` — two transactions with the same commit order wrote the
      same item (the total order was not total after all).
    """
    anomalies: List[str] = []
    ordered = sorted(transactions, key=lambda txn: txn.commit_order)

    # Detect duplicated commit orders on overlapping write sets.
    by_order: Dict[int, List[CommittedTransaction]] = {}
    for txn in ordered:
        by_order.setdefault(txn.commit_order, []).append(txn)
    for order, group in by_order.items():
        if len(group) < 2:
            continue
        seen: Dict[str, str] = {}
        for txn in group:
            for key in txn.write_keys:
                if key in seen:
                    anomalies.append(
                        f"lost update: {seen[key]} and {txn.txn_id} both wrote "
                        f"{key} at commit order {order}")
                seen[key] = txn.txn_id

    # Replay the serial order and validate each read.
    current_version: Dict[str, int] = {}
    for txn in ordered:
        for key, version_read in txn.read_versions.items():
            installed = current_version.get(key, 0)
            if version_read < installed:
                anomalies.append(
                    f"stale read: {txn.txn_id} read {key} at version "
                    f"{version_read} but version {installed} had committed before it")
        for key in txn.write_keys:
            current_version[key] = current_version.get(key, 0) + 1

    return SerializabilityReport(serializable=not anomalies,
                                 anomalies=anomalies,
                                 checked_transactions=len(ordered))


def precedence_graph(transactions: Sequence[CommittedTransaction]
                     ) -> Dict[str, Set[str]]:
    """Build the write-read / write-write precedence graph of the history.

    Edges point from the earlier transaction to the later one; a cycle in this
    graph would mean the history is not serialisable in commit order.  Exposed
    mostly for tests and for the scaling experiment's inconsistency analysis.
    """
    graph: Dict[str, Set[str]] = {txn.txn_id: set() for txn in transactions}
    ordered = sorted(transactions, key=lambda txn: txn.commit_order)
    last_writer: Dict[str, str] = {}
    for txn in ordered:
        for key, _version in txn.read_versions.items():
            writer = last_writer.get(key)
            if writer and writer != txn.txn_id:
                graph[writer].add(txn.txn_id)
        for key in txn.write_keys:
            writer = last_writer.get(key)
            if writer and writer != txn.txn_id:
                graph[writer].add(txn.txn_id)
            last_writer[key] = txn.txn_id
    return graph


def has_cycle(graph: Dict[str, Set[str]]) -> bool:
    """True if the directed ``graph`` contains a cycle (DFS three-colour)."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}

    def visit(node: str) -> bool:
        colour[node] = GREY
        for successor in graph.get(node, ()):
            if colour.get(successor, WHITE) == GREY:
                return True
            if colour.get(successor, WHITE) == WHITE and visit(successor):
                return True
        colour[node] = BLACK
        return False

    return any(colour[node] == WHITE and visit(node) for node in list(graph))
