"""Exception hierarchy of the local database component."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by the database component."""


class UnknownItemError(DatabaseError, KeyError):
    """Raised when an operation references an item that does not exist."""


class TransactionAborted(DatabaseError):
    """Raised (or recorded) when a transaction cannot commit.

    The ``reason`` attribute carries a short machine-readable tag such as
    ``"certification"``, ``"deadlock"`` or ``"crash"``.
    """

    def __init__(self, transaction_id: str, reason: str = "aborted") -> None:
        super().__init__(f"transaction {transaction_id} aborted: {reason}")
        self.transaction_id = transaction_id
        self.reason = reason


class DeadlockError(TransactionAborted):
    """Raised when a transaction is chosen as the victim of a deadlock."""

    def __init__(self, transaction_id: str) -> None:
        super().__init__(transaction_id, reason="deadlock")


class LockError(DatabaseError):
    """Raised on improper use of the lock manager (double release, etc.)."""


class InvalidTransactionState(DatabaseError):
    """Raised when a transaction is driven through an illegal state change."""
