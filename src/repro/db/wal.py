"""Write-ahead logging.

The write-ahead log is the bridge between a transaction commit and stable
storage.  The safety criteria of the paper are phrased in terms of whether a
transaction "has been logged and will eventually commit": for this library a
transaction counts as *logged on a server* exactly when its commit record has
been **flushed** by that server's :class:`WriteAheadLog`.

The log separates the *logical* append (free, volatile tail) from the
*physical* flush (a disk write of 4–12 ms per Table 4).  The replication
techniques differ only in *when* they flush:

* group-1-safe, 2-safe and lazy flush synchronously before answering the
  client (on the delegate);
* group-safe flushes asynchronously, outside the transaction boundary — that
  asynchrony is the entire performance argument of the paper's Sect. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Timeout
from ..sim.resources import Gate
from .stable_storage import StableLog


class LogRecordType(Enum):
    """Kinds of records a server writes to its WAL."""

    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"
    #: Atomic-commit decision of a cross-partition coordinator.  Not a
    #: transaction commit: recovery redo, the safety audit and
    #: ``committed_transactions()`` all ignore it.
    DECISION = "decision"
    #: Ownership-map version record of the epoch-versioned routing table.
    #: Force-logged before a shard migration installs the new map, so a
    #: restarted cluster recovers a consistent ownership map.  Like DECISION
    #: it is not a transaction commit and is ignored by redo and the audit.
    EPOCH = "epoch"


@dataclass
class LogRecord:
    """One write-ahead log record."""

    record_type: LogRecordType
    txn_id: str
    payload: Dict[str, object] = field(default_factory=dict)
    commit_order: Optional[int] = None
    lsn: Optional[int] = None


class WriteAheadLog:
    """Per-server write-ahead log with explicit flush timing.

    Records are appended to a volatile tail; :meth:`flush` moves the tail to
    the crash-surviving :class:`~repro.db.stable_storage.StableLog` while
    occupying one of the server's disks for a Table 4 write time.  Only
    flushed records survive a crash.
    """

    def __init__(self, sim: Simulator, node: Node,
                 write_time_low: float = 4.0, write_time_high: float = 12.0,
                 name: str = "wal") -> None:
        self.sim = sim
        self.node = node
        self.name = name
        self.write_time_low = write_time_low
        self.write_time_high = write_time_high
        self._log_write_stream = sim.random.stream(f"{node.name}.log_write")
        self._volatile: List[LogRecord] = []
        self._stable: StableLog = node.register_stable(
            f"{name}.stable", StableLog(f"{node.name}.{name}"))
        self._next_lsn = len(self._stable)
        self._flush_gates: Dict[str, Gate] = {}
        #: Gray-failure knob: multiplier on the physical flush time
        #: (:meth:`degrade_disk`).  Applied *after* the random draw, so the
        #: ``{node}.log_write`` stream consumption — and therefore every
        #: other stream — is unchanged by a degradation.
        self._disk_factor = 1.0
        #: Number of physical flush operations performed (for statistics).
        self.flush_count = 0

    # -- append ----------------------------------------------------------------
    def append(self, record: LogRecord) -> LogRecord:
        """Append ``record`` to the volatile tail and assign its LSN."""
        record.lsn = self._next_lsn
        self._next_lsn += 1
        self._volatile.append(record)
        return record

    def append_commit(self, txn_id: str, write_values: Dict[str, object],
                      commit_order: Optional[int] = None) -> LogRecord:
        """Append the commit record (with after-images) of ``txn_id``."""
        return self.append(LogRecord(LogRecordType.COMMIT, txn_id,
                                     payload=dict(write_values),
                                     commit_order=commit_order))

    def append_abort(self, txn_id: str) -> LogRecord:
        """Append an abort record for ``txn_id``."""
        return self.append(LogRecord(LogRecordType.ABORT, txn_id))

    def append_decision(self, txn_id: str) -> LogRecord:
        """Append a coordinator decision record for ``txn_id``."""
        return self.append(LogRecord(LogRecordType.DECISION, txn_id))

    def append_epoch(self, epoch: int,
                     payload: Dict[str, object]) -> LogRecord:
        """Append a routing-table epoch record (serialised ownership map)."""
        return self.append(LogRecord(LogRecordType.EPOCH, f"epoch-{epoch}",
                                     payload=dict(payload)))

    # -- gray failures ----------------------------------------------------------
    def degrade_disk(self, factor: float) -> None:
        """Inflate every subsequent flush time by ``factor`` (a failing but
        not failed disk — the gray-failure mode of the netsplit matrix)."""
        if factor < 1.0:
            raise ValueError("a degradation factor must be >= 1")
        self._disk_factor = factor

    def restore_disk(self) -> None:
        """End a :meth:`degrade_disk` episode."""
        self._disk_factor = 1.0

    # -- flush ------------------------------------------------------------------
    def _flush_duration(self) -> float:
        duration = self._log_write_stream.uniform(self.write_time_low,
                                                  self.write_time_high)
        if self._disk_factor != 1.0:
            duration *= self._disk_factor
        return duration

    def flush(self):
        """Generator: force the volatile tail to stable storage.

        Occupies one disk of the node for one write time; every record that
        was in the tail when the flush started (plus any appended while the
        flush waited for the disk — group commit) becomes durable.
        """
        if not self._volatile:
            return
        # Inline cpu.use / disk.use (identical event schedule): one flush per
        # group commit makes this the hottest disk path of every technique.
        node = self.node
        cpu = node.cpu
        sim = self.sim
        obs = sim.obs
        span = None
        if obs is not None:
            # Parentless on purpose: one group-commit flush serves many
            # transactions; their own spans cover the wait via flush gates.
            span = obs.begin("wal.flush", category="disk",
                             track=f"server.{node.name}",
                             labels={"records": len(self._volatile)})
        try:
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, node.cpu_time_per_io)
            finally:
                cpu.release(request)
            duration = self._flush_duration()
            disk = node.disk
            request = disk.request()
            yield request
            try:
                yield Timeout(sim, duration)
            finally:
                disk.release(request)
        finally:
            if span is not None:
                obs.end(span)
        self.flush_count += 1
        flushed, self._volatile = self._volatile, []
        for record in flushed:
            self._stable.append(record)
            gate = self._flush_gates.pop(record.txn_id, None)
            if gate is not None:
                gate.open()

    def force(self, record: LogRecord):
        """Generator: flush and report whether ``record`` became durable.

        The forced-write discipline of the 2PC decision and routing-epoch
        records: success is judged by *evidence* — the record must actually
        be on stable storage afterwards — so a crash mid-flush (the
        volatile tail dies with the node) reads as failure, never as a
        phantom forced write.  Callers must still check the node is up
        *before* appending the record; this only judges the flush.
        """
        try:
            yield from self.flush()
        except Exception:
            # The node crashed mid-flush with the request in service.
            return False
        return self.is_stable(record)

    def flushed_gate(self, txn_id: str) -> Gate:
        """Return a gate that opens once ``txn_id``'s records are durable."""
        if self.is_logged(txn_id):
            return Gate(self.sim, opened=True, name=f"flushed:{txn_id}")
        gate = self._flush_gates.setdefault(
            txn_id, Gate(self.sim, name=f"flushed:{txn_id}"))
        return gate

    # -- queries ------------------------------------------------------------------
    def is_stable(self, record: LogRecord) -> bool:
        """True if ``record`` (an object this log appended) is on stable storage.

        Records reach the stable log in LSN order, so the record's LSN can
        be bisected in O(log n) instead of scanning (and copying) the whole
        stable log — this runs once per forced 2PC decision.  The final
        identity comparison distinguishes the record itself from a
        same-LSN successor appended after a crash dropped the original with
        the volatile tail.
        """
        if record.lsn is None:
            return False
        low, high = 0, len(self._stable)
        while low < high:
            mid = (low + high) // 2
            if self._stable.entries(mid, mid + 1)[0].lsn < record.lsn:
                low = mid + 1
            else:
                high = mid
        if low >= len(self._stable):
            return False
        return self._stable.entries(low, low + 1)[0] is record

    def is_logged(self, txn_id: str) -> bool:
        """True if a COMMIT record of ``txn_id`` has reached stable storage."""
        return any(record.record_type is LogRecordType.COMMIT and
                   record.txn_id == txn_id for record in self._stable)

    def stable_records(self) -> List[LogRecord]:
        """All records currently on stable storage."""
        return list(self._stable)

    def volatile_records(self) -> List[LogRecord]:
        """Records appended but not yet flushed (lost on crash)."""
        return list(self._volatile)

    def committed_transactions(self) -> List[str]:
        """Transaction ids with a durable COMMIT record, in LSN order."""
        return [record.txn_id for record in self._stable
                if record.record_type is LogRecordType.COMMIT]

    # -- crash handling ---------------------------------------------------------------
    def lose_volatile(self) -> None:
        """Drop the volatile tail (called when the hosting node crashes)."""
        self._volatile.clear()
        self._flush_gates.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<WriteAheadLog {self.node.name} stable={len(self._stable)} "
                f"volatile={len(self._volatile)}>")
