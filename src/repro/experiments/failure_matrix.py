"""Failure-injection matrices for the paper's Tables 2 and 3.

The experiments here confront the *derived* tables of
:mod:`repro.core.matrix` with *observed* behaviour of the implemented
techniques under concrete crash schedules.  Two properties are checked:

* **soundness** — whenever the criterion promises "No Transaction Loss" for a
  failure pattern, the implementation must indeed never lose a confirmed
  transaction under that pattern;
* **demonstration** — for the "Possible Transaction Loss" cells, the
  experiment exhibits at least one concrete schedule in which the transaction
  is actually lost (where such a schedule exists for our implementation; the
  cells where the paper's "possible" is not realised by this implementation
  are reported as ``demonstrated=False`` rather than asserted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.criteria import safety_of_technique
from ..core.matrix import loss_condition
from ..core.safety import SafetyLevel
from ..workload.params import SimulationParameters
from .scenarios import ScenarioOutcome, run_crash_scenario


@dataclass
class MatrixEntry:
    """One (technique, crash pattern) cell of the failure matrix."""

    technique: str
    level: SafetyLevel
    crash_pattern: str
    group_failed: bool
    delegate_crashed: bool
    predicted_possible_loss: bool
    observed_loss: bool
    outcome: ScenarioOutcome

    @property
    def sound(self) -> bool:
        """True if the observation does not contradict the prediction.

        An observed loss in a cell where the criterion promises no loss is a
        soundness violation; an observed survival in a "possible loss" cell is
        fine (possible, not certain).
        """
        return self.predicted_possible_loss or not self.observed_loss


#: The crash patterns exercised for every technique, with the gate setting
#: that makes the pattern meaningful (freeze = crash between delivery and
#: processing on the non-delegates).
_PATTERNS = (
    ("none", False),
    ("delegate", False),
    ("minority", False),
    ("all-delegate-stays-down", True),
    ("all-recover-all", True),
)


def _matrix_cell(cell) -> MatrixEntry:
    """Run one (technique, crash pattern) cell — module-level so a process
    pool can pickle it; each cell is an independent simulation."""
    technique, pattern, freeze, seed, params = cell
    level = safety_of_technique(technique)
    outcome = run_crash_scenario(technique, crash_pattern=pattern,
                                 seed=seed, params=params,
                                 freeze_non_delegates=freeze)
    predicted = loss_condition(level, outcome.group_failed,
                               outcome.delegate_crashed)
    return MatrixEntry(
        technique=technique, level=level, crash_pattern=pattern,
        group_failed=outcome.group_failed,
        delegate_crashed=outcome.delegate_crashed,
        predicted_possible_loss=predicted,
        observed_loss=outcome.transaction_lost,
        outcome=outcome)


def run_failure_matrix(techniques: Optional[List[str]] = None,
                       seed: int = 1,
                       params: Optional[SimulationParameters] = None,
                       workers: int = 1) -> List[MatrixEntry]:
    """Run every (technique, crash pattern) scenario and collect the matrix.

    With ``workers > 1`` the cells fan out over a process pool; the entry
    list keeps the serial (technique-major) order either way, because
    ``Pool.map`` returns results in submission order regardless of which
    worker finished first.
    """
    chosen = techniques or ["0-safe", "1-safe", "group-safe", "group-1-safe",
                            "2-safe"]
    cells = [(technique, pattern, freeze, seed, params)
             for technique in chosen
             for pattern, freeze in _PATTERNS]
    if workers > 1:
        import multiprocessing
        with multiprocessing.Pool(min(workers, len(cells))) as pool:
            return pool.map(_matrix_cell, cells)
    return [_matrix_cell(cell) for cell in cells]


def soundness_violations(entries: List[MatrixEntry]) -> List[MatrixEntry]:
    """Cells where a loss was observed although the criterion forbids it."""
    return [entry for entry in entries if not entry.sound]


def demonstrated_losses(entries: List[MatrixEntry]) -> List[MatrixEntry]:
    """Cells where a possible loss was actually demonstrated."""
    return [entry for entry in entries
            if entry.predicted_possible_loss and entry.observed_loss]


def crash_tolerance_summary(entries: List[MatrixEntry]) -> Dict[str, int]:
    """Observed crash tolerance per technique (Table 2, measured side).

    For each technique, the largest number of crashed servers in any pattern
    that did *not* lose the transaction.
    """
    summary: Dict[str, int] = {}
    for entry in entries:
        if entry.observed_loss:
            continue
        crashed = len(entry.outcome.crashed_servers)
        summary[entry.technique] = max(summary.get(entry.technique, 0), crashed)
    return summary


def render_matrix(entries: List[MatrixEntry]) -> str:
    """Human-readable rendering of the failure matrix (benchmark report)."""
    lines = [f"{'technique':>14} | {'pattern':>24} | {'predicted':>10} | "
             f"{'observed':>9} | sound"]
    lines.append("-" * len(lines[0]))
    for entry in entries:
        predicted = "possible" if entry.predicted_possible_loss else "no loss"
        observed = "LOST" if entry.observed_loss else "kept"
        lines.append(f"{entry.technique:>14} | {entry.crash_pattern:>24} | "
                     f"{predicted:>10} | {observed:>9} | {entry.sound}")
    return "\n".join(lines)


#: The reduced technique set of the ``--smoke`` CLI run (mirrors the
#: partitioned matrix: one lazy, one group-based, one end-to-end level).
SMOKE_TECHNIQUES = ("1-safe", "group-safe", "2-safe")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI / CI smoke entry, consistent with ``repro.experiments.autobalance``
    and ``repro.experiments.partition_failure_matrix``.

    Runs the single-group matrix, prints and writes the report, and exits
    non-zero on a soundness violation or when no predicted-possible-loss
    cell demonstrated a concrete losing schedule.
    """
    from ..gcs.engines import DEFAULT_ENGINE
    from .report import matrix_cli

    def run(arguments):
        techniques = list(SMOKE_TECHNIQUES) if arguments.smoke else None
        # Only materialise a parameter set when deviating from the default
        # engine, so default runs keep the scenarios' own parameters.
        params = None if arguments.engine == DEFAULT_ENGINE else \
            SimulationParameters.small(server_count=3, item_count=100) \
            .with_overrides(broadcast_engine=arguments.engine)
        entries = run_failure_matrix(techniques=techniques,
                                     seed=arguments.seed,
                                     params=params,
                                     workers=arguments.workers)
        from .traced import maybe_write_scenario_trace
        maybe_write_scenario_trace(arguments.trace, seed=arguments.seed)
        return entries, render_matrix(entries)

    def problems_of(entries) -> List[str]:
        problems: List[str] = []
        violations = soundness_violations(entries)
        if violations:
            problems.append(f"{len(violations)} soundness violations")
        if not demonstrated_losses(entries):
            problems.append("no predicted-possible-loss cell demonstrated "
                            "a loss schedule")
        return problems

    return matrix_cli(
        argv, description=__doc__.splitlines()[0],
        report_name="failure_matrix", run=run, problems_of=problems_of,
        extra_arguments=(
            ("--trace", dict(default=None, metavar="PATH",
                             help="also run the canonical traced scenario "
                                  "and write its Chrome trace to PATH")),))


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
