"""Failure-injection scenarios (Fig. 5, Fig. 7 and the Table 2/3 patterns).

Every scenario follows the same script, parameterised by the replication
technique and the crash pattern:

1. build a small cluster (3 servers by default, ``s1`` is the delegate);
2. optionally freeze the *processing* stage of the non-delegate servers by
   closing their processing gate — this creates the delivered-but-not-
   processed window at the heart of the paper's Fig. 5 argument;
3. submit one update transaction to the delegate and wait until the client is
   notified of the commit;
4. crash the servers of the chosen pattern;
5. re-open the gates, recover the chosen servers and let their recovery
   procedures (redo, state transfer or message replay) finish;
6. audit the cluster: is the confirmed transaction still (or again) part of
   the replicated database, or was it lost?

The outcome of the audit is what Tables 2 and 3 and the Fig. 5/7 comparison
are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.durability import TransactionFate, transaction_fate
from ..replication.cluster import ReplicatedDatabaseCluster
from ..replication.results import TransactionResult
from ..workload.params import SimulationParameters


@dataclass
class ScenarioOutcome:
    """Everything a failure scenario produced, ready for auditing."""

    technique: str
    crash_pattern: str
    txn_id: str
    confirmed: bool
    response: Optional[TransactionResult]
    fate: TransactionFate
    committed_on: List[str] = field(default_factory=list)
    recovered_servers: List[str] = field(default_factory=list)
    crashed_servers: List[str] = field(default_factory=list)
    group_failed: bool = False
    delegate_crashed: bool = False

    @property
    def transaction_lost(self) -> bool:
        """True if the confirmed transaction is gone from every up server."""
        return self.fate.is_lost


#: Named crash patterns used by the Table 2 / Table 3 experiments.  Each maps
#: to (servers to crash, servers to recover afterwards).
CRASH_PATTERNS: Dict[str, Dict[str, Sequence[str]]] = {
    "none": {"crash": (), "recover": ()},
    "delegate": {"crash": ("s1",), "recover": ()},
    "minority": {"crash": ("s3",), "recover": ()},
    "group-fails-delegate-up": {"crash": ("s2", "s3"), "recover": ("s2", "s3")},
    "all-delegate-stays-down": {"crash": ("s1", "s2", "s3"),
                                "recover": ("s2", "s3")},
    "all-recover-all": {"crash": ("s1", "s2", "s3"),
                        "recover": ("s2", "s3", "s1")},
}


def run_crash_scenario(technique: str, crash_pattern: str = "all-delegate-stays-down",
                       seed: int = 1,
                       params: Optional[SimulationParameters] = None,
                       freeze_non_delegates: bool = True,
                       settle_time: float = 2_000.0) -> ScenarioOutcome:
    """Run one failure-injection scenario and return its audited outcome.

    ``freeze_non_delegates`` closes the processing gate of every server except
    the delegate before the transaction is submitted, so that those servers
    crash *after delivering* the transaction's message but *before processing
    it* — the exact window of Fig. 5.  Set it to False for patterns where the
    survivors are supposed to have processed the transaction normally.
    """
    if crash_pattern not in CRASH_PATTERNS:
        raise ValueError(f"unknown crash pattern {crash_pattern!r}; "
                         f"expected one of {sorted(CRASH_PATTERNS)}")
    pattern = CRASH_PATTERNS[crash_pattern]
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=100)
    cluster = ReplicatedDatabaseCluster(technique, params=parameters, seed=seed)
    cluster.start()
    sim = cluster.sim
    delegate = "s1"

    if freeze_non_delegates:
        for name in cluster.server_names():
            if name != delegate:
                cluster.replica(name).processing_gate.close()

    # One deterministic update-only transaction on the delegate.
    program = cluster.workload.update_only_program(write_count=3,
                                                   client="scenario")
    waiter = cluster.run_transaction(program, server=delegate)
    response: TransactionResult = sim.run_until_complete(
        waiter, limit=sim.now + settle_time)
    txn_id = response.txn_id

    # Give the survivors a short moment so that in-flight deliveries land
    # (they stay frozen *before processing* if the gates are closed), but stay
    # well below the lazy propagation interval so that crashing the delegate
    # still happens before anything left it.
    sim.run(until=sim.now + 10.0)

    crashed = list(pattern["crash"])
    for name in crashed:
        cluster.crash_server(name)
    sim.run(until=sim.now + 5.0)

    # Re-open the gates so that recovered servers can process replays.
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.open()

    recovery_processes = []
    recovered = list(pattern["recover"])
    for name in recovered:
        recovery_processes.append(cluster.recover_server(name))
        sim.run(until=sim.now + 50.0)
    sim.run(until=sim.now + settle_time)

    group_failed = len(crashed) > len(cluster.server_names()) // 2
    fate = transaction_fate(cluster, txn_id,
                            confirmed_to_client=response.committed)
    return ScenarioOutcome(
        technique=technique, crash_pattern=crash_pattern, txn_id=txn_id,
        confirmed=response.committed, response=response, fate=fate,
        committed_on=cluster.committed_anywhere(txn_id),
        recovered_servers=recovered, crashed_servers=crashed,
        group_failed=group_failed,
        delegate_crashed=delegate in crashed and delegate not in recovered)


def figure5_scenario(seed: int = 1,
                     params: Optional[SimulationParameters] = None
                     ) -> ScenarioOutcome:
    """The unrecoverable-failure scenario of Fig. 5 (classical atomic broadcast).

    Group-1-safe replication on classical atomic broadcast: the delegate
    commits and confirms, every server delivers the message, then all servers
    crash; only the non-delegates recover.  The transaction is lost.
    """
    return run_crash_scenario("group-1-safe",
                              crash_pattern="all-delegate-stays-down",
                              seed=seed, params=params,
                              freeze_non_delegates=True)


def figure7_scenario(seed: int = 1,
                     params: Optional[SimulationParameters] = None
                     ) -> ScenarioOutcome:
    """The recovery scenario of Fig. 7 (end-to-end atomic broadcast).

    Same crash schedule as Fig. 5, but the technique runs on end-to-end
    atomic broadcast (2-safe): after recovery the unacknowledged message is
    replayed, processed and committed — the transaction survives.
    """
    return run_crash_scenario("2-safe",
                              crash_pattern="all-delegate-stays-down",
                              seed=seed, params=params,
                              freeze_non_delegates=True)


def single_crash_scenario(technique: str, seed: int = 1,
                          params: Optional[SimulationParameters] = None
                          ) -> ScenarioOutcome:
    """Crash only the delegate right after it confirmed the transaction.

    This is the pattern that separates the 0/1-safe levels (which tolerate no
    crash at all) from the group-based levels (Table 2, first row vs second).
    For the lazy techniques the crash happens before the propagation interval
    elapses, so nothing has left the delegate yet.
    """
    return run_crash_scenario(technique, crash_pattern="delegate", seed=seed,
                              params=params, freeze_non_delegates=False)
