"""Rebalance experiment: live migration of a hot Zipf head under load.

The Zipf extension of the workload model interacts badly with range
sharding: the hot head of the keyspace (ranks 1, 2, 3 …) all lands on
partition 0, which saturates while the tail partitions idle — the ROADMAP
"Zipf skew × range sharding" item.  The epoch-versioned routing table fixes
this *online*: :meth:`~repro.partition.cluster.PartitionedCluster.rebalance`
splits the hot shard at its access-weighted median and migrates the head to
the least-loaded group while the open-loop driver keeps submitting.

This experiment drives the same seeded workload twice — once with the
static epoch-0 layout, once rebalancing mid-run — and measures committed
throughput in three windows (before / during / after the migration), the
load share of the formerly hot group, and the migration protocol's own
telemetry (copy sizes, fence duration, forwarded dual-writes).  A
commit-integrity audit checks the acceptance property of live migration:
no client-visible commit is lost and none is duplicated across groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..partition.cluster import MigrationReport, PartitionedCluster
from ..partition.stats import PartitionedRunStatistics, collect_statistics
from ..partition.workload import (PartitionedOpenLoopClients,
                                  _PartitionedClientBase)
from ..workload.params import SimulationParameters

#: Default measurement windows (ms): warm-up, rebalance trigger, settle.
DEFAULT_WARMUP_MS = 2_000.0
DEFAULT_REBALANCE_AT_MS = 6_000.0
DEFAULT_SETTLE_MS = 9_000.0
DEFAULT_DURATION_MS = 16_000.0


@dataclass
class RebalanceOutcome:
    """One run of the rebalance experiment (static or live-rebalanced)."""

    rebalanced: bool
    statistics: PartitionedRunStatistics
    #: Committed throughput (tps) in the three measurement windows.
    before_tput: float = 0.0
    during_tput: float = 0.0
    after_tput: float = 0.0
    #: Fraction of window commits served by the initially hot group 0.
    hot_share_before: float = 0.0
    hot_share_after: float = 0.0
    migration: Optional[MigrationReport] = None
    #: Commit-integrity audit: empty means zero lost / duplicated commits.
    audit_failures: List[str] = field(default_factory=list)
    wrong_epoch_retries: int = 0

    @property
    def audit_ok(self) -> bool:
        """True when the per-key commit audit found nothing."""
        return not self.audit_failures


def _group_of_result(result) -> Optional[int]:
    """Owning group of a fast-path result (parsed from its delegate name)."""
    delegate = getattr(result, "delegate", "")
    if delegate.startswith("p") and "." in delegate:
        head = delegate.split(".", 1)[0][1:]
        if head.isdigit():
            return int(head)
    return None


def window_commits(clients: _PartitionedClientBase, start: float,
                   end: float, hot_group: int = 0) -> Tuple[int, int]:
    """(committed, committed-on-``hot_group``) responses in ``[start, end)``."""
    total = 0
    on_hot = 0
    for population in (clients.single_results, clients.warmup_single_results):
        for result in population:
            if result.committed and start <= result.responded_at < end:
                total += 1
                if _group_of_result(result) == hot_group:
                    on_hot += 1
    for population in (clients.cross_results, clients.warmup_cross_results):
        for outcome in population:
            if outcome.committed and start <= outcome.responded_at < end:
                total += 1
                if hot_group in outcome.partitions:
                    on_hot += 1
    return total, on_hot


def audit_commit_integrity(cluster: PartitionedCluster,
                           clients: _PartitionedClientBase) -> List[str]:
    """Per-key / per-transaction commit audit across a (re)balanced run.

    Checks, over every client-visible result including warm-up:

    * **no lost commit** — every committed fast-path transaction is durably
      recorded on at least one server of exactly one group, and every
      committed cross-partition branch on its group;
    * **no duplicated commit** — no client transaction is committed on two
      groups (dual-written *values* legitimately exist on both sides of a
      migration, but only as internal migration transactions);
    * **per-key provenance** — for every key of every completed migration,
      the value now served by the new owner was written by a known writer:
      a committed client transaction, a 2PC branch install, or the migration
      machinery itself.  A value from an uncommitted or unknown writer means
      the copy protocol leaked.

    Returns a list of human-readable failures (empty = audit passed).
    """
    failures: List[str] = []
    internal = set(cluster.coordinator.branch_txn_ids)
    internal |= cluster.migration_txn_ids
    committed_client_ids = set()

    singles = list(clients.single_results) + list(clients.warmup_single_results)
    for result in singles:
        if not result.committed or result.txn_id.startswith("rejected:"):
            continue
        committed_client_ids.add(result.txn_id)
        owners = [
            partition_id
            for partition_id, group in enumerate(cluster.groups)
            if any(group.database(name).testable.has_committed(result.txn_id)
                   for name in group.server_names())]
        if not owners:
            failures.append(f"lost commit: {result.txn_id} is committed "
                            f"nowhere")
        elif len(owners) > 1:
            failures.append(f"duplicated commit: {result.txn_id} is "
                            f"committed on groups {owners}")

    crosses = list(clients.cross_results) + list(clients.warmup_cross_results)
    for outcome in crosses:
        if not outcome.committed:
            continue
        for branch in outcome.branches:
            if branch.txn_id is None:
                continue
            committed_client_ids.add(branch.txn_id)
            if not cluster.group(branch.partition_id).committed_anywhere(
                    branch.txn_id):
                failures.append(f"lost branch: {outcome.xid} branch "
                                f"{branch.txn_id} missing on group "
                                f"{branch.partition_id}")

    allowed = committed_client_ids | internal
    for report in cluster.migration_reports:
        if not report.completed:
            continue
        group = cluster.group(report.destination_group)
        up_servers = group.up_servers()
        if not up_servers:
            continue
        database = group.database(up_servers[0])
        for key in database.items.keys():
            if not report.key_range.contains(cluster.routing.position_of(key)):
                continue
            writer = database.items.get(key).writer
            if writer is not None and writer not in allowed:
                failures.append(f"unknown writer {writer!r} for migrated "
                                f"key {key!r}")
        if not report.verified:
            failures.append(f"migration {report.key_range!r} completed "
                            f"without passing its copy verification")
    return failures


def run_rebalance_experiment(rebalance: bool = True,
                             technique: str = "group-safe",
                             partitions: int = 4,
                             items: int = 400,
                             load_tps: float = 150.0,
                             zipf_skew: float = 1.1,
                             cross_partition_probability: float = 0.05,
                             warmup_ms: float = DEFAULT_WARMUP_MS,
                             rebalance_at_ms: float = DEFAULT_REBALANCE_AT_MS,
                             settle_ms: float = DEFAULT_SETTLE_MS,
                             duration_ms: float = DEFAULT_DURATION_MS,
                             seed: int = 33,
                             params: Optional[SimulationParameters] = None
                             ) -> RebalanceOutcome:
    """Drive one (optionally live-rebalanced) skewed run and summarise it.

    Range sharding concentrates the Zipf head on group 0; at
    ``rebalance_at_ms`` the rebalanced run splits the hot shard at its
    observed access median and migrates the head to the coolest group — all
    under sustained open-loop load.  The static run is the same seeded
    workload without the move.
    """
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=items)
    parameters = parameters.with_overrides(
        partition_count=partitions, zipf_skew=zipf_skew,
        cross_partition_probability=cross_partition_probability)
    cluster = PartitionedCluster(technique, params=parameters, seed=seed,
                                 strategy="range")
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=load_tps,
                                         warmup=warmup_ms)
    clients.start()
    cluster.run(until=rebalance_at_ms)
    if rebalance:
        cluster.rebalance()
    cluster.run(until=duration_ms)

    statistics = collect_statistics(clients,
                                    duration_ms=duration_ms - warmup_ms)
    outcome = RebalanceOutcome(rebalanced=rebalance, statistics=statistics)
    before, before_hot = window_commits(clients, warmup_ms, rebalance_at_ms)
    during, _ = window_commits(clients, rebalance_at_ms, settle_ms)
    after, after_hot = window_commits(clients, settle_ms, duration_ms)
    outcome.before_tput = before / ((rebalance_at_ms - warmup_ms) / 1000.0)
    outcome.during_tput = during / ((settle_ms - rebalance_at_ms) / 1000.0)
    outcome.after_tput = after / ((duration_ms - settle_ms) / 1000.0)
    outcome.hot_share_before = before_hot / before if before else 0.0
    outcome.hot_share_after = after_hot / after if after else 0.0
    if cluster.migration_reports:
        outcome.migration = cluster.migration_reports[0]
    outcome.audit_failures = audit_commit_integrity(cluster, clients)
    outcome.wrong_epoch_retries = cluster.router.wrong_epoch_retries
    return outcome


def render_rebalance_report(static: RebalanceOutcome,
                            rebalanced: RebalanceOutcome) -> str:
    """Text report comparing the static and the live-rebalanced run."""
    lines = [
        "Live rebalancing of a Zipf hot head (range sharding, same seed)",
        "",
        f"{'':>24} | {'static':>10} | {'rebalanced':>10}",
        "-" * 50,
    ]

    def row(label: str, static_value: str, rebalanced_value: str) -> None:
        lines.append(f"{label:>24} | {static_value:>10} | "
                     f"{rebalanced_value:>10}")

    row("before tput (tps)", f"{static.before_tput:.1f}",
        f"{rebalanced.before_tput:.1f}")
    row("during tput (tps)", f"{static.during_tput:.1f}",
        f"{rebalanced.during_tput:.1f}")
    row("after tput (tps)", f"{static.after_tput:.1f}",
        f"{rebalanced.after_tput:.1f}")
    row("hot-group share before", f"{static.hot_share_before:.1%}",
        f"{rebalanced.hot_share_before:.1%}")
    row("hot-group share after", f"{static.hot_share_after:.1%}",
        f"{rebalanced.hot_share_after:.1%}")
    row("wrong-epoch retries", f"{static.wrong_epoch_retries}",
        f"{rebalanced.wrong_epoch_retries}")
    row("audit", "ok" if static.audit_ok else "FAILED",
        "ok" if rebalanced.audit_ok else "FAILED")
    migration = rebalanced.migration
    if migration is not None:
        lines += [
            "",
            f"migration: range {migration.key_range!r} "
            f"g{migration.source_group} -> g{migration.destination_group} "
            f"epoch {migration.epoch}",
            f"  warm copy {migration.keys_copied} keys, delta "
            f"{migration.delta_keys_copied} keys, "
            f"{migration.forwarded_writes} dual-writes forwarded",
            f"  copy {migration.copy_duration_ms:.0f} ms in "
            f"{migration.copy_chunks} chunks "
            f"(concurrency {migration.copy_concurrency}, peak "
            f"{migration.copy_inflight_peak} in flight, "
            f"{migration.throttle_waits} throttle waits, "
            f"{migration.throttle_wait_ms:.0f} ms throttled)",
            f"  total {migration.duration_ms:.0f} ms, write fence "
            f"{migration.fence_duration_ms:.0f} ms, verified="
            f"{migration.verified}",
        ]
    return "\n".join(lines)
