"""Experiment harnesses reproducing every table and figure of the paper."""

from .failure_matrix import (MatrixEntry, crash_tolerance_summary,
                             demonstrated_losses, render_matrix,
                             run_failure_matrix, soundness_violations)
from .figure9 import (FIGURE9_LOADS, FIGURE9_TECHNIQUES, LoadPoint,
                      crossover_load, curves, figure9_sweep, render_figure9,
                      run_load_point)
from .partition_scaling import (DEFAULT_LOAD_TPS, PARTITION_COUNTS,
                                PartitionPoint, partition_sweep,
                                render_partition_sweep, run_partition_point)
from .report import banner, format_mapping, format_table
from .scaling import (DivergenceOutcome, analytic_scaling,
                      conflicting_updates_run, render_scaling)
from .scenarios import (CRASH_PATTERNS, ScenarioOutcome, figure5_scenario,
                        figure7_scenario, run_crash_scenario,
                        single_crash_scenario)

__all__ = [
    "ScenarioOutcome",
    "CRASH_PATTERNS",
    "run_crash_scenario",
    "figure5_scenario",
    "figure7_scenario",
    "single_crash_scenario",
    "MatrixEntry",
    "run_failure_matrix",
    "soundness_violations",
    "demonstrated_losses",
    "crash_tolerance_summary",
    "render_matrix",
    "LoadPoint",
    "run_load_point",
    "figure9_sweep",
    "curves",
    "crossover_load",
    "render_figure9",
    "FIGURE9_LOADS",
    "FIGURE9_TECHNIQUES",
    "DivergenceOutcome",
    "conflicting_updates_run",
    "analytic_scaling",
    "render_scaling",
    "PartitionPoint",
    "PARTITION_COUNTS",
    "DEFAULT_LOAD_TPS",
    "run_partition_point",
    "partition_sweep",
    "render_partition_sweep",
    "format_table",
    "format_mapping",
    "banner",
]
