"""Partition-scaling experiment: throughput vs. number of replica groups.

The paper's system is one replica group whose atomic broadcast totally orders
*every* update — the hard scalability ceiling discussed alongside Fig. 9.
This experiment, which the paper never ran, shards the keyspace across
independent replica groups and measures how committed throughput and response
-time percentiles evolve as the partition count grows, with and without
cross-partition transactions (whose two-phase commit re-introduces a
coordination cost the single-group system never pays).

Common random numbers hold across the sweep: every configuration is driven
with the same master seed, so the generated workload differs only where the
partition layout forces it to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..partition.cluster import PartitionedCluster
from ..partition.stats import PartitionedRunStatistics, collect_statistics
from ..partition.workload import PartitionedOpenLoopClients
from ..workload.params import SimulationParameters

#: Partition counts swept by default (1 reproduces the paper's system shape).
PARTITION_COUNTS = (1, 2, 4, 8)
#: Default offered load (tps): saturates one group, leaves eight comfortable.
DEFAULT_LOAD_TPS = 120.0


@dataclass
class PartitionPoint:
    """One measured configuration of the partition sweep."""

    partition_count: int
    technique: str
    cross_partition_probability: float
    offered_load_tps: float
    statistics: PartitionedRunStatistics
    #: Number of partitions each cross-partition transaction touches.
    cross_partition_span: int = 2

    @property
    def achieved_throughput_tps(self) -> float:
        """Committed transactions per second at this point."""
        return self.statistics.achieved_throughput_tps

    @property
    def mean_response_time(self) -> float:
        """Mean committed response time (ms) at this point."""
        return self.statistics.mean_response_time


def run_partition_point(technique: str = "group-safe",
                        partition_count: int = 1,
                        load_tps: float = DEFAULT_LOAD_TPS,
                        cross_partition_probability: float = 0.0,
                        cross_partition_span: Optional[int] = None,
                        duration_ms: float = 12_000.0,
                        warmup_ms: float = 2_000.0,
                        seed: int = 21,
                        params: Optional[SimulationParameters] = None,
                        observability: bool = False
                        ) -> PartitionPoint:
    """Drive one partitioned configuration and summarise it.

    With ``observability`` the cluster runs under the span tracer; the
    resulting :class:`~repro.obs.tracer.Observability` is reachable as
    ``point.statistics.obs`` for export.
    """
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=400)
    parameters = parameters.with_overrides(
        partition_count=partition_count,
        cross_partition_probability=cross_partition_probability)
    if cross_partition_span is not None:
        parameters = parameters.with_overrides(
            cross_partition_span=cross_partition_span)
    cluster = PartitionedCluster(technique, params=parameters, seed=seed)
    if observability:
        cluster.enable_observability()
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=load_tps,
                                         warmup=warmup_ms)
    clients.start()
    cluster.run(until=warmup_ms)
    warmup_commits = cluster.commit_counts()
    cluster.run(until=duration_ms)
    statistics = collect_statistics(clients,
                                    duration_ms=duration_ms - warmup_ms)
    # Local commits are counted since t=0; restrict them to the measured
    # window so work-per-commit ratios compare like with like.
    statistics.per_partition_commits = {
        partition_id: count - warmup_commits.get(partition_id, 0)
        for partition_id, count in statistics.per_partition_commits.items()}
    return PartitionPoint(
        partition_count=partition_count, technique=technique,
        cross_partition_probability=cross_partition_probability,
        offered_load_tps=load_tps, statistics=statistics,
        cross_partition_span=parameters.cross_partition_span)


def partition_sweep(partition_counts: Sequence[int] = PARTITION_COUNTS,
                    technique: str = "group-safe",
                    load_tps: float = DEFAULT_LOAD_TPS,
                    cross_partition_probability: float = 0.0,
                    duration_ms: float = 12_000.0,
                    seed: int = 21,
                    params: Optional[SimulationParameters] = None
                    ) -> List[PartitionPoint]:
    """Sweep the partition count at a fixed offered load."""
    return [run_partition_point(
        technique=technique, partition_count=count, load_tps=load_tps,
        cross_partition_probability=cross_partition_probability,
        duration_ms=duration_ms, seed=seed, params=params)
        for count in partition_counts]


#: Spans swept by default for the 2PC work-amplification curve.
SPAN_VALUES = (2, 3, 4)


def span_sweep(spans: Sequence[int] = SPAN_VALUES,
               partition_count: int = 4,
               technique: str = "group-safe",
               load_tps: float = 60.0,
               cross_partition_probability: float = 0.3,
               duration_ms: float = 12_000.0,
               seed: int = 21,
               params: Optional[SimulationParameters] = None
               ) -> List[PartitionPoint]:
    """Sweep the cross-partition span at a fixed offered load.

    A transaction touching ``span`` partitions costs one prepare, one forced
    decision log and ``span`` branch installs — each install replicated on
    every server of its group — so the local work behind one committed
    cross-partition transaction grows linearly with the span.  This sweep
    measures that amplification directly (the ROADMAP "multi-span
    transactions" item).
    """
    points = []
    for span in spans:
        if not 2 <= span <= partition_count:
            raise ValueError(
                f"span {span} out of range [2, {partition_count}]")
        points.append(run_partition_point(
            technique=technique, partition_count=partition_count,
            load_tps=load_tps,
            cross_partition_probability=cross_partition_probability,
            cross_partition_span=span, duration_ms=duration_ms, seed=seed,
            params=params))
    return points


def work_per_commit(point: PartitionPoint) -> float:
    """Local (per-server, per-group) commits behind one client commit."""
    local_work = sum(point.statistics.per_partition_commits.values())
    if not point.statistics.measured_commits:
        return 0.0
    return local_work / point.statistics.measured_commits


def render_span_sweep(points: Sequence[PartitionPoint]) -> str:
    """Text rendering of a cross-partition span sweep."""
    header = (f"{'span':>4} | {'xpart %':>7} | {'offered':>8} | "
              f"{'tput tps':>9} | {'cross tput':>10} | {'mean rt':>8} | "
              f"{'work/commit':>11} | {'validation aborts':>17}")
    lines = [header, "-" * len(header)]
    for point in points:
        stats = point.statistics
        lines.append(
            f"{point.cross_partition_span:>4} | "
            f"{point.cross_partition_probability:>7.0%} | "
            f"{point.offered_load_tps:>8.0f} | "
            f"{stats.achieved_throughput_tps:>9.1f} | "
            f"{stats.cross.achieved_throughput_tps:>10.1f} | "
            f"{stats.mean_response_time:>8.1f} | "
            f"{work_per_commit(point):>11.2f} | "
            f"{stats.cross.abort_reasons.get('xpartition-validation', 0):>17}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry: run one partition sweep, optionally with a traced point.

    ``--trace PATH`` re-runs the largest sweep point with the span tracer
    enabled and writes the Chrome trace-event JSON (plus the critical-path
    report) there.
    """
    import argparse

    from ..gcs.engines import DEFAULT_ENGINE, engine_names

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short windows / fewer points for CI")
    parser.add_argument("--engine", default=DEFAULT_ENGINE,
                        choices=engine_names(),
                        help="total-order broadcast engine of every group")
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--cross", type=float, default=0.1,
                        help="cross-partition probability of the sweep")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace of the largest sweep "
                             "point to PATH (critical-path .txt next to it)")
    arguments = parser.parse_args(argv)
    counts = (1, 2, 4) if arguments.smoke else PARTITION_COUNTS
    duration = 6_000.0 if arguments.smoke else 12_000.0
    # Only materialise a parameter set when deviating from the default
    # engine, so default runs keep run_partition_point's own parameters.
    params = None if arguments.engine == DEFAULT_ENGINE else \
        SimulationParameters.small(server_count=3, item_count=400) \
        .with_overrides(broadcast_engine=arguments.engine)
    points = partition_sweep(partition_counts=counts,
                             cross_partition_probability=arguments.cross,
                             duration_ms=duration, seed=arguments.seed,
                             params=params)
    print(f"engine: {arguments.engine}")
    print(render_partition_sweep(points))
    if arguments.trace:
        from pathlib import Path

        from ..obs.export import write_chrome_trace, \
            write_critical_path_report
        traced = run_partition_point(
            partition_count=counts[-1],
            cross_partition_probability=arguments.cross,
            duration_ms=duration, seed=arguments.seed, params=params,
            observability=True)
        trace_path = Path(arguments.trace)
        write_chrome_trace(trace_path, traced.statistics.obs,
                           metadata={"scenario": "partition-scaling",
                                     "partitions": counts[-1],
                                     "seed": arguments.seed})
        write_critical_path_report(trace_path.with_suffix(".txt"),
                                   traced.statistics.obs)
        print(f"trace written to {trace_path} (critical-path report: "
              f"{trace_path.with_suffix('.txt')})")
    return 0


def render_partition_sweep(points: Sequence[PartitionPoint]) -> str:
    """Text rendering of one partition sweep."""
    header = (f"{'partitions':>10} | {'xpart %':>7} | {'offered':>8} | "
              f"{'tput tps':>9} | {'mean rt':>8} | {'p95 rt':>8} | "
              f"{'p99 rt':>8} | {'aborts':>6}")
    lines = [header, "-" * len(header)]
    for point in points:
        stats = point.statistics
        lines.append(
            f"{point.partition_count:>10} | "
            f"{point.cross_partition_probability:>7.0%} | "
            f"{point.offered_load_tps:>8.0f} | "
            f"{stats.achieved_throughput_tps:>9.1f} | "
            f"{stats.mean_response_time:>8.1f} | "
            f"{stats.percentile(0.95):>8.1f} | "
            f"{stats.percentile(0.99):>8.1f} | "
            f"{stats.measured_aborts:>6}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
