"""The Fig. 9 experiment: response time vs. offered load.

The paper's simulation compares group-safe replication (Fig. 8), group-1-safe
replication (Fig. 2) and lazy (1-safe) replication on the Table 4
configuration, for offered loads between 20 and 40 transactions per second.
The reported metric is the mean client response time of committed
transactions; the paper additionally notes that the group-safe technique's
abort rate stays constant slightly below 7 %.

:func:`run_load_point` evaluates one (technique, load) pair;
:func:`figure9_sweep` produces the whole figure.  The defaults use the exact
Table 4 parameters; tests and benchmarks pass shorter durations to keep the
wall-clock time reasonable (the shapes are already stable with a few hundred
transactions per point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..replication.cluster import ReplicatedDatabaseCluster
from ..workload.clients import OpenLoopClientPool
from ..workload.params import SimulationParameters

#: The three curves of Fig. 9.
FIGURE9_TECHNIQUES = ("group-safe", "group-1-safe", "1-safe")

#: The load points of Fig. 9's X axis (transactions per second).
FIGURE9_LOADS = tuple(range(20, 41, 2))


@dataclass
class LoadPoint:
    """One point of a Fig. 9 curve."""

    technique: str
    offered_load_tps: float
    mean_response_time_ms: float
    p90_response_time_ms: float
    abort_rate: float
    committed_transactions: int
    aborted_transactions: int
    achieved_throughput_tps: float
    simulated_ms: float


def run_load_point(technique: str, load_tps: float,
                   params: Optional[SimulationParameters] = None,
                   seed: int = 0, duration_ms: float = 30_000.0,
                   warmup_ms: float = 5_000.0) -> LoadPoint:
    """Simulate one technique at one offered load and summarise the run."""
    parameters = params or SimulationParameters.paper()
    cluster = ReplicatedDatabaseCluster(technique, params=parameters, seed=seed)
    cluster.start()
    clients = OpenLoopClientPool(cluster, load_tps=load_tps, warmup=warmup_ms)
    clients.start()
    cluster.run(until=duration_ms)

    committed = clients.committed
    aborted = clients.aborted
    measured_ms = max(1.0, duration_ms - warmup_ms)
    response_times = sorted(result.response_time for result in committed)
    p90 = 0.0
    if response_times:
        index = min(len(response_times) - 1, int(0.9 * (len(response_times) - 1)))
        p90 = response_times[index]
    return LoadPoint(
        technique=technique,
        offered_load_tps=load_tps,
        mean_response_time_ms=clients.mean_response_time(),
        p90_response_time_ms=p90,
        abort_rate=clients.abort_rate(),
        committed_transactions=len(committed),
        aborted_transactions=len(aborted),
        achieved_throughput_tps=len(committed) / (measured_ms / 1000.0),
        simulated_ms=duration_ms)


def figure9_sweep(loads: Sequence[float] = FIGURE9_LOADS,
                  techniques: Sequence[str] = FIGURE9_TECHNIQUES,
                  params: Optional[SimulationParameters] = None,
                  seed: int = 0, duration_ms: float = 30_000.0,
                  warmup_ms: float = 5_000.0) -> List[LoadPoint]:
    """Evaluate every (technique, load) combination of Fig. 9."""
    points: List[LoadPoint] = []
    for technique in techniques:
        for load in loads:
            points.append(run_load_point(technique, load, params=params,
                                         seed=seed, duration_ms=duration_ms,
                                         warmup_ms=warmup_ms))
    return points


def curves(points: Sequence[LoadPoint]) -> Dict[str, List[LoadPoint]]:
    """Group sweep points into per-technique curves sorted by load."""
    by_technique: Dict[str, List[LoadPoint]] = {}
    for point in points:
        by_technique.setdefault(point.technique, []).append(point)
    for series in by_technique.values():
        series.sort(key=lambda point: point.offered_load_tps)
    return by_technique


def crossover_load(points: Sequence[LoadPoint], first: str = "group-safe",
                   second: str = "1-safe") -> Optional[float]:
    """The lowest load at which ``first`` stops outperforming ``second``.

    Returns ``None`` if ``first`` stays faster over the whole sweep — the
    paper reports a crossover around 38 tps for group-safe vs. lazy.
    """
    series = curves(points)
    if first not in series or second not in series:
        return None
    second_by_load = {point.offered_load_tps: point
                      for point in series[second]}
    for point in series[first]:
        other = second_by_load.get(point.offered_load_tps)
        if other is None:
            continue
        if point.mean_response_time_ms > other.mean_response_time_ms:
            return point.offered_load_tps
    return None


def render_figure9(points: Sequence[LoadPoint]) -> str:
    """Text rendering of the Fig. 9 series (used by benchmarks and examples)."""
    series = curves(points)
    loads = sorted({point.offered_load_tps for point in points})
    header = f"{'load (tps)':>10} | " + " | ".join(
        f"{technique:>14}" for technique in series)
    lines = [header, "-" * len(header)]
    for load in loads:
        cells = []
        for technique in series:
            match = [point for point in series[technique]
                     if point.offered_load_tps == load]
            cells.append(f"{match[0].mean_response_time_ms:>11.1f} ms"
                         if match else f"{'—':>14}")
        lines.append(f"{load:>10g} | " + " | ".join(cells))
    abort_lines = []
    for technique, serie in series.items():
        rates = [point.abort_rate for point in serie]
        if rates:
            abort_lines.append(f"  {technique}: "
                               f"{min(rates):.1%} – {max(rates):.1%}")
    if abort_lines:
        lines.append("")
        lines.append("abort rates across the sweep:")
        lines.extend(abort_lines)
    return "\n".join(lines)
