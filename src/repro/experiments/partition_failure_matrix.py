"""Partitioned failure-injection matrix: Tables 2/3 for a sharded cluster.

The single-group failure matrix (:mod:`repro.experiments.failure_matrix`)
confronts the paper's derived loss conditions with concrete crash schedules
on one replica group.  This module extends the same discipline to the
partitioned subsystem: every (technique, shard count, crash pattern) cell
derives a predicted-loss verdict by composing the per-shard criteria with
the 2PC blocking rules (:func:`repro.core.matrix.partitioned_loss_condition`),
runs the concrete schedule through the crash-injection failpoints of
:class:`~repro.partition.cluster.PartitionedCluster` (deterministic crash
points keyed to WAL / 2PC / migration phase, never to wall time), and audits
per-key commit integrity.

Crash-pattern taxonomy (:data:`PARTITIONED_CRASH_PATTERNS`):

* **shard-local** — ``none``, ``shard-delegate``, ``shard-outage`` (the
  whole group of one shard crashes, the delegate never recovers) and
  ``shard-outage-recover-all``.  These are the single-group Table 2/3
  patterns replayed *inside* one shard of a live partitioned cluster, with
  the extra observation that the other shards keep serving.
* **coordinator** — ``coordinator-before-decision`` (the home delegate, and
  with it the 2PC coordinator, crashes after every branch voted yes but
  before the decision record is durable: nothing was installed, the client
  is answered with an abort) and ``coordinator-after-decision`` (the crash
  lands after the forced DECISION record: the client blocks — classic 2PC —
  and decision replay finishes phase 2 on recovery).
* **mid-migration** — ``migration-source-copy`` (whole source group dies
  during the warm copy; the migration must abort and leave the old owner
  authoritative), ``migration-dest-fence`` (the destination group dies under
  the write fence; the fence must lift and the source serve again) and
  ``migration-post-epoch`` (the old owner dies right after the new map's
  EPOCH record is durable on the destination but before the old owner
  learns of it; recovery must come up with the *new* map and the
  destination must serve the migrated keys).

Two properties are checked per cell, exactly as in the single-group matrix:
**soundness** (a "No Transaction Loss" verdict is never contradicted, and
the run's invariants — atomicity, resolution of every client, routing-map
crash consistency, post-pattern availability — all hold) and
**demonstration** (the predicted-possible-loss cells exhibit at least one
concrete losing schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.criteria import safety_of_technique
from ..core.durability import transaction_fate
from ..core.matrix import partitioned_loss_condition
from ..core.safety import SafetyLevel
from ..db.operations import Operation, OperationType, TransactionProgram
from ..partition.cluster import MigrationReport, PartitionedCluster
from ..partition.coordinator import CrossPartitionOutcome
from ..workload.params import SimulationParameters

#: The partitioned crash patterns, with one-line descriptions (the taxonomy
#: of the module docstring; validated by :func:`run_partitioned_crash_scenario`).
PARTITIONED_CRASH_PATTERNS: Dict[str, str] = {
    "none": "no crash (audit-machinery baseline)",
    "shard-delegate": "the delegate of the owning shard crashes, stays down",
    "shard-outage": "whole-shard outage; only the non-delegates recover",
    "shard-outage-recover-all": "whole-shard outage; every server recovers",
    "coordinator-before-decision": "home delegate dies after the votes, "
                                   "before the decision is durable",
    "coordinator-after-decision": "home delegate dies after the forced "
                                  "DECISION record, mid phase 2",
    "migration-source-copy": "source group dies during the warm copy",
    "migration-dest-fence": "destination group dies under the write fence",
    "migration-post-epoch": "old owner dies after the EPOCH record is "
                            "durable on the destination",
}

#: Patterns every matrix run must include for the acceptance bars
#: (whole-shard outage, a coordinator crash, two mid-migration points).
REQUIRED_PATTERN_CLASSES: Dict[str, Tuple[str, ...]] = {
    "whole-shard outage": ("shard-outage", "shard-outage-recover-all"),
    "coordinator crash": ("coordinator-before-decision",
                          "coordinator-after-decision"),
    "mid-migration copy crash": ("migration-source-copy",),
    "mid-migration fence/handoff crash": ("migration-dest-fence",
                                          "migration-post-epoch"),
}

DEFAULT_TECHNIQUES = ("0-safe", "1-safe", "group-safe", "group-1-safe",
                      "2-safe")
#: The reduced technique set of the CI smoke run — still spans a lazy
#: technique (demonstrates delegate-crash loss), a group-based one
#: (demonstrates whole-shard loss) and 2-safe (never loses).
SMOKE_TECHNIQUES = ("1-safe", "group-safe", "2-safe")


# --------------------------------------------------------------------------- outcome types
@dataclass
class ShardStatus:
    """What the crash pattern did to one shard the audited transaction needs."""

    partition_id: int
    group_failed: bool
    #: Crashed and never recovered (the Table 3 meaning of "Sd crashes").
    delegate_crashed: bool


@dataclass
class ConfirmedWrite:
    """One client-confirmed update, for the per-key commit-integrity audit."""

    txn_id: str
    #: The group that committed (and confirmed) it.
    partition_id: int
    values: Dict[str, str]


@dataclass
class PartitionedScenarioOutcome:
    """Everything one partitioned failure scenario produced, audited."""

    technique: str
    crash_pattern: str
    shard_count: int
    #: Was the audited transaction confirmed to its client?
    confirmed: bool
    #: Statuses of the shards the audited transaction's durability depends on.
    audited_shards: List[ShardStatus] = field(default_factory=list)
    #: True if a confirmed write is gone from every server that could serve it.
    transaction_lost: bool = False
    #: Per-key commit-integrity audit failures (lost / duplicated / missing).
    audit_failures: List[str] = field(default_factory=list)
    #: An aborted transaction installed writes nowhere (all-or-nothing).
    atomicity_ok: bool = True
    #: Every submitted client transaction was eventually answered.
    resolved: bool = True
    #: The client was already answered while the crashed coordinator was
    #: still down (the bounded decision wait of ``coordinator-before-
    #: decision``; trivially True for every other pattern).
    resolved_before_recovery: bool = True
    #: The client was observably blocked before the recovery (2PC patterns).
    blocked_before_recovery: bool = False
    #: A fresh transaction committed after the pattern ran its course.
    fresh_commit_ok: bool = True
    #: The ownership map a restarted cluster would recover matches the map
    #: the live cluster serves (the migration crash-consistency contract).
    routing_consistent: bool = True
    #: The migration resolved the way the pattern demands (aborted with the
    #: right reason, or completed verified).  None for non-migration patterns.
    migration_ok: Optional[bool] = None
    migration: Optional[MigrationReport] = None
    cross: Optional[CrossPartitionOutcome] = None
    crashed_servers: List[str] = field(default_factory=list)
    recovered_servers: List[str] = field(default_factory=list)

    @property
    def invariants_ok(self) -> bool:
        """The pattern's loss-independent invariants all held."""
        return (self.atomicity_ok and self.resolved
                and self.resolved_before_recovery
                and self.fresh_commit_ok and self.routing_consistent
                and self.migration_ok is not False
                and not any(failure.startswith("duplicated")
                            for failure in self.audit_failures))


@dataclass
class PartitionedMatrixEntry:
    """One (technique, shard count, crash pattern) cell of the matrix."""

    technique: str
    level: SafetyLevel
    shard_count: int
    crash_pattern: str
    predicted_possible_loss: bool
    observed_loss: bool
    outcome: PartitionedScenarioOutcome

    @property
    def sound(self) -> bool:
        """True if the observation does not contradict the prediction.

        Beyond the single-group rule (no observed loss in a no-loss cell),
        a partitioned cell also demands the pattern's invariants: 2PC
        atomicity, every client answered, the recovered routing map
        consistent with the served one, and post-pattern availability.
        """
        return ((self.predicted_possible_loss or not self.observed_loss)
                and self.outcome.invariants_ok)


# --------------------------------------------------------------------------- helpers
def _update_program(values: Dict[str, str], client: str) -> TransactionProgram:
    operations = tuple(Operation(OperationType.WRITE, key, value)
                       for key, value in values.items())
    return TransactionProgram(operations=operations, client=client)


def _advance_until(cluster: PartitionedCluster, condition, limit: float,
                   step: float = 5.0) -> bool:
    """Advance the simulation until ``condition()`` (False if ``limit`` hit)."""
    while not condition():
        if cluster.sim.now >= limit:
            return False
        cluster.run(until=min(limit, cluster.sim.now + step))
    return True


def _confirm_write(cluster: PartitionedCluster, keys: Sequence[str],
                   tag: str, limit_ms: float = 5_000.0) -> ConfirmedWrite:
    """Submit one update-only transaction and wait for its confirmation."""
    values = {key: f"{tag}:{key}" for key in keys}
    waiter = cluster.run_transaction(_update_program(values, client=tag))
    result = cluster.sim.run_until_complete(
        waiter, limit=cluster.sim.now + limit_ms)
    if not result.committed:
        raise RuntimeError(
            f"setup transaction {result.txn_id} failed to confirm "
            f"({result.abort_reason}); the scenario cannot run")
    return ConfirmedWrite(txn_id=result.txn_id,
                          partition_id=cluster.partition_of(keys[0]),
                          values=values)


def _probe_commit(cluster: PartitionedCluster, keys: Sequence[str],
                  tag: str, limit_ms: float = 5_000.0) -> bool:
    """True if a fresh update on ``keys`` commits within ``limit_ms``."""
    waiter = cluster.run_transaction(
        _update_program({key: f"{tag}:{key}" for key in keys}, client=tag))
    if not _advance_until(cluster, lambda: waiter.triggered,
                          limit=cluster.sim.now + limit_ms):
        return False
    return bool(getattr(waiter.value, "committed", False))


def _shard_keys(cluster: PartitionedCluster, shard: int,
                count: int = 3) -> List[str]:
    """Distinct item keys inside ``shard``'s current range (range strategy)."""
    key_range = cluster.routing.range_of(shard)
    width = key_range.width
    positions = sorted({key_range.lo + (index + 1) * width // (count + 1)
                        for index in range(count)})
    return [f"item-{position}" for position in positions]


def _probe_key(cluster: PartitionedCluster, shard: int) -> str:
    """A key of ``shard`` disjoint from :func:`_shard_keys` (first position).

    Probe transactions write fresh values; keeping them off the audited
    keys keeps the per-key audit's expected values intact.
    """
    return f"item-{cluster.routing.range_of(shard).lo}"


def audit_confirmed_writes(cluster: PartitionedCluster,
                           writes: Sequence[ConfirmedWrite]
                           ) -> Tuple[List[str], bool]:
    """Per-key commit-integrity audit of confirmed writes after a pattern.

    For every confirmed write: **no duplicated commit** (its transaction is
    recorded as committed on at most one group) and **no lost commit** —
    if the currently-owning group is the one that confirmed it, the
    transaction's :func:`~repro.core.durability.transaction_fate` must not
    be lost; if ownership moved (a migration completed mid-pattern), the
    new owner must serve every written value.  Returns ``(failures,
    lost_any)`` where ``lost_any`` flags an actual transaction loss (the
    matrix's *observed* axis) as opposed to a duplication.
    """
    failures: List[str] = []
    lost_any = False
    for write in writes:
        committed_groups = [
            partition_id for partition_id in range(cluster.partition_count)
            if cluster.group(partition_id).committed_anywhere(write.txn_id)]
        if len(committed_groups) > 1:
            failures.append(f"duplicated commit: {write.txn_id} recorded on "
                            f"groups {committed_groups}")
        owner = cluster.partition_of(next(iter(write.values)))
        group = cluster.group(owner)
        if owner == write.partition_id:
            fate = transaction_fate(group, write.txn_id,
                                    confirmed_to_client=True)
            if fate.is_lost:
                lost_any = True
                failures.append(
                    f"lost commit: {write.txn_id} is gone from every "
                    f"surviving server of its owning group {owner}")
        else:
            up_servers = group.up_servers()
            served = bool(up_servers) and all(
                any(group.database(name).value_of(key) == value
                    for name in up_servers)
                for key, value in write.values.items())
            if not served:
                lost_any = True
                failures.append(
                    f"lost commit: {write.txn_id} moved to group {owner} "
                    f"but its values are not served there")
    return failures, lost_any


def _freeze_non_delegates(cluster: PartitionedCluster, partition_id: int,
                          delegate: str) -> None:
    group = cluster.group(partition_id)
    for name in group.server_names():
        if name != delegate:
            group.replica(name).processing_gate.close()


def _open_gates(cluster: PartitionedCluster, partition_id: int) -> None:
    group = cluster.group(partition_id)
    for name in group.server_names():
        group.replica(name).processing_gate.open()


def _recover_group(cluster: PartitionedCluster, partition_id: int,
                   servers: Sequence[str], step_ms: float = 50.0) -> None:
    for name in servers:
        cluster.recover_server(partition_id, name)
        cluster.run(until=cluster.sim.now + step_ms)


# --------------------------------------------------------------------------- scenarios
def run_partitioned_crash_scenario(technique: str, crash_pattern: str,
                                   shard_count: int = 2, seed: int = 1,
                                   params: Optional[SimulationParameters]
                                   = None,
                                   settle_ms: float = 2_000.0
                                   ) -> PartitionedScenarioOutcome:
    """Run one partitioned failure-injection scenario and audit it.

    Builds a range-sharded cluster of ``shard_count`` groups (all running
    ``technique``), confirms an update inside shard 0's range, injects the
    pattern's crash — through a deterministic failpoint for the 2PC and
    migration patterns — runs the recoveries, and audits the aftermath.
    """
    if crash_pattern not in PARTITIONED_CRASH_PATTERNS:
        raise ValueError(
            f"unknown crash pattern {crash_pattern!r}; expected one of "
            f"{sorted(PARTITIONED_CRASH_PATTERNS)}")
    if shard_count < 2:
        raise ValueError("the partitioned matrix needs at least 2 shards")
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=100)
    parameters = parameters.with_overrides(
        partition_count=shard_count, cross_partition_probability=0.0)
    cluster = PartitionedCluster(technique, params=parameters, seed=seed,
                                 strategy="range")
    cluster.start()
    if crash_pattern in ("coordinator-before-decision",
                         "coordinator-after-decision"):
        return _run_coordinator_pattern(cluster, technique, crash_pattern,
                                        settle_ms)
    if crash_pattern in ("migration-source-copy", "migration-dest-fence",
                         "migration-post-epoch"):
        return _run_migration_pattern(cluster, technique, crash_pattern,
                                      settle_ms)
    return _run_shard_pattern(cluster, technique, crash_pattern, settle_ms)


def _run_shard_pattern(cluster: PartitionedCluster, technique: str,
                       pattern: str, settle_ms: float
                       ) -> PartitionedScenarioOutcome:
    """The single-group Table 2/3 patterns, replayed inside shard 0."""
    sim = cluster.sim
    group = cluster.group(0)
    names = group.server_names()
    delegate = group.choose_delegate(0)
    remote_shard = cluster.partition_count - 1
    freeze = pattern in ("shard-outage", "shard-outage-recover-all")
    if freeze:
        # The Fig. 5 window: the non-delegates crash after *delivering* the
        # transaction's message but before processing it.
        _freeze_non_delegates(cluster, 0, delegate)

    write = _confirm_write(cluster, _shard_keys(cluster, 0), tag=pattern)
    sim.run(until=sim.now + 10.0)

    non_delegates = [name for name in names if name != delegate]
    if pattern == "none":
        crashed: List[str] = []
        recovered: List[str] = []
    elif pattern == "shard-delegate":
        crashed, recovered = [delegate], []
        cluster.crash_server(0, delegate)
    else:
        crashed = list(names)
        recovered = (non_delegates if pattern == "shard-outage"
                     else non_delegates + [delegate])
        cluster.crash_partition(0)
    sim.run(until=sim.now + 5.0)
    _open_gates(cluster, 0)
    _recover_group(cluster, 0, recovered)
    sim.run(until=sim.now + settle_ms)

    outcome = PartitionedScenarioOutcome(
        technique=technique, crash_pattern=pattern,
        shard_count=cluster.partition_count, confirmed=True,
        crashed_servers=crashed, recovered_servers=recovered)
    outcome.audited_shards = [ShardStatus(
        partition_id=0,
        group_failed=len(crashed) > len(names) // 2,
        delegate_crashed=delegate in crashed and delegate not in recovered)]
    # The outage is contained: the other shards keep serving.
    outcome.fresh_commit_ok = _probe_commit(
        cluster, [_probe_key(cluster, remote_shard)], tag=f"{pattern}.probe")
    outcome.audit_failures, outcome.transaction_lost = \
        audit_confirmed_writes(cluster, [write])
    outcome.routing_consistent = (
        cluster.recovered_routing().partition_of(
            next(iter(write.values))) == 0)
    return outcome


def _run_coordinator_pattern(cluster: PartitionedCluster, technique: str,
                             pattern: str, settle_ms: float
                             ) -> PartitionedScenarioOutcome:
    """Home-delegate (= coordinator) crashes around the 2PC decision point."""
    sim = cluster.sim
    remote_shard = cluster.partition_count - 1
    local_key = _shard_keys(cluster, 0, count=1)[0]
    remote_key = _shard_keys(cluster, remote_shard, count=1)[0]
    values = {local_key: f"{pattern}:{local_key}",
              remote_key: f"{pattern}:{remote_key}"}

    crash_site: Dict[str, object] = {}

    def crash_home(context: Dict[str, object]) -> None:
        home = context["home"]
        server = context["delegates"][home]
        crash_site.update(partition=home, server=server)
        cluster.crash_server(home, server)

    phase = ("2pc.prepared" if pattern == "coordinator-before-decision"
             else "2pc.decided")
    cluster.add_failpoint(phase, crash_home)
    waiter = cluster.run_transaction(_update_program(values, client=pattern))

    outcome = PartitionedScenarioOutcome(
        technique=technique, crash_pattern=pattern,
        shard_count=cluster.partition_count, confirmed=False)
    if pattern == "coordinator-before-decision":
        # The decision was never durable: the coordinator aborts (bounded
        # decision wait) and the client is answered while the crashed home
        # delegate is still down — nothing installed, nobody waits for it.
        outcome.resolved_before_recovery = _advance_until(
            cluster, lambda: waiter.triggered, limit=sim.now + 8_000.0)
    else:
        # The decision is durable: the client blocks (classic 2PC) until
        # the recovered home delegate replays the DECISION record.
        sim.run(until=sim.now + 1_500.0)
        outcome.blocked_before_recovery = not waiter.triggered
    assert crash_site, "the 2PC failpoint never fired"
    cluster.recover_server(crash_site["partition"], crash_site["server"])
    outcome.recovered_servers = [crash_site["server"]]
    outcome.crashed_servers = [crash_site["server"]]
    outcome.resolved = _advance_until(cluster, lambda: waiter.triggered,
                                      limit=sim.now + 20_000.0)
    sim.run(until=sim.now + settle_ms)

    cross = waiter.value if waiter.triggered else None
    outcome.cross = cross
    outcome.confirmed = bool(cross is not None and cross.committed)
    involved = (0, remote_shard)
    # Every involved delegate is up again: each branch enters the
    # composition as an ordinary no-crash shard (the 2PC blocking rules
    # turn the coordinator crash into delay, not loss).
    outcome.audited_shards = [
        ShardStatus(partition_id=pid, group_failed=False,
                    delegate_crashed=False) for pid in involved]
    if outcome.confirmed:
        writes = []
        for branch in cross.branches:
            if branch.txn_id is None:
                continue
            branch_values = {
                key: value for key, value in values.items()
                if cluster.partition_of(key) == branch.partition_id}
            writes.append(ConfirmedWrite(txn_id=branch.txn_id,
                                         partition_id=branch.partition_id,
                                         values=branch_values))
        outcome.audit_failures, outcome.transaction_lost = \
            audit_confirmed_writes(cluster, writes)
    else:
        # Atomicity of the abort: none of the transaction's values may have
        # been installed on any server of any group.
        installed = [
            (key, name)
            for partition_id in range(cluster.partition_count)
            for name in cluster.group(partition_id).server_names()
            for key, value in values.items()
            if cluster.group(partition_id).database(name).value_of(key)
            == value]
        outcome.atomicity_ok = not installed
        if installed:
            outcome.audit_failures.append(
                f"partial install of aborted transaction: {installed}")
    outcome.fresh_commit_ok = (
        _probe_commit(cluster, [_probe_key(cluster, 0)],
                      tag=f"{pattern}.probe0")
        and _probe_commit(cluster, [_probe_key(cluster, remote_shard)],
                          tag=f"{pattern}.probe1"))
    return outcome


def _run_migration_pattern(cluster: PartitionedCluster, technique: str,
                           pattern: str, settle_ms: float
                           ) -> PartitionedScenarioOutcome:
    """Whole-group crashes at deterministic points of a live migration."""
    sim = cluster.sim
    source, destination = 0, cluster.partition_count - 1
    target_keys = _shard_keys(cluster, source)
    write = _confirm_write(cluster, target_keys, tag=pattern)
    # Let the confirmed write finish processing and reach the delegate's
    # log before anything crashes (the lazy techniques confirm early).
    sim.run(until=sim.now + 150.0)

    phase = {"migration-source-copy": "migration.copy-chunk",
             "migration-dest-fence": "migration.fence",
             "migration-post-epoch": "migration.epoch-logged"}[pattern]
    crashed_group = destination if pattern == "migration-dest-fence" \
        else source
    cluster.add_failpoint(
        phase, lambda context: cluster.crash_partition(crashed_group))
    driver = cluster.migrate(source, destination, chunk_size=8)
    if not _advance_until(cluster, lambda: driver.triggered,
                          limit=sim.now + 30_000.0):
        raise RuntimeError(f"migration driver never finished under "
                           f"pattern {pattern!r}")
    report = cluster.migration_reports[-1]

    outcome = PartitionedScenarioOutcome(
        technique=technique, crash_pattern=pattern,
        shard_count=cluster.partition_count, confirmed=True,
        migration=report)
    group = cluster.group(crashed_group)
    outcome.crashed_servers = list(group.server_names())

    if pattern == "migration-source-copy":
        outcome.migration_ok = (report.aborted
                                and report.abort_reason
                                == "source-unavailable")
        owner, group_failed = source, True
    elif pattern == "migration-dest-fence":
        outcome.migration_ok = (report.aborted
                                and report.abort_reason
                                == "destination-unavailable")
        owner, group_failed = source, False
        # The fence must have lifted with the abort: the range accepts
        # writes again while the destination group is still down.
        outcome.fresh_commit_ok = _probe_commit(
            cluster, [_probe_key(cluster, source)], tag=f"{pattern}.unfenced")
    else:  # migration-post-epoch
        outcome.migration_ok = bool(report.completed and report.verified)
        owner, group_failed = destination, False
        # The handoff must already serve: the migrated range commits on
        # the destination while the old owner is still down.
        outcome.fresh_commit_ok = _probe_commit(
            cluster, [_probe_key(cluster, 0)], tag=f"{pattern}.handoff")

    delegate = group.server_names()[0]
    non_delegates = [name for name in group.server_names()
                     if name != delegate]
    _recover_group(cluster, crashed_group, non_delegates + [delegate])
    outcome.recovered_servers = non_delegates + [delegate]
    sim.run(until=sim.now + settle_ms)

    outcome.audited_shards = [ShardStatus(partition_id=owner,
                                          group_failed=group_failed,
                                          delegate_crashed=False)]
    served_by = cluster.partition_of(target_keys[0])
    recovered_by = cluster.recovered_routing().partition_of(target_keys[0])
    outcome.routing_consistent = served_by == owner == recovered_by
    failures, lost = audit_confirmed_writes(cluster, [write])
    outcome.audit_failures.extend(failures)
    outcome.transaction_lost = lost
    if outcome.fresh_commit_ok:
        outcome.fresh_commit_ok = _probe_commit(
            cluster, [_probe_key(cluster, destination)],
            tag=f"{pattern}.probe")
    return outcome


# --------------------------------------------------------------------------- the matrix
def _matrix_cell(cell) -> PartitionedMatrixEntry:
    """Run one (technique, shard count, crash pattern) cell — module-level
    so a process pool can pickle it; each cell is an independent simulation."""
    technique, pattern, shard_count, seed, params = cell
    level = safety_of_technique(technique)
    outcome = run_partitioned_crash_scenario(
        technique, pattern, shard_count=shard_count, seed=seed,
        params=params)
    predicted = outcome.confirmed and partitioned_loss_condition(
        (level, status.group_failed, status.delegate_crashed)
        for status in outcome.audited_shards)
    return PartitionedMatrixEntry(
        technique=technique, level=level, shard_count=shard_count,
        crash_pattern=pattern,
        predicted_possible_loss=predicted,
        observed_loss=outcome.transaction_lost,
        outcome=outcome)


def run_partitioned_failure_matrix(techniques: Optional[Sequence[str]] = None,
                                   patterns: Optional[Sequence[str]] = None,
                                   shard_count: int = 2, seed: int = 1,
                                   params: Optional[SimulationParameters]
                                   = None,
                                   workers: int = 1
                                   ) -> List[PartitionedMatrixEntry]:
    """Run every (technique, shard count, crash pattern) cell of the matrix.

    The predicted verdict composes the per-shard Table 3 conditions over
    the shards the audited transaction depends on
    (:func:`~repro.core.matrix.partitioned_loss_condition`), guarded by the
    confirmation rule: a transaction that was never confirmed to its client
    cannot be *lost* in the sense of the paper, whatever happens to it.

    With ``workers > 1`` the cells fan out over a process pool; the entry
    list keeps the serial (technique-major) order either way, because
    ``Pool.map`` returns results in submission order regardless of which
    worker finished first.
    """
    chosen = list(techniques) if techniques is not None \
        else list(DEFAULT_TECHNIQUES)
    chosen_patterns = list(patterns) if patterns is not None \
        else list(PARTITIONED_CRASH_PATTERNS)
    cells = [(technique, pattern, shard_count, seed, params)
             for technique in chosen
             for pattern in chosen_patterns]
    if workers > 1:
        import multiprocessing
        with multiprocessing.Pool(min(workers, len(cells))) as pool:
            return pool.map(_matrix_cell, cells)
    return [_matrix_cell(cell) for cell in cells]


def partitioned_soundness_violations(entries: Sequence[PartitionedMatrixEntry]
                                     ) -> List[PartitionedMatrixEntry]:
    """Cells whose observation contradicts the prediction or invariants."""
    return [entry for entry in entries if not entry.sound]


def partitioned_demonstrated_losses(entries: Sequence[PartitionedMatrixEntry]
                                    ) -> List[PartitionedMatrixEntry]:
    """Predicted-possible-loss cells whose schedule actually lost."""
    return [entry for entry in entries
            if entry.predicted_possible_loss and entry.observed_loss]


def missing_pattern_classes(entries: Sequence[PartitionedMatrixEntry]
                            ) -> List[str]:
    """Required pattern classes (acceptance bars) no entry covers."""
    run_patterns = {entry.crash_pattern for entry in entries}
    return [label
            for label, members in REQUIRED_PATTERN_CLASSES.items()
            if not run_patterns.intersection(members)]


def render_partitioned_matrix(entries: Sequence[PartitionedMatrixEntry]
                              ) -> str:
    """Human-readable rendering of the partitioned matrix (report file)."""
    header = (f"{'technique':>14} | {'shards':>6} | {'pattern':>28} | "
              f"{'predicted':>10} | {'observed':>9} | {'invariants':>10} | "
              f"sound")
    lines = [header, "-" * len(header)]
    for entry in entries:
        predicted = ("possible" if entry.predicted_possible_loss
                     else "no loss")
        observed = "LOST" if entry.observed_loss else "kept"
        invariants = "ok" if entry.outcome.invariants_ok else "VIOLATED"
        lines.append(
            f"{entry.technique:>14} | {entry.shard_count:>6} | "
            f"{entry.crash_pattern:>28} | {predicted:>10} | "
            f"{observed:>9} | {invariants:>10} | {entry.sound}")
    violations = partitioned_soundness_violations(entries)
    demonstrated = partitioned_demonstrated_losses(entries)
    lines.append("")
    lines.append(f"cells: {len(entries)}  soundness violations: "
                 f"{len(violations)}  demonstrated losses: "
                 f"{len(demonstrated)}")
    for entry in violations:
        lines.append(f"  VIOLATION {entry.technique}/{entry.crash_pattern}: "
                     f"{entry.outcome.audit_failures}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- CLI
def main(argv: Optional[List[str]] = None) -> int:
    """CLI / CI smoke entry: run the matrix and enforce the acceptance bars.

    Exits non-zero on any soundness violation, on a run that fails to
    demonstrate a loss in a predicted-possible-loss cell, or on a run
    missing one of the required pattern classes — so a regression in the
    partitioned crash handling fails CI even without the benchmark job.
    """
    from ..gcs.engines import DEFAULT_ENGINE
    from .report import matrix_cli

    def run(arguments):
        techniques = (SMOKE_TECHNIQUES if arguments.smoke
                      else DEFAULT_TECHNIQUES)
        # Only materialise a parameter set when deviating from the default
        # engine, so default runs keep the scenarios' own parameters.
        params = None if arguments.engine == DEFAULT_ENGINE else \
            SimulationParameters.small(server_count=3, item_count=100) \
            .with_overrides(broadcast_engine=arguments.engine)
        entries = run_partitioned_failure_matrix(
            techniques=techniques, shard_count=arguments.shards,
            seed=arguments.seed, params=params, workers=arguments.workers)
        from .traced import maybe_write_scenario_trace
        maybe_write_scenario_trace(arguments.trace, seed=arguments.seed)
        return entries, render_partitioned_matrix(entries)

    def problems_of(entries) -> List[str]:
        problems: List[str] = []
        for label in missing_pattern_classes(entries):
            problems.append(f"required pattern class not exercised: {label}")
        violations = partitioned_soundness_violations(entries)
        if violations:
            problems.append(f"{len(violations)} soundness violations")
        if not partitioned_demonstrated_losses(entries):
            problems.append("no predicted-possible-loss cell demonstrated "
                            "a loss schedule")
        return problems

    return matrix_cli(
        argv, description=__doc__.splitlines()[0],
        report_name="partition_failure_matrix", run=run,
        problems_of=problems_of,
        extra_arguments=(
            ("--shards", dict(type=int, default=2,
                              help="shard count of every scenario "
                                   "(default 2)")),
            ("--trace", dict(default=None, metavar="PATH",
                             help="also run the canonical traced scenario "
                                  "and write its Chrome trace to PATH")),))


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
