"""Autobalance experiment: a controller repairing a hotspot shift by itself.

The rebalance experiment (:mod:`repro.experiments.rebalance`) shows that one
*operator-triggered* ``rebalance()`` call repairs a Zipf hot head.  This
experiment removes the operator: a :class:`~repro.partition.controller.
RebalanceController` watches windowed per-shard load, and mid-run the
workload's Zipf ranking is rotated (:meth:`~repro.partition.workload.
PartitionedWorkloadGenerator.shift_hotspot`) so the hot head jumps to a
different key region — the fault a static ownership map can never recover
from.  The controller must (a) repair the *initial* skew it observes after
warm-up, and (b) detect and repair the injected shift, both without any
``rebalance()`` call from the harness.

The comparison run is the identically seeded workload on the static epoch-0
map.  Measured per window: committed throughput before the shift, in the
repair window right after it, and in the recovered window at the end; the
hot group's commit share; the controller's decision counters (including the
skips — cooldown, hysteresis, below-threshold — that show the damping is
doing work); and the per-key commit-integrity audit of
:func:`~repro.experiments.rebalance.audit_commit_integrity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..partition.cluster import MigrationReport, PartitionedCluster
from ..partition.controller import ControllerStats, RebalanceController
from ..partition.routing import RoutingTable
from ..partition.stats import PartitionedRunStatistics, collect_statistics
from ..partition.workload import PartitionedOpenLoopClients
from ..workload.params import SimulationParameters
from .rebalance import audit_commit_integrity, window_commits

#: Default schedule (ms): measure, inject the shift, let the controller
#: repair, then measure the recovered steady state.
DEFAULT_WARMUP_MS = 2_000.0
DEFAULT_SHIFT_AT_MS = 6_000.0
DEFAULT_RECOVERY_MS = 11_000.0
DEFAULT_DURATION_MS = 17_000.0


@dataclass
class AutobalanceOutcome:
    """One run of the autobalance experiment (controlled or static)."""

    controlled: bool
    statistics: PartitionedRunStatistics
    #: The group owning the shifted hot head under the epoch-0 map.
    shifted_hot_group: int = 0
    #: Committed throughput (tps) per measurement window.
    pre_shift_tput: float = 0.0
    repair_tput: float = 0.0
    recovered_tput: float = 0.0
    #: Commit share of the shifted-to hot group, before the recovery window
    #: and inside it.
    hot_share_repair: float = 0.0
    hot_share_recovered: float = 0.0
    migrations: List[MigrationReport] = field(default_factory=list)
    controller_stats: Optional[ControllerStats] = None
    #: Commit-integrity audit: empty means zero lost / duplicated commits.
    audit_failures: List[str] = field(default_factory=list)
    wrong_epoch_retries: int = 0

    @property
    def audit_ok(self) -> bool:
        """True when the per-key commit audit found nothing."""
        return not self.audit_failures

    @property
    def completed_migrations(self) -> List[MigrationReport]:
        """Migrations that installed their epoch bump."""
        return [report for report in self.migrations if report.completed]


def run_autobalance_experiment(controlled: bool = True,
                               technique: str = "group-safe",
                               partitions: int = 4,
                               items: int = 400,
                               load_tps: float = 150.0,
                               zipf_skew: float = 1.1,
                               cross_partition_probability: float = 0.05,
                               shift_offset: Optional[int] = None,
                               warmup_ms: float = DEFAULT_WARMUP_MS,
                               shift_at_ms: float = DEFAULT_SHIFT_AT_MS,
                               recovery_ms: float = DEFAULT_RECOVERY_MS,
                               duration_ms: float = DEFAULT_DURATION_MS,
                               window_ms: float = 500.0,
                               share_threshold: float = 0.45,
                               cooldown_windows: int = 2,
                               hysteresis_windows: int = 4,
                               copy_concurrency: Optional[int] = None,
                               seed: int = 33,
                               params: Optional[SimulationParameters] = None,
                               observability: bool = False
                               ) -> AutobalanceOutcome:
    """Drive one (optionally controller-supervised) hotspot-shift run.

    Range sharding concentrates the Zipf head on group 0; at
    ``shift_at_ms`` the ranking rotates by ``shift_offset`` (default: half
    the keyspace) so the head jumps mid-keyspace.  With ``controlled`` a
    :class:`~repro.partition.controller.RebalanceController` runs from the
    start and must repair both the initial skew and the shift on its own;
    without it the epoch-0 map serves unchanged.
    """
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=items)
    parameters = parameters.with_overrides(
        partition_count=partitions, zipf_skew=zipf_skew,
        cross_partition_probability=cross_partition_probability)
    offset = shift_offset if shift_offset is not None else items // 2
    cluster = PartitionedCluster(technique, params=parameters, seed=seed,
                                 strategy="range")
    if observability:
        cluster.enable_observability()
    cluster.start()
    controller: Optional[RebalanceController] = None
    if controlled:
        controller = RebalanceController(
            cluster, window_ms=window_ms, share_threshold=share_threshold,
            cooldown_windows=cooldown_windows,
            hysteresis_windows=hysteresis_windows,
            copy_concurrency=copy_concurrency)
        controller.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=load_tps,
                                         warmup=warmup_ms)
    clients.start()
    cluster.run(until=shift_at_ms)
    cluster.workload.shift_hotspot(offset)
    cluster.run(until=duration_ms)

    statistics = collect_statistics(clients,
                                    duration_ms=duration_ms - warmup_ms)
    outcome = AutobalanceOutcome(controlled=controlled,
                                 statistics=statistics)
    # Where the shifted head lands under the *static* epoch-0 layout — the
    # group the uncontrolled run saturates after the shift.
    epoch0 = RoutingTable.from_strategy("range", partitions,
                                        parameters.item_count)
    outcome.shifted_hot_group = epoch0.partition_of(f"item-{offset}")
    hot = outcome.shifted_hot_group
    pre, _ = window_commits(clients, warmup_ms, shift_at_ms, hot_group=hot)
    repair, repair_hot = window_commits(clients, shift_at_ms, recovery_ms,
                                        hot_group=hot)
    recovered, recovered_hot = window_commits(clients, recovery_ms,
                                              duration_ms, hot_group=hot)
    outcome.pre_shift_tput = pre / ((shift_at_ms - warmup_ms) / 1000.0)
    outcome.repair_tput = repair / ((recovery_ms - shift_at_ms) / 1000.0)
    outcome.recovered_tput = recovered / ((duration_ms - recovery_ms) /
                                          1000.0)
    outcome.hot_share_repair = repair_hot / repair if repair else 0.0
    outcome.hot_share_recovered = (recovered_hot / recovered
                                   if recovered else 0.0)
    outcome.migrations = list(cluster.migration_reports)
    if controller is not None:
        outcome.controller_stats = controller.stats
    outcome.audit_failures = audit_commit_integrity(cluster, clients)
    outcome.wrong_epoch_retries = cluster.router.wrong_epoch_retries
    return outcome


def render_autobalance_report(static: AutobalanceOutcome,
                              controlled: AutobalanceOutcome) -> str:
    """Text report comparing the static map against the controlled run."""
    lines = [
        "Autobalance controller vs. static map under a Zipf hotspot shift",
        "",
        f"{'':>26} | {'static':>10} | {'controlled':>10}",
        "-" * 54,
    ]

    def row(label: str, static_value: str, controlled_value: str) -> None:
        lines.append(f"{label:>26} | {static_value:>10} | "
                     f"{controlled_value:>10}")

    row("pre-shift tput (tps)", f"{static.pre_shift_tput:.1f}",
        f"{controlled.pre_shift_tput:.1f}")
    row("repair-window tput (tps)", f"{static.repair_tput:.1f}",
        f"{controlled.repair_tput:.1f}")
    row("recovered tput (tps)", f"{static.recovered_tput:.1f}",
        f"{controlled.recovered_tput:.1f}")
    row("hot-group share (end)", f"{static.hot_share_recovered:.1%}",
        f"{controlled.hot_share_recovered:.1%}")
    row("migrations completed", f"{len(static.completed_migrations)}",
        f"{len(controlled.completed_migrations)}")
    row("wrong-epoch retries", f"{static.wrong_epoch_retries}",
        f"{controlled.wrong_epoch_retries}")
    row("audit", "ok" if static.audit_ok else "FAILED",
        "ok" if controlled.audit_ok else "FAILED")
    stats = controlled.controller_stats
    if stats is not None:
        lines += [
            "",
            f"controller: {stats.rebalances_triggered} rebalances over "
            f"{stats.windows_observed} windows "
            f"(skipped: {stats.skipped_below_threshold} below threshold, "
            f"{stats.skipped_cooldown} cooldown, "
            f"{stats.skipped_hysteresis} hysteresis, "
            f"{stats.skipped_migration_active} migration active)",
        ]
    for report in controlled.completed_migrations:
        lines.append(
            f"  moved {report.key_range!r} g{report.source_group}"
            f"->g{report.destination_group} epoch {report.epoch}: "
            f"copy {report.copy_duration_ms:.0f} ms "
            f"({report.copy_chunks} chunks, peak "
            f"{report.copy_inflight_peak} in flight, "
            f"{report.throttle_waits} throttle waits), fence "
            f"{report.fence_duration_ms:.0f} ms")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI / CI smoke entry: run both variants and check the controller.

    Exits non-zero when the controller failed to trigger, a migration
    failed verification, or the commit audit found a lost/duplicated
    commit — so a controller regression fails CI even without the full
    benchmark job.
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast configuration for CI")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="run the controlled variant with tracing on and "
                             "write a Chrome trace-event JSON (plus a "
                             "critical-path .txt report) to PATH")
    arguments = parser.parse_args(argv)
    overrides = {}
    if arguments.smoke:
        overrides = dict(items=240, load_tps=100.0)
    static = run_autobalance_experiment(controlled=False, **overrides)
    controlled = run_autobalance_experiment(
        controlled=True, observability=bool(arguments.trace), **overrides)
    print(render_autobalance_report(static, controlled))
    if arguments.trace:
        from pathlib import Path

        from ..obs.export import write_chrome_trace, \
            write_critical_path_report
        trace_path = Path(arguments.trace)
        write_chrome_trace(trace_path, controlled.statistics.obs,
                           metadata={"scenario": "autobalance",
                                     "smoke": arguments.smoke})
        write_critical_path_report(trace_path.with_suffix(".txt"),
                                   controlled.statistics.obs)
        print(f"trace written to {trace_path} (critical-path report: "
              f"{trace_path.with_suffix('.txt')})")
    stats = controlled.controller_stats
    problems = []
    if stats is None or stats.rebalances_triggered < 1:
        problems.append("controller never triggered a rebalance")
    if not controlled.completed_migrations:
        problems.append("no migration completed")
    if not all(report.verified
               for report in controlled.completed_migrations):
        problems.append("a migration completed without copy verification")
    if not static.audit_ok or not controlled.audit_ok:
        problems.append("commit-integrity audit failed")
    if controlled.recovered_tput <= static.recovered_tput:
        problems.append("controller did not beat the static map")
    for problem in problems:
        print(f"SMOKE FAILURE: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
