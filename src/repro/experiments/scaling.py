"""The Sect. 7 scaling experiment: lazy vs group-safe as the group grows.

Two complementary pieces of evidence are produced:

* the **analytic curves** from :mod:`repro.core.reliability` — the
  probability of an ACID violation per propagation window / failure epoch as
  a function of the number of servers (growing for lazy replication,
  shrinking for group-safe replication);
* a **simulation-backed divergence check**: a small cluster of each kind is
  driven with deliberately conflicting update transactions submitted
  concurrently at different servers; the lazy cluster is allowed to diverge
  (no conflict handling), the group-safe cluster must stay consistent because
  certification aborts one of the conflicting transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.audit import SafetyAudit
from ..core.reliability import ScalingPoint, scaling_comparison
from ..db.operations import Operation, OperationType, TransactionProgram
from ..replication.cluster import ReplicatedDatabaseCluster
from ..workload.params import SimulationParameters


@dataclass
class DivergenceOutcome:
    """Result of the conflicting-updates experiment on one technique."""

    technique: str
    submitted: int
    committed: int
    aborted: int
    divergent_items: List[str]

    @property
    def diverged(self) -> bool:
        """True if at least one item ended up with different values."""
        return bool(self.divergent_items)


def conflicting_updates_run(technique: str, conflicts: int = 10, seed: int = 3,
                            params: Optional[SimulationParameters] = None,
                            settle_ms: float = 5_000.0) -> DivergenceOutcome:
    """Submit pairs of conflicting updates at two different servers.

    Each pair writes the same item from two different delegates at the same
    instant.  Lazy replication commits both and converges (or not) by
    last-writer-wins during propagation — divergence and lost updates are
    possible.  Group-safe replication certifies both in the same total order
    and commits both (blind writes are ordered) while keeping every replica
    identical.
    """
    parameters = params or SimulationParameters.small(server_count=3,
                                                      item_count=50)
    cluster = ReplicatedDatabaseCluster(technique, params=parameters, seed=seed)
    cluster.start()
    sim = cluster.sim
    servers = cluster.server_names()[:2]
    # Freeze the processing stage while the conflicting pairs execute their
    # read phases, so that both members of every pair observe the same item
    # versions: the conflict is then guaranteed, not a race on disk timings.
    # (For the lazy techniques the gate only delays the background
    # propagation, which the settling time below absorbs.)
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.close()
    waiters = []
    for index in range(conflicts):
        key = f"item-{index % parameters.item_count}"
        for which, server in enumerate(servers):
            program = TransactionProgram(
                operations=(Operation(OperationType.READ, key),
                            Operation(OperationType.WRITE, key,
                                      value=f"{server}-update-{index}")),
                client=f"conflict-{index}-{which}")
            waiters.append(cluster.run_transaction(program, server=server))
    sim.run(until=200.0)
    for name in cluster.server_names():
        cluster.replica(name).processing_gate.open()
    sim.run(until=settle_ms)

    results = [waiter.value for waiter in waiters if waiter.triggered]
    committed = sum(1 for result in results if result.committed)
    aborted = sum(1 for result in results if not result.committed)
    audit = SafetyAudit(cluster)
    return DivergenceOutcome(
        technique=technique, submitted=len(waiters), committed=committed,
        aborted=aborted, divergent_items=audit.divergent_items())


def analytic_scaling(server_counts: Sequence[int] = (3, 5, 7, 9, 11, 13, 15),
                     server_down_probability: float = 0.05,
                     system_tps: float = 30.0) -> List[ScalingPoint]:
    """The analytic Sect. 7 curves over the given group sizes."""
    return scaling_comparison(list(server_counts),
                              server_down_probability=server_down_probability,
                              system_tps=system_tps)


def render_scaling(points: Sequence[ScalingPoint]) -> str:
    """Text rendering of the scaling comparison."""
    header = (f"{'servers':>8} | {'lazy ACID-violation':>20} | "
              f"{'group-safe violation':>21} | safer")
    lines = [header, "-" * len(header)]
    for point in points:
        safer = "group-safe" if point.group_safe_wins else "lazy"
        lines.append(f"{point.server_count:>8} | "
                     f"{point.lazy_violation_probability:>20.4%} | "
                     f"{point.group_safe_violation_probability:>21.4%} | "
                     f"{safer}")
    return "\n".join(lines)
