"""Netsplit and gray-failure matrix: link faults and imperfect detection.

The crash-stop matrices (:mod:`repro.experiments.failure_matrix`,
:mod:`repro.experiments.partition_failure_matrix`) inject *crashes*; this
module injects the failures a LAN actually produces — netsplits, asymmetric
and lossy links, slow links, and gray failures (alive-but-degraded disks
and CPUs) — and confronts the derived predictions of
:func:`repro.core.matrix.netsplit_outcome` with observed behaviour of both
total-order engines under both failure-detector modes.

Every cell is one (engine × fault pattern × detector configuration)
simulation of a three-server ``group-1-safe`` replica group:

1. two writes are confirmed while the network is healthy;
2. the fault is installed for a fixed window
   (:data:`FAULT_START`–:data:`FAULT_END`) via
   :meth:`~repro.network.lan.Lan.schedule_fault` (or the gray-failure
   degradation knobs);
3. during the window, transactions are submitted through a majority-side
   delegate and through the minority member, and their confirmations are
   counted per side — the observed progress/blocking axes;
4. the fault heals, stale minority members are resynchronised through the
   tested crash-recovery machinery (the "operator resync" a real deployment
   performs after a split), and fresh probes must commit on both sides;
5. the per-key commit-integrity audit checks every confirmed write is still
   committed and served by every server, and that all servers converged to
   identical values — divergence here is the split-brain signature.

Detector configurations: ``perfect`` (the oracle detector — blind to
partitions by construction), ``hb-fast`` (heartbeat detection with a
timeout well inside the fault window: the fault *is* detected, views
change, the majority fails over) and ``hb-slow`` (timeout longer than the
fault: the detector never fires, equivalent to blindness).

Two partitioned-cluster cells ride along per engine: a netsplit isolating
a destination-group member during a live migration's write fence
(``migration-fence-split``) and a degraded-disk participant shard under
cross-partition 2PC (``gray-2pc-participant``).

**Soundness** per cell: no confirmed transaction lost, no value divergence
(split-brain), a predicted-blocked minority really confirms nothing, and
the cluster is fully available again after the heal.  **Prediction match**:
the progress/blocking verdicts of :func:`netsplit_outcome` are observed.
The matrix must demonstrate at least one minority-blocking cell per engine.

When no fault is installed and the perfect detector is selected (the
defaults), none of this machinery runs and event schedules stay
bit-identical to the seed — pinned by the golden-trace tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.matrix import NetsplitPrediction, netsplit_outcome
from ..db.operations import Operation, OperationType, TransactionProgram
from ..network.faults import LinkFault
from ..partition.cluster import PartitionedCluster
from ..replication.cluster import ReplicatedDatabaseCluster
from ..workload.params import SimulationParameters
from .partition_failure_matrix import (ConfirmedWrite, _advance_until,
                                       audit_confirmed_writes)

#: Replication technique of the group cells: group delivery plus a
#: synchronous delegate flush, so degraded disks are visible in the
#: client-observed latency.
GROUP_TECHNIQUE = "group-1-safe"

#: The fault window of every cell (simulated ms).
FAULT_START = 300.0
FAULT_END = 900.0

#: Detector configurations (parameter overrides for the cell's cluster).
DETECTOR_CONFIGS: Dict[str, Dict[str, object]] = {
    "perfect": {"failure_detector_mode": "perfect"},
    "hb-fast": {"failure_detector_mode": "heartbeat",
                "heartbeat_period": 10.0, "heartbeat_timeout": 60.0},
    "hb-slow": {"failure_detector_mode": "heartbeat",
                "heartbeat_period": 10.0, "heartbeat_timeout": 2000.0},
}

#: Group fault patterns: name -> (fault kind, minority members,
#: coordinator-in-minority).  The ordering coordinator of both engines is
#: initially ``s1`` (first member in static order).
GROUP_FAULT_PATTERNS: Dict[str, Tuple[str, Tuple[str, ...], bool]] = {
    "split-minority-coordinator": ("partition", ("s1",), True),
    "split-minority-follower": ("partition", ("s3",), False),
    "asymmetric-mute-follower": ("asymmetric", ("s3",), False),
    "lossy-follower-link": ("lossy", ("s3",), False),
    "slow-follower-link": ("slow", ("s3",), False),
    "gray-degraded-disk": ("gray-disk", (), False),
    "gray-slow-cpu": ("gray-cpu", (), False),
}

#: Partitioned-cluster patterns run once per engine (perfect detector).
PARTITIONED_FAULT_PATTERNS = ("migration-fence-split", "gray-2pc-participant")

#: Reduced cell set of the CI ``--smoke`` run: still spans a blocked
#: coordinator, a progressing majority and a lossy link, under both a blind
#: and a detecting detector, plus both partitioned cells.
SMOKE_GROUP_PATTERNS = ("split-minority-coordinator",
                        "split-minority-follower", "lossy-follower-link")
SMOKE_DETECTORS = ("perfect", "hb-fast")


# --------------------------------------------------------------------------- outcome type
@dataclass
class NetsplitCellOutcome:
    """Everything one netsplit cell produced, audited."""

    engine: str
    fault_pattern: str
    detector: str
    prediction: NetsplitPrediction
    #: Transactions confirmed through a majority-side delegate during the
    #: fault window.
    majority_commits: int = 0
    #: Transactions confirmed through the minority member during the window.
    minority_commits: int = 0
    #: Submissions still unanswered when the cell ended (blocked clients).
    unresolved: int = 0
    #: Fresh transactions committed on both sides after heal + resync.
    post_heal_ok: bool = False
    #: All servers serve identical values for every audited key at the end.
    converged: bool = False
    #: A client-confirmed transaction is gone (the matrix's loss axis).
    observed_loss: bool = False
    audit_failures: List[str] = field(default_factory=list)
    #: LAN drop counters by cause at the end of the cell.
    drops_by_cause: Dict[str, int] = field(default_factory=dict)
    #: Suspicions announced by the cell's failure detector.
    suspicion_count: int = 0
    #: During-fault / healthy mean confirmed latency (gray + slow cells).
    latency_inflation: Optional[float] = None

    @property
    def sound(self) -> bool:
        """No split-brain, no lost/duplicated commit, blocked means blocked."""
        return (not self.observed_loss
                and self.converged
                and self.post_heal_ok
                and not self.audit_failures
                and (self.prediction.minority_blocks is not True
                     or self.minority_commits == 0))

    @property
    def matched(self) -> bool:
        """The tri-state progress predictions agree with the observation."""
        majority = self.prediction.majority_progress
        if majority is True and self.majority_commits == 0:
            return False
        if majority is False and self.majority_commits > 0:
            return False
        minority = self.prediction.minority_blocks
        if minority is True and self.minority_commits > 0:
            return False
        if minority is False and self.minority_commits == 0:
            return False
        return True

    @property
    def demonstrates_minority_blocking(self) -> bool:
        """The cell exhibited a blocked minority with zero losses."""
        return (self.prediction.minority_blocks is True
                and self.minority_commits == 0
                and not self.observed_loss)


# --------------------------------------------------------------------------- helpers
def _program(values: Dict[str, object], client: str) -> TransactionProgram:
    operations = tuple(Operation(OperationType.WRITE, key, value)
                       for key, value in values.items())
    return TransactionProgram(operations=operations, client=client)


def _confirm(cluster: ReplicatedDatabaseCluster, key: str, tag: str,
             server: str, limit_ms: float = 3_000.0):
    """Submit one single-key update and wait for its confirmation."""
    value = f"{tag}:{key}"
    waiter = cluster.run_transaction(_program({key: value}, client=tag),
                                     server=server)
    result = cluster.sim.run_until_complete(
        waiter, limit=cluster.sim.now + limit_ms)
    if not result.committed:
        raise RuntimeError(f"healthy-phase transaction on {key} failed to "
                           f"confirm ({result.abort_reason})")
    return result, value


def _cell_parameters(engine: str, detector: str,
                     params: Optional[SimulationParameters]
                     ) -> SimulationParameters:
    base = params or SimulationParameters.small(server_count=3,
                                                item_count=100)
    return base.with_overrides(broadcast_engine=engine,
                               **DETECTOR_CONFIGS[detector])


def _detector_sees(fault_kind: str, detector: str) -> bool:
    """Will the configured detector see the fault before it heals?

    Only quorum-starving faults (partitions, minority-muting asymmetry)
    produce the quorum silence the heartbeat detector triggers on, and only
    when its timeout fits inside the fault window.  The perfect detector
    never sees a link fault.
    """
    if fault_kind not in ("partition", "asymmetric"):
        return False
    config = DETECTOR_CONFIGS[detector]
    if config["failure_detector_mode"] != "heartbeat":
        return False
    return config["heartbeat_timeout"] < (FAULT_END - FAULT_START)


# --------------------------------------------------------------------------- group cells
def run_group_netsplit_scenario(engine: str, fault_pattern: str,
                                detector: str, seed: int = 1,
                                params: Optional[SimulationParameters] = None
                                ) -> NetsplitCellOutcome:
    """Run one (engine, fault pattern, detector) group cell and audit it."""
    if fault_pattern not in GROUP_FAULT_PATTERNS:
        raise ValueError(f"unknown fault pattern {fault_pattern!r}; expected "
                         f"one of {sorted(GROUP_FAULT_PATTERNS)}")
    if detector not in DETECTOR_CONFIGS:
        raise ValueError(f"unknown detector config {detector!r}; expected "
                         f"one of {sorted(DETECTOR_CONFIGS)}")
    fault_kind, minority, coordinator_in_minority = \
        GROUP_FAULT_PATTERNS[fault_pattern]
    prediction = netsplit_outcome(fault_kind, coordinator_in_minority,
                                  _detector_sees(fault_kind, detector))
    outcome = NetsplitCellOutcome(engine=engine, fault_pattern=fault_pattern,
                                  detector=detector, prediction=prediction)

    cluster = ReplicatedDatabaseCluster(
        GROUP_TECHNIQUE, params=_cell_parameters(engine, detector, params),
        seed=seed)
    cluster.start()
    sim, lan = cluster.sim, cluster.lan
    names = cluster.server_names()
    majority = [name for name in names if name not in minority]
    #: ``s2`` is in the majority of every pattern (minorities are s1 or s3).
    majority_delegate = "s2"
    minority_delegate = minority[0] if minority else "s3"

    # -- phase 1: healthy-network confirmations ------------------------------------
    confirmed: List[ConfirmedWrite] = []
    healthy_latencies: List[float] = []
    for key in ("item-10", "item-11"):
        result, value = _confirm(cluster, key, tag="warmup",
                                 server=majority_delegate)
        confirmed.append(ConfirmedWrite(txn_id=result.txn_id, partition_id=0,
                                        values={key: value}))
        healthy_latencies.append(result.responded_at - result.submitted_at)

    # -- phase 2: the fault, with a duration ---------------------------------------
    if fault_kind == "partition":
        lan.schedule_fault(LinkFault.partition(fault_pattern, minority,
                                               majority),
                           at=FAULT_START, until=FAULT_END)
    elif fault_kind == "asymmetric":
        pairs = [(minority[0], name) for name in majority]
        lan.schedule_fault(LinkFault.asymmetric(fault_pattern, pairs),
                           at=FAULT_START, until=FAULT_END)
    elif fault_kind == "lossy":
        lan.schedule_fault(LinkFault.lossy(fault_pattern, minority, majority,
                                           probability=0.3),
                           at=FAULT_START, until=FAULT_END)
    elif fault_kind == "slow":
        lan.schedule_fault(LinkFault.slow(fault_pattern, minority, majority,
                                          factor=50.0),
                           at=FAULT_START, until=FAULT_END)
    elif fault_kind == "gray-disk":
        database = cluster.database(majority_delegate)
        sim.call_at(FAULT_START, lambda: database.degrade_disk(8.0))
        sim.call_at(FAULT_END, database.restore_disk)
    else:  # gray-cpu
        node = cluster.node(majority_delegate)
        sim.call_at(FAULT_START, lambda: node.degrade_cpu(20.0))
        sim.call_at(FAULT_END, node.restore_cpu)

    # -- phase 3: submissions during the window ------------------------------------
    in_flight: List[Tuple[str, str, str, object]] = []  # (side, key, value, waiter)

    def submit_at(when: float, side: str, key: str, server: str) -> None:
        def submit() -> None:
            value = f"{fault_pattern}.{side}:{key}"
            try:
                waiter = cluster.run_transaction(
                    _program({key: value}, client=f"{side}.{key}"),
                    server=server)
            except Exception:
                # A refused submission (e.g. the member left the view) is a
                # blocked client, not a commit — exactly what the blocking
                # predictions allow.
                return
            in_flight.append((side, key, value, waiter))
        sim.call_at(when, submit)

    majority_keys = ("item-20", "item-21", "item-22")
    minority_keys = ("item-30", "item-31")
    for index, key in enumerate(majority_keys):
        submit_at(FAULT_START + 20.0 + 140.0 * index, "majority", key,
                  majority_delegate)
    for index, key in enumerate(minority_keys):
        submit_at(FAULT_START + 50.0 + 180.0 * index, "minority", key,
                  minority_delegate)
    sim.run(until=FAULT_END)

    fault_latencies: List[float] = []
    committed_during = set()
    for side, key, value, waiter in in_flight:
        result = waiter.value if waiter.triggered else None
        if result is not None and result.committed:
            committed_during.add(key)
            confirmed.append(ConfirmedWrite(txn_id=result.txn_id,
                                            partition_id=0,
                                            values={key: value}))
            if side == "majority":
                outcome.majority_commits += 1
                fault_latencies.append(result.responded_at
                                       - result.submitted_at)
            else:
                outcome.minority_commits += 1
    if fault_latencies and healthy_latencies:
        outcome.latency_inflation = (
            (sum(fault_latencies) / len(fault_latencies))
            / (sum(healthy_latencies) / len(healthy_latencies)))

    # -- phase 4: heal, resync, probe ----------------------------------------------
    sim.run(until=FAULT_END + 300.0)
    if fault_kind in ("partition", "asymmetric", "lossy"):
        # Operator resync: a member that sat out a split has missed
        # deliveries forever (the LAN never retransmits); the documented
        # remedy is a crash-recovery cycle through the tested state-transfer
        # machinery.  The member must stay down long enough for the
        # configured detector to suspect it — removal from the view is what
        # triggers both the state transfer on re-add and the re-submission
        # of messages that hung during the fault.
        config = DETECTOR_CONFIGS[detector]
        if config["failure_detector_mode"] == "heartbeat":
            down_for = (config["heartbeat_timeout"]
                        + 5.0 * config["heartbeat_period"])
            settle = 500.0
        else:
            down_for, settle = 50.0, 350.0
        for name in minority:
            cluster.crash_server(name)
            sim.run(until=sim.now + down_for)
            cluster.recover_server(name)
            sim.run(until=sim.now + settle)

    def probe(key: str, server: str) -> bool:
        value = f"probe:{key}"
        try:
            waiter = cluster.run_transaction(
                _program({key: value}, client=f"probe.{key}"), server=server)
        except Exception:
            return False
        if not _advance_until(cluster, lambda: waiter.triggered,
                              limit=sim.now + 3_000.0):
            return False
        result = waiter.value
        if not result.committed:
            return False
        confirmed.append(ConfirmedWrite(txn_id=result.txn_id, partition_id=0,
                                        values={key: value}))
        return True

    outcome.post_heal_ok = (probe("item-40", majority_delegate)
                            and probe("item-41", minority_delegate))
    sim.run(until=sim.now + 300.0)

    # -- phase 5: the audit ----------------------------------------------------------
    # Late confirmations (a view change re-submitted a message that hung
    # during the fault) join the audited set: once a client was answered
    # "committed", the write must be durable and served, whenever it landed.
    for side, key, value, waiter in in_flight:
        if key in committed_during:
            continue
        result = waiter.value if waiter.triggered else None
        if result is not None and result.committed:
            confirmed.append(ConfirmedWrite(txn_id=result.txn_id,
                                            partition_id=0,
                                            values={key: value}))
        elif result is None:
            outcome.unresolved += 1

    for write in confirmed:
        if not cluster.committed_anywhere(write.txn_id):
            outcome.observed_loss = True
            outcome.audit_failures.append(
                f"lost commit: {write.txn_id} is recorded nowhere")
            continue
        for key, value in write.values.items():
            missing = [name for name in names
                       if cluster.database(name).value_of(key) != value]
            if missing:
                outcome.audit_failures.append(
                    f"confirmed value of {key} ({write.txn_id}) not served "
                    f"on {missing}")

    audited_keys = (["item-10", "item-11", "item-40", "item-41"]
                    + list(majority_keys) + list(minority_keys))
    outcome.converged = all(
        len({repr(cluster.database(name).value_of(key)) for name in names})
        == 1
        for key in audited_keys)
    outcome.drops_by_cause = dict(lan.dropped_by_cause)
    outcome.suspicion_count = cluster.gcs.failure_detector.suspicion_count
    return outcome


# --------------------------------------------------------------------------- partitioned cells
def _partitioned_parameters(engine: str,
                            params: Optional[SimulationParameters]
                            ) -> SimulationParameters:
    base = params or SimulationParameters.small(server_count=3,
                                                item_count=100)
    return base.with_overrides(partition_count=2, broadcast_engine=engine,
                               cross_partition_probability=0.0)


def _range_key(cluster: PartitionedCluster, shard: int,
               offset: int = 1) -> str:
    key_range = cluster.routing.range_of(shard)
    position = key_range.lo + offset * key_range.width // 8
    return f"item-{position}"


def run_migration_fence_split_scenario(engine: str, seed: int = 1,
                                       params: Optional[SimulationParameters]
                                       = None) -> NetsplitCellOutcome:
    """A netsplit isolates a destination-group member during the fence.

    The migration must still complete — the destination's majority (its
    primary serves as install delegate) keeps committing deltas and the
    epoch record under the split — and the isolated member must serve the
    migrated values after heal + resync.
    """
    prediction = netsplit_outcome("partition", coordinator_in_minority=False,
                                  detector_sees_fault=False)
    outcome = NetsplitCellOutcome(engine=engine,
                                  fault_pattern="migration-fence-split",
                                  detector="perfect", prediction=prediction)
    cluster = PartitionedCluster(GROUP_TECHNIQUE,
                                 params=_partitioned_parameters(engine,
                                                                params),
                                 seed=seed, strategy="range")
    cluster.start()
    sim = cluster.sim
    source, destination = 0, 1
    source_key = _range_key(cluster, source, offset=1)
    write_result = sim.run_until_complete(
        cluster.run_transaction(_program({source_key: f"fence:{source_key}"},
                                         client="fence-setup")),
        limit=sim.now + 5_000.0)
    if not write_result.committed:
        raise RuntimeError("fence-split setup write failed to confirm")
    confirmed = [ConfirmedWrite(txn_id=write_result.txn_id,
                                partition_id=source,
                                values={source_key: f"fence:{source_key}"})]

    destination_group = cluster.group(destination)
    victim = destination_group.server_names()[-1]
    everyone = [name for group_id in range(cluster.partition_count)
                for name in cluster.group(group_id).server_names()]

    def split(_context) -> None:
        cluster.lan.install_fault(
            LinkFault.isolate("fence-split", victim, everyone))
        sim.call_after(400.0,
                       lambda: cluster.lan.remove_fault("fence-split"))

    cluster.add_failpoint("migration.fence", split)
    driver = cluster.migrate(source, destination, chunk_size=8)
    if not _advance_until(cluster, lambda: driver.triggered,
                          limit=sim.now + 30_000.0):
        raise RuntimeError("migration driver never finished under the "
                           "fence split")
    report = cluster.migration_reports[-1]
    migration_ok = bool(report.completed and report.verified)
    if migration_ok:
        outcome.majority_commits = 1   # progress under the split
    else:
        outcome.audit_failures.append(
            f"migration did not complete under the fence split "
            f"(aborted={report.aborted}, reason={report.abort_reason})")
    sim.run(until=sim.now + 300.0)

    # Resync the isolated member through crash recovery, then audit.
    cluster.crash_server(destination, victim)
    sim.run(until=sim.now + 50.0)
    cluster.recover_server(destination, victim)
    sim.run(until=sim.now + 500.0)

    probe_key = _range_key(cluster, source, offset=2)
    probe = cluster.run_transaction(
        _program({probe_key: f"probe:{probe_key}"}, client="fence-probe"))
    outcome.post_heal_ok = (_advance_until(cluster,
                                           lambda: probe.triggered,
                                           limit=sim.now + 5_000.0)
                            and bool(probe.value.committed))
    sim.run(until=sim.now + 300.0)

    failures, lost = audit_confirmed_writes(cluster, confirmed)
    outcome.audit_failures.extend(failures)
    outcome.observed_loss = lost
    serving = cluster.partition_of(source_key)
    member_values = {
        repr(destination_group.database(name).value_of(source_key))
        for name in destination_group.server_names()}
    outcome.converged = (migration_ok and serving == destination
                         and len(member_values) == 1)
    outcome.drops_by_cause = dict(cluster.lan.dropped_by_cause)
    outcome.suspicion_count = sum(
        cluster.group(group_id).gcs.failure_detector.suspicion_count
        for group_id in range(cluster.partition_count)
        if cluster.group(group_id).gcs is not None)
    return outcome


def run_gray_2pc_scenario(engine: str, seed: int = 1,
                          params: Optional[SimulationParameters] = None
                          ) -> NetsplitCellOutcome:
    """A degraded-disk participant shard under cross-partition 2PC.

    The remote shard's servers flush at 8x cost while a cross-partition
    transaction runs: 2PC must still commit atomically (the vote waits for
    the slow prepare flush), with visibly inflated latency, and recover its
    healthy latency after the degradation ends.
    """
    # This cell has no minority side (nothing is partitioned away), so the
    # derived minority axis is neutralised: only the progress-under-
    # degradation and no-loss axes are checked.
    prediction = replace(
        netsplit_outcome("gray-disk", coordinator_in_minority=False,
                         detector_sees_fault=False),
        minority_blocks=None)
    outcome = NetsplitCellOutcome(engine=engine,
                                  fault_pattern="gray-2pc-participant",
                                  detector="perfect", prediction=prediction)
    cluster = PartitionedCluster(GROUP_TECHNIQUE,
                                 params=_partitioned_parameters(engine,
                                                                params),
                                 seed=seed, strategy="range")
    cluster.start()
    sim = cluster.sim
    remote = cluster.partition_count - 1

    def cross(tag: str):
        values = {_range_key(cluster, 0, offset=1 + len(confirmed)):
                  f"{tag}:local",
                  _range_key(cluster, remote, offset=1 + len(confirmed)):
                  f"{tag}:remote"}
        waiter = cluster.run_transaction(_program(values, client=tag))
        if not _advance_until(cluster, lambda: waiter.triggered,
                              limit=sim.now + 10_000.0):
            return None, values
        return waiter.value, values

    confirmed: List[ConfirmedWrite] = []

    def record(cross_outcome, values) -> None:
        for branch in cross_outcome.branches:
            if branch.txn_id is None:
                continue
            branch_values = {key: value for key, value in values.items()
                             if cluster.partition_of(key)
                             == branch.partition_id}
            confirmed.append(ConfirmedWrite(txn_id=branch.txn_id,
                                            partition_id=branch.partition_id,
                                            values=branch_values))

    healthy, values = cross("gray2pc-healthy")
    if healthy is None or not healthy.committed:
        raise RuntimeError("healthy cross-partition transaction failed")
    record(healthy, values)

    remote_group = cluster.group(remote)
    for name in remote_group.server_names():
        remote_group.database(name).degrade_disk(8.0)
    degraded, values = cross("gray2pc-degraded")
    for name in remote_group.server_names():
        remote_group.database(name).restore_disk()
    if degraded is not None and degraded.committed:
        outcome.majority_commits = 1
        record(degraded, values)
        outcome.latency_inflation = (degraded.response_time
                                     / healthy.response_time)
    else:
        outcome.audit_failures.append(
            "cross-partition transaction failed under the degraded disk")

    recovered, values = cross("gray2pc-recovered")
    outcome.post_heal_ok = bool(recovered is not None
                                and recovered.committed)
    if outcome.post_heal_ok:
        record(recovered, values)
    sim.run(until=sim.now + 300.0)

    failures, lost = audit_confirmed_writes(cluster, confirmed)
    outcome.audit_failures.extend(failures)
    outcome.observed_loss = lost
    outcome.converged = all(
        len({repr(cluster.group(write.partition_id).database(name)
                  .value_of(key))
             for name in cluster.group(write.partition_id).server_names()})
        == 1
        for write in confirmed for key in write.values)
    outcome.drops_by_cause = dict(cluster.lan.dropped_by_cause)
    return outcome


# --------------------------------------------------------------------------- the matrix
def _matrix_cell(cell) -> NetsplitCellOutcome:
    """Run one matrix cell — module-level so a process pool can pickle it;
    each cell is an independent simulation."""
    kind, engine, pattern, detector, seed, params = cell
    if kind == "group":
        return run_group_netsplit_scenario(engine, pattern, detector,
                                           seed=seed, params=params)
    if pattern == "migration-fence-split":
        return run_migration_fence_split_scenario(engine, seed=seed,
                                                  params=params)
    return run_gray_2pc_scenario(engine, seed=seed, params=params)


def run_netsplit_matrix(engines: Optional[Sequence[str]] = None,
                        patterns: Optional[Sequence[str]] = None,
                        detectors: Optional[Sequence[str]] = None,
                        seed: int = 1,
                        params: Optional[SimulationParameters] = None,
                        workers: int = 1,
                        include_partitioned: bool = True
                        ) -> List[NetsplitCellOutcome]:
    """Run every (engine × fault pattern × detector) cell of the matrix.

    With ``workers > 1`` the cells fan out over a process pool; the entry
    list keeps the serial (engine-major) order either way, because
    ``Pool.map`` returns results in submission order regardless of which
    worker finished first.
    """
    from ..gcs.engines import engine_names

    chosen_engines = list(engines) if engines is not None \
        else list(engine_names())
    chosen_patterns = list(patterns) if patterns is not None \
        else list(GROUP_FAULT_PATTERNS)
    chosen_detectors = list(detectors) if detectors is not None \
        else list(DETECTOR_CONFIGS)
    cells = [("group", engine, pattern, detector, seed, params)
             for engine in chosen_engines
             for pattern in chosen_patterns
             for detector in chosen_detectors]
    if include_partitioned:
        cells.extend(("partitioned", engine, pattern, "perfect", seed,
                      params)
                     for engine in chosen_engines
                     for pattern in PARTITIONED_FAULT_PATTERNS)
    if workers > 1:
        import multiprocessing
        with multiprocessing.Pool(min(workers, len(cells))) as pool:
            return pool.map(_matrix_cell, cells)
    return [_matrix_cell(cell) for cell in cells]


def netsplit_soundness_violations(entries: Sequence[NetsplitCellOutcome]
                                  ) -> List[NetsplitCellOutcome]:
    """Cells with a lost/diverged commit, split-brain or unavailability."""
    return [entry for entry in entries if not entry.sound]


def netsplit_prediction_mismatches(entries: Sequence[NetsplitCellOutcome]
                                   ) -> List[NetsplitCellOutcome]:
    """Cells whose observed progress contradicts the derived prediction."""
    return [entry for entry in entries if not entry.matched]


def engines_missing_minority_blocking(entries: Sequence[NetsplitCellOutcome]
                                      ) -> List[str]:
    """Engines with no demonstrated minority-blocking cell (acceptance bar)."""
    demonstrated = {entry.engine for entry in entries
                    if entry.demonstrates_minority_blocking}
    return sorted({entry.engine for entry in entries} - demonstrated)


def render_netsplit_matrix(entries: Sequence[NetsplitCellOutcome]) -> str:
    """Human-readable rendering of the netsplit matrix (report file)."""
    header = (f"{'engine':>15} | {'fault pattern':>26} | {'detector':>8} | "
              f"{'majority':>12} | {'minority':>12} | {'loss':>5} | "
              f"{'conv':>5} | sound")
    lines = [header, "-" * len(header)]

    def progress_cell(predicted: Optional[bool], commits: int) -> str:
        expectation = {True: "go", False: "block", None: "?"}[predicted]
        return f"{expectation}:{commits}"

    for entry in entries:
        blocks = entry.prediction.minority_blocks
        minority_progress = None if blocks is None else not blocks
        lines.append(
            f"{entry.engine:>15} | {entry.fault_pattern:>26} | "
            f"{entry.detector:>8} | "
            f"{progress_cell(entry.prediction.majority_progress, entry.majority_commits):>12} | "
            f"{progress_cell(minority_progress, entry.minority_commits):>12} | "
            f"{'LOST' if entry.observed_loss else 'none':>5} | "
            f"{'ok' if entry.converged else 'NO':>5} | "
            f"{entry.sound and entry.matched}")
    violations = netsplit_soundness_violations(entries)
    mismatches = netsplit_prediction_mismatches(entries)
    blocking = [entry for entry in entries
                if entry.demonstrates_minority_blocking]
    lines.append("")
    lines.append(
        f"cells: {len(entries)}  soundness violations: {len(violations)}  "
        f"prediction mismatches: {len(mismatches)}  "
        f"minority-blocking demonstrations: {len(blocking)}")
    lines.append("majority/minority columns: predicted(go/block/?) : "
                 "observed confirmed commits during the fault window")
    inflations = [(entry, entry.latency_inflation) for entry in entries
                  if entry.latency_inflation is not None
                  and entry.fault_pattern.startswith("gray")]
    for entry, inflation in inflations:
        lines.append(f"  gray latency inflation "
                     f"{entry.engine}/{entry.fault_pattern}"
                     f"/{entry.detector}: x{inflation:.1f}")
    for entry in violations:
        lines.append(f"  VIOLATION {entry.engine}/{entry.fault_pattern}"
                     f"/{entry.detector}: {entry.audit_failures or 'minority committed / unavailable'}")
    for entry in mismatches:
        lines.append(f"  MISMATCH {entry.engine}/{entry.fault_pattern}"
                     f"/{entry.detector}: majority={entry.majority_commits} "
                     f"minority={entry.minority_commits} vs "
                     f"{entry.prediction}")
    return "\n".join(lines)


# --------------------------------------------------------------------------- CLI
def main(argv: Optional[List[str]] = None) -> int:
    """CLI / CI smoke entry: run the matrix and enforce the acceptance bars.

    ``--smoke`` runs the reduced cell set on the single ``--engine``; the
    full run spans *both* engines regardless of ``--engine`` (the matrix is
    the engine comparison).  Exits non-zero on any soundness violation,
    prediction mismatch, or an engine without a demonstrated
    minority-blocking cell.
    """
    from .report import matrix_cli

    def run(arguments):
        if arguments.smoke:
            entries = run_netsplit_matrix(
                engines=[arguments.engine],
                patterns=SMOKE_GROUP_PATTERNS,
                detectors=SMOKE_DETECTORS,
                seed=arguments.seed, workers=arguments.workers)
        else:
            entries = run_netsplit_matrix(seed=arguments.seed,
                                          workers=arguments.workers)
        return entries, render_netsplit_matrix(entries)

    def problems_of(entries) -> List[str]:
        problems: List[str] = []
        violations = netsplit_soundness_violations(entries)
        if violations:
            problems.append(f"{len(violations)} soundness violations")
        mismatches = netsplit_prediction_mismatches(entries)
        if mismatches:
            problems.append(f"{len(mismatches)} prediction mismatches")
        for engine in engines_missing_minority_blocking(entries):
            problems.append(f"no demonstrated minority-blocking cell for "
                            f"engine {engine}")
        return problems

    return matrix_cli(argv, description=__doc__.splitlines()[0],
                      report_name="netsplit_matrix", run=run,
                      problems_of=problems_of)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
