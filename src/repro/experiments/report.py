"""Small text-reporting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import (Callable, Iterable, List, Mapping, Optional, Sequence,
                    Tuple)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a list of rows as an aligned text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[object, object], title: str = "") -> str:
    """Render a mapping as an aligned two-column text table."""
    rows = [(key, value) for key, value in mapping.items()]
    return format_table(("parameter", "value"), rows, title=title)


def banner(text: str, width: int = 72) -> str:
    """A visually separated section banner for example / benchmark output."""
    bar = "=" * width
    return f"{bar}\n{text}\n{bar}"


def matrix_cli(argv: Optional[List[str]], *, description: str,
               report_name: str,
               run: Callable[[object], Tuple[object, str]],
               problems_of: Callable[[object], List[str]],
               extra_arguments: Sequence[Tuple[str, dict]] = ()) -> int:
    """The shared ``--smoke`` CLI gate of the failure matrices.

    One place for the contract both matrix entry points share (so CI's two
    smoke gates cannot drift apart): ``--smoke`` / ``--seed`` /
    ``--report-dir`` flags, the rendered report printed *and* written to
    ``<report-dir>/<report_name>.txt``, and a non-zero exit when
    ``problems_of(entries)`` reports anything.  ``run(arguments)`` executes
    the matrix and returns ``(entries, rendered_text)``.
    """
    import argparse
    from pathlib import Path

    from ..gcs.engines import DEFAULT_ENGINE, engine_names

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced technique set for CI")
    parser.add_argument("--engine", default=DEFAULT_ENGINE,
                        choices=engine_names(),
                        help="total-order broadcast engine the group-based "
                             "techniques run on")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="fan the matrix cells out over N worker "
                             "processes (cells are independent simulations; "
                             "report order stays deterministic)")
    parser.add_argument("--report-dir", default="benchmarks/benchmark_reports",
                        help="directory the matrix report is written to")
    for flag, keywords in extra_arguments:
        parser.add_argument(flag, **keywords)
    arguments = parser.parse_args(argv)

    entries, text = run(arguments)
    text = f"engine: {arguments.engine}\n{text}"
    print(text)
    report_dir = Path(arguments.report_dir)
    report_dir.mkdir(parents=True, exist_ok=True)
    (report_dir / f"{report_name}.txt").write_text(text + "\n",
                                                   encoding="utf-8")
    problems = problems_of(entries)
    for problem in problems:
        print(f"SMOKE FAILURE: {problem}")
    return 1 if problems else 0
