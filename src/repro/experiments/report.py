"""Small text-reporting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a list of rows as an aligned text table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width)
                            for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[object, object], title: str = "") -> str:
    """Render a mapping as an aligned two-column text table."""
    rows = [(key, value) for key, value in mapping.items()]
    return format_table(("parameter", "value"), rows, title=title)


def banner(text: str, width: int = 72) -> str:
    """A visually separated section banner for example / benchmark output."""
    bar = "=" * width
    return f"{bar}\n{text}\n{bar}"
