"""A canonical traced scenario shared by the experiment CLIs.

Every ``--trace <path>`` flag across the experiment entry points funnels
through :func:`write_scenario_trace`: one mixed 2PC + migration run (the
same shape as the kernel-determinism golden scenario — four range shards,
a Zipf hot head, cross-partition traffic, one mid-run ``rebalance()``)
executed with :meth:`~repro.partition.cluster.PartitionedCluster.
enable_observability`, exported as Chrome trace-event JSON next to a
plain-text critical-path report.

The scenario deliberately exercises every instrumented layer — fast-path
submit/respond, 2PC prepare/decision/branch installs, atomic broadcast,
WAL group commit, buffer I/O, and the migration copy/fence/epoch phases —
so the exported trace demonstrates the whole span vocabulary in one file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple

from ..obs.export import write_chrome_trace, write_critical_path_report
from ..obs.tracer import Observability
from ..partition.cluster import PartitionedCluster
from ..partition.stats import PartitionedRunStatistics, collect_statistics
from ..partition.workload import PartitionedOpenLoopClients
from ..workload.params import SimulationParameters


def run_traced_scenario(technique: str = "group-safe", seed: int = 7,
                        load_tps: float = 120.0,
                        rebalance_at_ms: float = 1_500.0,
                        duration_ms: float = 4_000.0
                        ) -> Tuple[Observability, PartitionedRunStatistics,
                                   PartitionedOpenLoopClients]:
    """Run the mixed 2PC + migration scenario with tracing enabled.

    Returns the :class:`~repro.obs.tracer.Observability` holding the span
    forest, the collected run statistics, and the client pool whose raw
    per-transaction results the critical-path trees must reconcile with.
    """
    parameters = SimulationParameters.small(
        server_count=3, item_count=240).with_overrides(
        partition_count=4, zipf_skew=1.1, cross_partition_probability=0.1)
    cluster = PartitionedCluster(technique, params=parameters, seed=seed,
                                 strategy="range")
    observability = cluster.enable_observability()
    cluster.start()
    clients = PartitionedOpenLoopClients(cluster, load_tps=load_tps)
    clients.start()
    cluster.run(until=rebalance_at_ms)
    cluster.rebalance()
    cluster.run(until=duration_ms)
    statistics = collect_statistics(clients, duration_ms=duration_ms)
    return observability, statistics, clients


def write_scenario_trace(path, technique: str = "group-safe", seed: int = 7
                         ) -> Path:
    """Run the traced scenario and export it to ``path``.

    Writes the Chrome trace-event JSON at ``path`` (open it in Perfetto or
    ``chrome://tracing``) and the plain-text critical-path report next to
    it with a ``.txt`` suffix.  Returns the trace path.
    """
    trace_path = Path(path)
    observability, statistics, _clients = run_traced_scenario(
        technique=technique, seed=seed)
    write_chrome_trace(trace_path, observability,
                       metadata={"scenario": "mixed-2pc-migration",
                                 "technique": technique, "seed": seed,
                                 "committed": statistics.measured_commits})
    write_critical_path_report(trace_path.with_suffix(".txt"), observability)
    return trace_path


def maybe_write_scenario_trace(path: Optional[str],
                               technique: str = "group-safe",
                               seed: int = 7) -> Optional[Path]:
    """``write_scenario_trace`` guarded on ``path`` being set (CLI helper)."""
    if not path:
        return None
    written = write_scenario_trace(path, technique=technique, seed=seed)
    print(f"trace written to {written} "
          f"(critical-path report: {written.with_suffix('.txt')})")
    return written
