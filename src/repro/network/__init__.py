"""Simulated network substrate: messages, nodes and the LAN model.

The network package models the "machine" level of the system: each
:class:`~repro.network.node.Node` is one server machine with CPUs, disks, an
inbox and crash/recovery state; the :class:`~repro.network.lan.Lan` connects
nodes with the fixed LAN latency of the paper's Table 4 (0.07 ms).
"""

from .dispatch import Dispatcher
from .faults import LinkFault
from .lan import Lan
from .message import Message, next_message_id
from .node import Node

__all__ = ["Dispatcher", "Lan", "LinkFault", "Message", "Node",
           "next_message_id"]
