"""Per-node message dispatching.

Every server runs exactly one :class:`Dispatcher`: a volatile process that
drains the node's inbox and routes each message to the handler registered for
its ``kind``.  Both the group-communication endpoint and the replication
technique register handlers on the same dispatcher, which models the fact
that they live in the same operating-system process (Sect. 2.4 of the paper)
and therefore crash together.

The dispatcher charges the Table 4 CPU cost of a network operation (0.07 ms)
for every received message before invoking the handler.  Handlers are plain
callables executed at delivery; anything that needs to consume simulated time
spawns its own process on the node.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.layers import implements
from ..sim.engine import Simulator
from ..sim.events import Timeout
from .message import Message
from .node import Node

MessageHandler = Callable[[Message], None]


@implements("links")
class Dispatcher:
    """Routes incoming messages of one node to per-kind handlers."""

    def __init__(self, sim: Simulator, node: Node) -> None:
        self.sim = sim
        self.node = node
        self._handlers: Dict[str, MessageHandler] = {}
        self._default_handler: Optional[MessageHandler] = None
        self._running = False
        #: Messages received and dispatched (statistics).
        self.dispatched_count = 0
        #: Messages received with no registered handler (statistics).
        self.unhandled_count = 0

    # -- handler registration ---------------------------------------------------
    def register(self, kind: str, handler: MessageHandler) -> None:
        """Route messages whose ``kind`` equals ``kind`` to ``handler``."""
        self._handlers[kind] = handler

    def register_default(self, handler: MessageHandler) -> None:
        """Handler for message kinds nobody registered explicitly."""
        self._default_handler = handler

    def unregister(self, kind: str) -> None:
        """Remove the handler for ``kind`` if present."""
        self._handlers.pop(kind, None)

    # -- lifecycle ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """True while the dispatch loop process is alive."""
        return self._running

    def start(self) -> None:
        """Start (or restart after a crash) the dispatch loop on the node."""
        if self._running:
            return
        self._running = True
        self.node.spawn(self._loop(), name="dispatcher")

    def _loop(self):
        # Hot loop: the CPU charge is ``cpu.use(...)`` written out inline
        # (identical event schedule) to spare a generator object per message.
        inbox_get = self.node.inbox.get
        cpu = self.node.cpu
        cpu_cost = self.node.cpu_time_per_network_op
        sim = self.sim
        handlers = self._handlers
        try:
            while True:
                message = yield inbox_get()
                request = cpu.request()
                yield request
                try:
                    yield Timeout(sim, cpu_cost)
                finally:
                    cpu.release(request)
                self.dispatched_count += 1
                handler = handlers.get(message.kind, self._default_handler)
                if handler is None:
                    self.unhandled_count += 1
                    continue
                handler(message)
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "running" if self._running else "stopped"
        return f"<Dispatcher {self.node.name} {state} kinds={len(self._handlers)}>"
