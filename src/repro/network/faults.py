"""First-class network faults: netsplits, lossy links, slow links.

The crash-stop matrices of the earlier experiments only speak node crashes;
this module models what a LAN actually produces.  A :class:`LinkFault` is a
*named*, immutable description of one fault — a set of directionally blocked
sender→destination pairs, per-pair loss probabilities and per-pair latency
multipliers — that :meth:`~repro.network.lan.Lan.install_fault` activates and
:meth:`~repro.network.lan.Lan.remove_fault` deactivates, so faults have
durations (:meth:`~repro.network.lan.Lan.schedule_fault` installs and removes
them at simulated times).

Taxonomy (the constructors):

* :meth:`LinkFault.partition` — a symmetric netsplit between two groups
  (majority/minority splits, split-during-migration-fence);
* :meth:`LinkFault.isolate` — one node cut off from a set of peers (the
  coordinator-isolating pattern);
* :meth:`LinkFault.asymmetric` — directional blocking: messages one way are
  dropped, the reverse direction still flows;
* :meth:`LinkFault.lossy` — each traversal of a listed pair is dropped with
  a fixed probability, drawn from the LAN's interned ``lan.loss`` stream
  (deterministic per seed, untouched when no lossy fault is installed);
* :meth:`LinkFault.slow` — per-pair latency multipliers (a congested or
  misbehaving link that delays but still delivers).

Faults compose: blocked pairs union, loss probabilities combine as
independent drops, latency factors multiply.  Everything is expressed in
*directional* pairs; the symmetric constructors simply emit both directions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

#: A directional link: (sender name, destination name).
LinkPair = Tuple[str, str]


def _both_directions(group_a: Iterable[str],
                     group_b: Iterable[str]) -> Tuple[LinkPair, ...]:
    pairs = []
    for a in group_a:
        for b in group_b:
            pairs.append((a, b))
            pairs.append((b, a))
    return tuple(pairs)


@dataclass(frozen=True)
class LinkFault:
    """One named, installable network fault (immutable description).

    ``blocked`` pairs drop every message; ``loss`` maps pairs to a drop
    probability per traversal; ``latency_factors`` maps pairs to a
    multiplier on the LAN delivery delay.  All pairs are directional.
    """

    name: str
    blocked: Tuple[LinkPair, ...] = ()
    loss: Tuple[Tuple[LinkPair, float], ...] = ()
    latency_factors: Tuple[Tuple[LinkPair, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault needs a non-empty name")
        for _, probability in self.loss:
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"loss probability must be within [0, 1], "
                    f"got {probability}")
        for _, factor in self.latency_factors:
            if factor <= 0.0:
                raise ValueError(
                    f"latency factor must be positive, got {factor}")

    # -- constructors -------------------------------------------------------------
    @classmethod
    def partition(cls, name: str, group_a: Iterable[str],
                  group_b: Iterable[str]) -> "LinkFault":
        """A symmetric netsplit: all traffic between the groups is dropped."""
        return cls(name=name, blocked=_both_directions(group_a, group_b))

    @classmethod
    def isolate(cls, name: str, node: str,
                peers: Iterable[str]) -> "LinkFault":
        """Cut ``node`` off from every peer, both directions (coordinator
        isolation)."""
        return cls.partition(name, [node], [p for p in peers if p != node])

    @classmethod
    def asymmetric(cls, name: str,
                   pairs: Iterable[LinkPair]) -> "LinkFault":
        """Block exactly the given directional pairs (the reverse flows)."""
        return cls(name=name, blocked=tuple(pairs))

    @classmethod
    def lossy(cls, name: str, group_a: Iterable[str],
              group_b: Iterable[str], probability: float) -> "LinkFault":
        """Drop each message between the groups with ``probability``
        (both directions, drawn from the interned ``lan.loss`` stream)."""
        return cls(name=name, loss=tuple(
            (pair, probability)
            for pair in _both_directions(group_a, group_b)))

    @classmethod
    def slow(cls, name: str, group_a: Iterable[str], group_b: Iterable[str],
             factor: float) -> "LinkFault":
        """Multiply the delivery latency between the groups by ``factor``."""
        return cls(name=name, latency_factors=tuple(
            (pair, factor)
            for pair in _both_directions(group_a, group_b)))


@dataclass
class FaultTables:
    """The combined effect of every installed fault, in hot-path shape.

    Rebuilt whole on each install/remove (fault changes are rare; message
    sends are not): a flat blocked-pair set, a pair→probability loss map
    (independent-drop composition) and a pair→factor latency map
    (multiplicative composition).
    """

    blocked: Set[LinkPair] = field(default_factory=set)
    loss: Dict[LinkPair, float] = field(default_factory=dict)
    latency: Dict[LinkPair, float] = field(default_factory=dict)

    @classmethod
    def combine(cls, faults: Iterable[LinkFault]) -> "FaultTables":
        tables = cls()
        for fault in faults:
            tables.blocked.update(fault.blocked)
            for pair, probability in fault.loss:
                kept = (1.0 - tables.loss.get(pair, 0.0)) * (1.0 - probability)
                tables.loss[pair] = 1.0 - kept
            for pair, factor in fault.latency_factors:
                tables.latency[pair] = tables.latency.get(pair, 1.0) * factor
        return tables
