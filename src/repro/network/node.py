"""The physical machine hosting one database server.

A :class:`Node` bundles everything that crashes together (Sect. 2.4 of the
paper: the database component, the group-communication component and the
replication logic of one server all reside in the same process and therefore
fail together):

* a set of CPUs and disks modelled as FIFO :class:`~repro.sim.resources.Resource`s,
* a network endpoint (the inbox used by the LAN),
* a registry of *volatile* simulated processes, all killed on crash,
* a registry of *stable storage* objects that survive crashes,
* crash / recovery state with listeners (failure detectors, experiments).

The paper's Table 4 gives each server 2 CPUs and 2 disks; those are the
defaults here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional

from ..core.layers import implements
from ..sim.engine import Simulator
from ..sim.process import Process
from ..sim.resources import Resource, Store

#: Listener signature: listener(node, event) with event in {"crash", "recover"}.
NodeListener = Callable[["Node", str], None]


@implements("links")
class Node:
    """One machine on the simulated LAN."""

    def __init__(self, sim: Simulator, name: str, cpus: int = 2, disks: int = 2,
                 cpu_time_per_io: float = 0.4,
                 cpu_time_per_network_op: float = 0.07) -> None:
        if cpus < 1 or disks < 1:
            raise ValueError("a node needs at least one CPU and one disk")
        self.sim = sim
        self.name = name
        self.cpu = Resource(sim, capacity=cpus, name=f"{name}.cpu")
        self.disk = Resource(sim, capacity=disks, name=f"{name}.disk")
        self.cpu_time_per_io = cpu_time_per_io
        self.cpu_time_per_network_op = cpu_time_per_network_op
        #: Gray-failure baseline: :meth:`degrade_cpu` scales the two CPU-cost
        #: attributes from these captured values, :meth:`restore_cpu` puts
        #: them back.
        self._base_cpu_time_per_io = cpu_time_per_io
        self._base_cpu_time_per_network_op = cpu_time_per_network_op
        self.inbox = Store(sim, name=f"{name}.inbox")
        self._crashed = False
        self._processes: List[Process] = []
        self._prune_at = 64
        self._stable: Dict[str, Any] = {}
        self._listeners: List[NodeListener] = []
        #: Number of times this node has crashed (incarnation counter).
        self.crash_count = 0
        #: Simulated times of crashes and recoveries, for the experiment audit.
        self.crash_times: List[float] = []
        self.recovery_times: List[float] = []

    # -- status ---------------------------------------------------------------
    @property
    def is_up(self) -> bool:
        """True while the node has not crashed (or has recovered)."""
        return not self._crashed

    @property
    def is_crashed(self) -> bool:
        """True while the node is down."""
        return self._crashed

    # -- process hosting --------------------------------------------------------
    def spawn(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a volatile process on this node.

        The process is killed if the node crashes.  Crashed nodes refuse to
        start new processes, which catches model bugs where a dead server
        keeps doing work.
        """
        if self._crashed:
            raise RuntimeError(f"cannot spawn on crashed node {self.name!r}")
        process = self.sim.spawn(generator, name=f"{self.name}:{name or 'proc'}")
        self._processes.append(process)
        self._prune_finished()
        return process

    def _prune_finished(self) -> None:
        # Doubling threshold: pruning on a fixed bound made every spawn scan
        # the whole registry once more than ~64 processes stayed alive.
        if len(self._processes) > self._prune_at:
            self._processes = [p for p in self._processes if p.is_alive]
            self._prune_at = max(64, 2 * len(self._processes))

    # -- stable storage registry -------------------------------------------------
    def register_stable(self, key: str, obj: Any) -> Any:
        """Register ``obj`` as surviving crashes under ``key`` and return it."""
        self._stable[key] = obj
        return obj

    def stable(self, key: str) -> Any:
        """Return the stable object registered under ``key``."""
        return self._stable[key]

    def stable_keys(self) -> List[str]:
        """Names of all registered stable-storage objects."""
        return list(self._stable)

    # -- CPU / disk helpers --------------------------------------------------------
    # These return the resource's ``use`` generator directly instead of
    # delegating through a wrapper generator: a ``yield from`` pass-through
    # frame costs an allocation per call and a hop per resume, and these are
    # called for every I/O and network operation of every server.
    def use_cpu(self, duration: float):
        """Generator: occupy one CPU of the node for ``duration`` ms."""
        return self.cpu.use(duration)

    def use_disk(self, duration: float):
        """Generator: occupy one disk of the node for ``duration`` ms."""
        return self.disk.use(duration)

    def charge_network_cpu(self):
        """Generator: charge the CPU cost of one network operation."""
        return self.cpu.use(self.cpu_time_per_network_op)

    # -- gray failures ---------------------------------------------------------------
    def degrade_cpu(self, factor: float) -> None:
        """Multiply the per-operation CPU costs by ``factor``.

        Models a slow-but-alive machine (thermal throttling, a noisy
        neighbour): the node keeps answering, just late.  Costs are read at
        use time, so ongoing workloads pick the change up immediately —
        except the dispatcher loop, which caches its per-message charge at
        start and applies a degradation on its next (re)start.
        """
        if factor < 1.0:
            raise ValueError("a degradation factor must be >= 1")
        self.cpu_time_per_io = self._base_cpu_time_per_io * factor
        self.cpu_time_per_network_op = self._base_cpu_time_per_network_op * factor

    def restore_cpu(self) -> None:
        """End a :meth:`degrade_cpu` episode."""
        self.cpu_time_per_io = self._base_cpu_time_per_io
        self.cpu_time_per_network_op = self._base_cpu_time_per_network_op

    # -- crash / recovery ------------------------------------------------------------
    def add_listener(self, listener: NodeListener) -> None:
        """Subscribe to crash / recovery notifications."""
        self._listeners.append(listener)

    def crash(self, cause: object = "crash") -> None:
        """Crash the node: kill volatile processes, drop queued work.

        Stable-storage objects registered via :meth:`register_stable` are kept
        untouched; everything else (inbox, resource queues, running processes)
        is lost, exactly as in the paper's failure model.
        """
        if self._crashed:
            return
        self._crashed = True
        self.crash_count += 1
        self.crash_times.append(self.sim.now)
        for process in self._processes:
            process.kill(cause=f"{self.name}:{cause}")
        self._processes.clear()
        self._prune_at = 64
        self.inbox.clear()
        self.cpu.cancel_all()
        self.disk.cancel_all()
        for listener in list(self._listeners):
            listener(self, "crash")

    def recover(self) -> None:
        """Mark the node as up again.

        The node itself only flips its state and notifies listeners; the
        *application-level* recovery (database redo, group-communication state
        transfer or message replay) is driven by the replica server built on
        top of the node, because what recovery means depends on the
        replication technique — that distinction is the heart of the paper.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.recovery_times.append(self.sim.now)
        for listener in list(self._listeners):
            listener(self, "recover")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "crashed" if self._crashed else "up"
        return f"<Node {self.name!r} {state}>"
