"""Local-area network model.

The paper's Table 4 models the network with two constants: 0.07 ms for a
message or a broadcast on the network, and 0.07 ms of CPU time per network
operation.  The :class:`Lan` therefore delivers every message after a fixed
(optionally jittered) latency, and charges no bandwidth: a 100 Mb/s switched
LAN is effectively uncontended at the message sizes and rates of the study.

Messages addressed to a crashed node are dropped, as are messages whose
sender and destination are separated by an active partition.  Delivery is
FIFO per sender–destination pair (the heap tie-break of the simulator
preserves insertion order for equal timestamps), which is the usual
assumption for a LAN transport such as TCP.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.layers import implements
from ..sim.engine import Simulator
from ..sim.events import Deferred
from .message import Message
from .node import Node


@implements("links")
class Lan:
    """A broadcast-capable local-area network connecting :class:`Node` objects."""

    def __init__(self, sim: Simulator, latency: float = 0.07,
                 jitter: float = 0.0) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self._jitter_stream = sim.random.stream("lan.jitter") if jitter else None
        self._nodes: Dict[str, Node] = {}
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        #: Count of messages handed to the network (before drops).
        self.sent_count = 0
        #: Count of messages actually delivered to an inbox.
        self.delivered_count = 0
        #: Count of messages dropped (crashed destination or partition).
        self.dropped_count = 0

    # -- topology ---------------------------------------------------------------
    def attach(self, node: Node) -> Node:
        """Connect ``node`` to the LAN and return it."""
        if node.name in self._nodes:
            raise ValueError(f"a node named {node.name!r} is already attached")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        """Return the attached node called ``name``."""
        return self._nodes[name]

    def node_names(self) -> List[str]:
        """Names of all attached nodes, in attachment order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        """All attached nodes, in attachment order."""
        return list(self._nodes.values())

    # -- partitions ----------------------------------------------------------------
    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Block all traffic between the two groups of node names."""
        for a in group_a:
            for b in group_b:
                self._blocked_pairs.add((a, b))
                self._blocked_pairs.add((b, a))

    def heal(self) -> None:
        """Remove every partition."""
        self._blocked_pairs.clear()

    def is_blocked(self, sender: str, destination: str) -> bool:
        """True if a partition currently separates ``sender`` and ``destination``."""
        return (sender, destination) in self._blocked_pairs

    # -- transmission -----------------------------------------------------------------
    def _delivery_delay(self) -> float:
        delay = self.latency
        if self.jitter:
            delay += self.jitter * self._jitter_stream.random()
        return delay

    def send(self, message: Message) -> None:
        """Send a point-to-point message.

        The message is silently dropped if the destination is unknown,
        crashed, or partitioned away — exactly what a datagram network does.
        Sending stamps :attr:`~repro.network.message.Message.sent_at` on the
        message itself (no per-send envelope copy; callers hand over fresh
        envelopes, and a re-sent message is simply re-stamped).
        """
        self.sent_count += 1
        destination = self._nodes.get(message.destination)
        if destination is None:
            self.dropped_count += 1
            return
        if self._blocked_pairs and \
                (message.sender, message.destination) in self._blocked_pairs:
            self.dropped_count += 1
            return
        if message.sent_at is not None:
            # Re-send of an already-stamped envelope (retransmission): copy
            # it so the earlier in-flight delivery keeps its own timestamp.
            message = Message(sender=message.sender,
                              destination=message.destination,
                              kind=message.kind, payload=message.payload,
                              message_id=message.message_id)
        object.__setattr__(message, "sent_at", self.sim.now)
        Deferred(self.sim, self._delivery_delay(), self._deliver,
                 (message, destination))

    def broadcast(self, message: Message,
                  destinations: Optional[Iterable[str]] = None) -> None:
        """Send one copy of ``message`` to every destination (default: all nodes).

        The sender receives its own copy too; self-delivery is how a process
        learns the total order of its own broadcasts.
        """
        names = list(destinations) if destinations is not None else self.node_names()
        for name in names:
            self.send(message.with_destination(name))

    def _deliver(self, message: Message, destination: Node) -> None:
        if destination._crashed:
            # The destination crashed while the message was in flight.
            self.dropped_count += 1
            self._note_drop(message, "destination-crashed")
            return
        if self._blocked_pairs and \
                (message.sender, message.destination) in self._blocked_pairs:
            self.dropped_count += 1
            self._note_drop(message, "partitioned")
            return
        self.delivered_count += 1
        destination.inbox.put(message)

    def _note_drop(self, message: Message, reason: str) -> None:
        """Record an in-flight message loss on the span tracer, if attached."""
        obs = self.sim.obs
        if obs is not None:
            obs.instant("lan.drop", track="lan",
                        labels={"kind": message.kind,
                                "sender": message.sender,
                                "destination": message.destination,
                                "reason": reason})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<Lan nodes={len(self._nodes)} sent={self.sent_count} "
                f"delivered={self.delivered_count}>")
