"""Local-area network model.

The paper's Table 4 models the network with two constants: 0.07 ms for a
message or a broadcast on the network, and 0.07 ms of CPU time per network
operation.  The :class:`Lan` therefore delivers every message after a fixed
(optionally jittered) latency, and charges no bandwidth: a 100 Mb/s switched
LAN is effectively uncontended at the message sizes and rates of the study.

Messages addressed to a crashed node are dropped, as are messages whose
sender and destination are separated by an active partition, and — when a
:class:`~repro.network.faults.LinkFault` with loss probabilities is
installed — messages sampled away by the interned ``lan.loss`` stream.
Delivery is FIFO per sender–destination pair (the heap tie-break of the
simulator preserves insertion order for equal timestamps), which is the
usual assumption for a LAN transport such as TCP.

Blocking is *directional* throughout: a blocked ``(sender, destination)``
pair drops messages that way only, which is what an asymmetric link failure
looks like.  The symmetric helpers (:meth:`Lan.partition`,
:meth:`~repro.network.faults.LinkFault.partition`) simply block both
directions.  When no fault is installed and nothing is blocked, the send
path is byte-for-byte the pre-fault-model code: no loss stream exists, no
extra draws happen, and the event schedule is bit-identical to the seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.layers import implements
from ..sim.engine import Simulator
from ..sim.events import Deferred
from .faults import FaultTables, LinkFault
from .message import Message
from .node import Node

#: The drop causes of :attr:`Lan.dropped_by_cause`.
DROP_CAUSES = ("destination-unknown", "destination-crashed", "partitioned",
               "lossy-link")


@implements("links")
class Lan:
    """A broadcast-capable local-area network connecting :class:`Node` objects."""

    def __init__(self, sim: Simulator, latency: float = 0.07,
                 jitter: float = 0.0) -> None:
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.sim = sim
        self.latency = latency
        self.jitter = jitter
        self._jitter_stream = sim.random.stream("lan.jitter") if jitter else None
        #: The interned loss stream; created on the first install of a lossy
        #: fault and never before, so fault-free runs make no extra draws.
        self._loss_stream = None
        self._nodes: Dict[str, Node] = {}
        #: Directionally blocked pairs from :meth:`block` / :meth:`partition`.
        self._manual_blocked: Set[Tuple[str, str]] = set()
        #: Installed faults by name, in installation order.
        self._faults: Dict[str, LinkFault] = {}
        #: Combined effect of the installed faults (hot-path tables).
        self._fault_tables = FaultTables()
        #: Union of manual and fault blocking — the set the send and
        #: delivery paths actually consult.
        self._blocked_pairs: Set[Tuple[str, str]] = set()
        #: Count of messages handed to the network (before drops).
        self.sent_count = 0
        #: Count of messages actually delivered to an inbox.
        self.delivered_count = 0
        #: Count of messages dropped, total over all causes.
        self.dropped_count = 0
        #: Drops split by cause (:data:`DROP_CAUSES`), cause -> count.
        self.dropped_by_cause: Dict[str, int] = {}

    # -- topology ---------------------------------------------------------------
    def attach(self, node: Node) -> Node:
        """Connect ``node`` to the LAN and return it."""
        if node.name in self._nodes:
            raise ValueError(f"a node named {node.name!r} is already attached")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        """Return the attached node called ``name``."""
        return self._nodes[name]

    def node_names(self) -> List[str]:
        """Names of all attached nodes, in attachment order."""
        return list(self._nodes)

    @property
    def nodes(self) -> List[Node]:
        """All attached nodes, in attachment order."""
        return list(self._nodes.values())

    # -- partitions and manual blocking ------------------------------------------------
    def block(self, sender: str, destination: str) -> None:
        """Block the directional link ``sender`` → ``destination``.

        Only that direction is affected: replies from ``destination`` to
        ``sender`` still flow, which models an asymmetric link failure.
        Symmetric blocking takes two calls (or :meth:`partition`).
        """
        self._manual_blocked.add((sender, destination))
        self._rebuild_blocked()

    def unblock(self, sender: str, destination: str) -> None:
        """Remove a directional block added by :meth:`block` /
        :meth:`partition` (no-op if absent; fault blocking is unaffected —
        remove the fault instead)."""
        self._manual_blocked.discard((sender, destination))
        self._rebuild_blocked()

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> None:
        """Block all traffic between the two groups of node names."""
        for a in group_a:
            for b in group_b:
                self._manual_blocked.add((a, b))
                self._manual_blocked.add((b, a))
        self._rebuild_blocked()

    def heal(self) -> None:
        """Remove every manual block and partition (installed faults stay)."""
        self._manual_blocked.clear()
        self._rebuild_blocked()

    def is_blocked(self, sender: str, destination: str) -> bool:
        """True if ``sender`` → ``destination`` traffic is currently dropped
        (by a manual block, a partition, or an installed fault)."""
        return (sender, destination) in self._blocked_pairs

    # -- faults -----------------------------------------------------------------------
    def install_fault(self, fault: LinkFault) -> LinkFault:
        """Activate ``fault`` (replacing any installed fault of the same name).

        Installing the first fault with loss probabilities interns the
        ``lan.loss`` stream; stream creation does not perturb any other
        stream, and the stream is only drawn from when a message actually
        traverses a lossy pair.
        """
        self._faults[fault.name] = fault
        self._rebuild_faults()
        if self._fault_tables.loss and self._loss_stream is None:
            self._loss_stream = self.sim.random.stream("lan.loss")
        return fault

    def remove_fault(self, name: str) -> Optional[LinkFault]:
        """Deactivate the fault installed under ``name`` (None if absent)."""
        fault = self._faults.pop(name, None)
        if fault is not None:
            self._rebuild_faults()
        return fault

    def active_faults(self) -> List[str]:
        """Names of the currently installed faults, in installation order."""
        return list(self._faults)

    def schedule_fault(self, fault: LinkFault, at: float,
                       until: Optional[float] = None) -> LinkFault:
        """Install ``fault`` at simulated time ``at``; remove it at ``until``.

        This is how faults get durations: a netsplit that starts at ``at``
        and heals at ``until``.  With ``until=None`` the fault stays until
        removed explicitly.
        """
        if until is not None and until <= at:
            raise ValueError("a fault must be removed after it is installed")
        self.sim.call_at(at, lambda: self.install_fault(fault))
        if until is not None:
            self.sim.call_at(until, lambda: self.remove_fault(fault.name))
        return fault

    def _rebuild_faults(self) -> None:
        self._fault_tables = FaultTables.combine(self._faults.values())
        self._rebuild_blocked()

    def _rebuild_blocked(self) -> None:
        self._blocked_pairs = self._manual_blocked | self._fault_tables.blocked

    # -- transmission -----------------------------------------------------------------
    def _delivery_delay(self) -> float:
        delay = self.latency
        if self.jitter:
            delay += self.jitter * self._jitter_stream.random()
        return delay

    def send(self, message: Message) -> None:
        """Send a point-to-point message.

        The message is silently dropped if the destination is unknown,
        crashed, partitioned away, or sampled away by a lossy link — exactly
        what a datagram network does.  Sending stamps
        :attr:`~repro.network.message.Message.sent_at` on the message itself
        (no per-send envelope copy; callers hand over fresh envelopes, and a
        re-sent message is simply re-stamped).
        """
        self.sent_count += 1
        destination = self._nodes.get(message.destination)
        if destination is None:
            self._drop(message, "destination-unknown")
            return
        if self._blocked_pairs and \
                (message.sender, message.destination) in self._blocked_pairs:
            self._drop(message, "partitioned")
            return
        delay = self._delivery_delay()
        tables = self._fault_tables
        if tables.loss or tables.latency:
            pair = (message.sender, message.destination)
            probability = tables.loss.get(pair)
            if probability and self._loss_stream.random() < probability:
                self._drop(message, "lossy-link")
                return
            factor = tables.latency.get(pair)
            if factor is not None:
                delay *= factor
        if message.sent_at is not None:
            # Re-send of an already-stamped envelope (retransmission): copy
            # it so the earlier in-flight delivery keeps its own timestamp.
            message = Message(sender=message.sender,
                              destination=message.destination,
                              kind=message.kind, payload=message.payload,
                              message_id=message.message_id)
        object.__setattr__(message, "sent_at", self.sim.now)
        Deferred(self.sim, delay, self._deliver, (message, destination))

    def broadcast(self, message: Message,
                  destinations: Optional[Iterable[str]] = None) -> None:
        """Send one copy of ``message`` to every destination (default: all nodes).

        The sender receives its own copy too; self-delivery is how a process
        learns the total order of its own broadcasts.
        """
        names = list(destinations) if destinations is not None else self.node_names()
        for name in names:
            self.send(message.with_destination(name))

    def _deliver(self, message: Message, destination: Node) -> None:
        if destination._crashed:
            # The destination crashed while the message was in flight.
            self._drop(message, "destination-crashed")
            return
        if self._blocked_pairs and \
                (message.sender, message.destination) in self._blocked_pairs:
            # A partition came up while the message was in flight.
            self._drop(message, "partitioned")
            return
        self.delivered_count += 1
        destination.inbox.put(message)

    def _drop(self, message: Message, cause: str) -> None:
        """Account one dropped message (total, per cause, span tracer)."""
        self.dropped_count += 1
        self.dropped_by_cause[cause] = self.dropped_by_cause.get(cause, 0) + 1
        obs = self.sim.obs
        if obs is not None:
            obs.instant("lan.drop", track="lan",
                        labels={"kind": message.kind,
                                "sender": message.sender,
                                "destination": message.destination,
                                "reason": cause})

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<Lan nodes={len(self._nodes)} sent={self.sent_count} "
                f"delivered={self.delivered_count}>")
