"""Network message representation.

Messages are small, frozen envelopes: a sender, a destination, a ``kind``
tag used by protocol dispatch, and an arbitrary payload.  A process-wide
monotonically increasing identifier makes every message distinguishable, which
the group-communication layer relies on for duplicate suppression and
acknowledgement bookkeeping.  The one exception to immutability is
``sent_at``: the LAN stamps it in place when the message enters the network
(sparing a copy per send on the hot path), so it is excluded from
equality and hashing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_message_ids = itertools.count(1)


def next_message_id() -> int:
    """Return a fresh unique message identifier."""
    return next(_message_ids)


@dataclass(frozen=True, slots=True)
class Message:
    """An envelope travelling on the simulated LAN.

    Attributes
    ----------
    sender:
        Name of the sending node.
    destination:
        Name of the receiving node (point-to-point) or ``"*"`` for the
        broadcast pseudo-destination.
    kind:
        Protocol-level tag (``"DATA"``, ``"ORDERED"``, ``"ACK"``...), used by
        receivers to dispatch.
    payload:
        Arbitrary application data.
    message_id:
        Unique identifier assigned at creation.
    sent_at:
        Simulated time at which the message entered the network.
    """

    sender: str
    destination: str
    kind: str
    payload: Any = None
    message_id: int = field(default_factory=next_message_id)
    #: Stamped in place by :meth:`repro.network.lan.Lan.send` (the one
    #: sanctioned mutation of the otherwise-frozen envelope), so it is
    #: excluded from equality/hashing — a stored message must not change
    #: identity when it is sent.
    sent_at: Optional[float] = field(default=None, compare=False)

    def with_destination(self, destination: str) -> "Message":
        """Return a copy of this message addressed to ``destination``.

        The copy keeps the same ``message_id`` so that the per-destination
        copies produced by a broadcast are recognisably the same message.
        """
        return Message(sender=self.sender, destination=destination,
                       kind=self.kind, payload=self.payload,
                       message_id=self.message_id, sent_at=self.sent_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Message(#{self.message_id} {self.kind} "
                f"{self.sender}->{self.destination})")
