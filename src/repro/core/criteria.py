"""The safety criteria as named definitions, and the technique registry.

:class:`SafetyCriterion` captures the *statement* of each criterion as the
paper gives it (Sect. 2.1 for 1-safe / 2-safe / very safe, Sect. 5.1 for the
group-based levels), so that documentation, experiment reports and tests can
quote the definitions from one place.  ``TECHNIQUE_SAFETY`` maps the
replication techniques implemented in :mod:`repro.replication` to the level
their client notification provides — the claim the failure-injection
experiments then try to falsify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from .safety import SafetyLevel


@dataclass(frozen=True)
class SafetyCriterion:
    """A safety criterion: its level, its statement, and what it relies on."""

    level: SafetyLevel
    statement: str
    durability_relies_on: str
    can_lose_transaction_when: str


#: The criteria as stated in the paper.
CRITERIA: Mapping[SafetyLevel, SafetyCriterion] = {
    SafetyLevel.ZERO_SAFE: SafetyCriterion(
        level=SafetyLevel.ZERO_SAFE,
        statement=(
            "The client is notified as soon as the transaction is delivered "
            "on one server; it has not been logged anywhere."),
        durability_relies_on="nothing",
        can_lose_transaction_when="the delegate crashes before its writes "
                                  "reach stable storage"),
    SafetyLevel.ONE_SAFE: SafetyCriterion(
        level=SafetyLevel.ONE_SAFE,
        statement=(
            "When the client receives the notification of the commit, the "
            "transaction has been logged and will eventually commit on the "
            "delegate server."),
        durability_relies_on="the delegate's stable storage",
        can_lose_transaction_when="the delegate crashes and the system "
                                  "accepts conflicting transactions while it "
                                  "is down"),
    SafetyLevel.GROUP_SAFE: SafetyCriterion(
        level=SafetyLevel.GROUP_SAFE,
        statement=(
            "When the client receives the notification, the message that "
            "contains the transaction is guaranteed to be delivered (but not "
            "necessarily processed) on all available servers."),
        durability_relies_on="the group of servers",
        can_lose_transaction_when="the group fails (too many servers crash)"),
    SafetyLevel.GROUP_ONE_SAFE: SafetyCriterion(
        level=SafetyLevel.GROUP_ONE_SAFE,
        statement=(
            "When the client receives the notification, the message is "
            "guaranteed to be delivered on all available servers and the "
            "transaction was logged on the delegate."),
        durability_relies_on="the group of servers and the delegate's stable "
                             "storage",
        can_lose_transaction_when="the group fails and the delegate crashes "
                                  "(or never recovers)"),
    SafetyLevel.TWO_SAFE: SafetyCriterion(
        level=SafetyLevel.TWO_SAFE,
        statement=(
            "When the client receives the notification, the transaction is "
            "guaranteed to have been logged on all available servers, and "
            "thus will eventually commit on all available servers."),
        durability_relies_on="stable storage on every available server",
        can_lose_transaction_when="never (even if all servers crash)"),
    SafetyLevel.VERY_SAFE: SafetyCriterion(
        level=SafetyLevel.VERY_SAFE,
        statement=(
            "When the client receives the notification, the transaction is "
            "guaranteed to have been logged on all servers, available or "
            "not."),
        durability_relies_on="stable storage on every server",
        can_lose_transaction_when="never, but a single crash makes the "
                                  "system unavailable"),
}


#: Mapping from the technique names of ``repro.replication`` to the safety
#: level their notification provides.
TECHNIQUE_SAFETY: Dict[str, SafetyLevel] = {
    "0-safe": SafetyLevel.ZERO_SAFE,
    "1-safe": SafetyLevel.ONE_SAFE,
    "group-safe": SafetyLevel.GROUP_SAFE,
    "group-1-safe": SafetyLevel.GROUP_ONE_SAFE,
    "2-safe": SafetyLevel.TWO_SAFE,
}


def criterion_for(level: SafetyLevel) -> SafetyCriterion:
    """Return the criterion definition of ``level``."""
    return CRITERIA[level]


def safety_of_technique(technique: str) -> SafetyLevel:
    """Return the safety level the named replication technique provides."""
    try:
        return TECHNIQUE_SAFETY[technique]
    except KeyError:
        raise ValueError(f"unknown replication technique {technique!r}") from None
