"""Machine-checkable protocol-layer contracts.

The paper's replication techniques are defined *on top of* a stack of group
communication abstractions, and the ROADMAP's pluggable total-order work
needs that stack to be explicit before it can be decomposed.  This module
gives every protocol class a declared position in the canonical layer order

    links -> failure_detector -> reliable_broadcast -> total_order
          -> membership -> replication

via two class decorators, in the spirit of the ``@implements`` / ``@uses``
discipline of introduction-to-reliable-distributed-programming codebases:

    @implements("total_order")
    @uses("links")
    class AtomicBroadcastEndpoint: ...

The decorators are pure metadata — they attach ``__layer_implements__`` and
``__layer_uses__`` tuples to the class and return it unchanged — but they are
*statically enforced*: the ``layer-contract`` rule of
:mod:`repro.analysis.rules` rebuilds the decorator and import graphs from
source and fails the lint gate on upward dependencies (a layer using a layer
above itself) and, in strict mode, on skip-layer dependencies (a layer
reaching past an implemented intermediate layer).
"""

from __future__ import annotations

from typing import Callable, Tuple, Type, TypeVar

C = TypeVar("C", bound=type)

#: The canonical bottom-up layer order of the protocol stack.
LAYER_ORDER: Tuple[str, ...] = (
    "links",
    "failure_detector",
    "reliable_broadcast",
    "total_order",
    "membership",
    "replication",
)

_LAYER_INDEX = {name: index for index, name in enumerate(LAYER_ORDER)}


def layer_index(layer: str) -> int:
    """Position of ``layer`` in :data:`LAYER_ORDER` (0 = bottom)."""
    try:
        return _LAYER_INDEX[layer]
    except KeyError:
        raise ValueError(
            f"unknown protocol layer {layer!r}; "
            f"expected one of {', '.join(LAYER_ORDER)}") from None


def implements(layer: str) -> Callable[[C], C]:
    """Class decorator: declare that the class implements ``layer``."""
    layer_index(layer)  # validate eagerly, at decoration time

    def decorate(cls: C) -> C:
        declared = getattr(cls, "__layer_implements__", ())
        # Read only declarations made on this class, not inherited ones.
        if "__layer_implements__" not in cls.__dict__:
            declared = ()
        cls.__layer_implements__ = declared + (layer,)
        return cls

    return decorate


def uses(layer: str) -> Callable[[C], C]:
    """Class decorator: declare that the class depends on ``layer``."""
    layer_index(layer)

    def decorate(cls: C) -> C:
        declared = getattr(cls, "__layer_uses__", ())
        if "__layer_uses__" not in cls.__dict__:
            declared = ()
        cls.__layer_uses__ = declared + (layer,)
        return cls

    return decorate


def implemented_layers(cls: Type) -> Tuple[str, ...]:
    """Layers ``cls`` declares it implements (own declarations only)."""
    return tuple(cls.__dict__.get("__layer_implements__", ()))


def used_layers(cls: Type) -> Tuple[str, ...]:
    """Layers ``cls`` declares it uses (own declarations only)."""
    return tuple(cls.__dict__.get("__layer_uses__", ()))
