"""The paper's primary contribution, formalised.

* :mod:`repro.core.safety` — the safety levels and their two-axis
  classification (Table 1).
* :mod:`repro.core.criteria` — the criterion statements and the mapping from
  replication techniques to levels.
* :mod:`repro.core.matrix` — derivations of Tables 1, 2 and 3.
* :mod:`repro.core.durability` / :mod:`repro.core.audit` — the execution
  audit: does a run actually provide the guarantee its technique claims?
* :mod:`repro.core.reliability` — the Sect. 7 scaling analysis (lazy vs
  group-safe ACID-violation probability as the group grows).
* :mod:`repro.core.layers` — the protocol-stack layer contracts
  (``@implements`` / ``@uses``) the ``layer-contract`` lint rule enforces.
"""

from .audit import (AuditReport, SafetyAudit, classify_result,
                    classify_results, weakest_guarantee)
from .layers import (LAYER_ORDER, implemented_layers, implements, layer_index,
                     used_layers, uses)
from .criteria import (CRITERIA, TECHNIQUE_SAFETY, SafetyCriterion,
                       criterion_for, safety_of_technique)
from .durability import (TransactionFate, committed_state_of,
                         is_transaction_lost, transaction_fate)
from .matrix import (CrashToleranceRow, LossCondition, crash_tolerance_table,
                     group_safety_comparison_table, loss_condition,
                     partitioned_loss_condition, render_loss_table,
                     render_safety_matrix, safety_matrix)
from .reliability import (ScalingPoint, acid_violation_probability,
                          group_failure_probability,
                          lazy_conflict_probability,
                          pairwise_conflict_probability, scaling_comparison)
from .safety import (DeliveredOn, LoggedOn, SafetyLevel, classify,
                     classify_notification)

__all__ = [
    "SafetyLevel",
    "DeliveredOn",
    "LoggedOn",
    "classify",
    "classify_notification",
    "SafetyCriterion",
    "CRITERIA",
    "TECHNIQUE_SAFETY",
    "criterion_for",
    "safety_of_technique",
    "safety_matrix",
    "render_safety_matrix",
    "crash_tolerance_table",
    "CrashToleranceRow",
    "loss_condition",
    "partitioned_loss_condition",
    "group_safety_comparison_table",
    "LossCondition",
    "render_loss_table",
    "SafetyAudit",
    "AuditReport",
    "classify_result",
    "classify_results",
    "weakest_guarantee",
    "TransactionFate",
    "transaction_fate",
    "is_transaction_lost",
    "committed_state_of",
    "group_failure_probability",
    "lazy_conflict_probability",
    "pairwise_conflict_probability",
    "acid_violation_probability",
    "scaling_comparison",
    "ScalingPoint",
    "LAYER_ORDER",
    "layer_index",
    "implements",
    "uses",
    "implemented_layers",
    "used_layers",
]
