"""Durability checks over a (possibly crashed and recovered) cluster.

"Losing a transaction" in the sense of the paper means: a client was told its
transaction committed, and yet the replicated database — after the failure
pattern under study and the subsequent recoveries — does not (and never will)
reflect it.  The functions below decide this question for a concrete
:class:`~repro.replication.cluster.ReplicatedDatabaseCluster`, looking at the
evidence that survives crashes:

* the testable-transaction registry and the write-ahead log of every *up*
  server (is the transaction already committed / durably logged there?);
* the group-communication component's stable message log (will the
  transaction still be delivered and processed — the end-to-end case?);
* pending, not-yet-processed deliveries of up servers (the transaction is
  still on its way to being committed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..replication.cluster import ReplicatedDatabaseCluster


@dataclass
class TransactionFate:
    """Where a confirmed transaction stands after a failure scenario."""

    txn_id: str
    confirmed_to_client: bool
    committed_on: List[str] = field(default_factory=list)
    durably_logged_on: List[str] = field(default_factory=list)
    recoverable_from_gcs_log_on: List[str] = field(default_factory=list)
    pending_delivery_on: List[str] = field(default_factory=list)
    surviving_servers: List[str] = field(default_factory=list)

    @property
    def is_lost(self) -> bool:
        """True if no up server has, or will ever regain, the transaction."""
        reachable = (set(self.committed_on) | set(self.durably_logged_on) |
                     set(self.recoverable_from_gcs_log_on) |
                     set(self.pending_delivery_on))
        return self.confirmed_to_client and not (reachable &
                                                 set(self.surviving_servers))

    @property
    def is_durable_everywhere(self) -> bool:
        """True if every surviving server already has the transaction."""
        surviving = set(self.surviving_servers)
        return surviving.issubset(set(self.committed_on) |
                                  set(self.recoverable_from_gcs_log_on) |
                                  set(self.pending_delivery_on))


def transaction_fate(cluster: "ReplicatedDatabaseCluster", txn_id: str,
                     confirmed_to_client: bool = True,
                     servers: Optional[Sequence[str]] = None) -> TransactionFate:
    """Collect the evidence about ``txn_id`` across the cluster's servers."""
    names = list(servers) if servers is not None else cluster.server_names()
    fate = TransactionFate(txn_id=txn_id,
                           confirmed_to_client=confirmed_to_client)
    fate.surviving_servers = [name for name in names
                              if cluster.node(name).is_up]
    for name in names:
        database = cluster.database(name)
        if database.testable.has_committed(txn_id):
            fate.committed_on.append(name)
        if database.wal.is_logged(txn_id):
            fate.durably_logged_on.append(name)
        if cluster.gcs is not None:
            endpoint = cluster.gcs.endpoint(name)
            message_log = getattr(endpoint, "message_log", None)
            if message_log is not None:
                for entry in message_log.unacknowledged():
                    payload = entry.payload
                    if getattr(payload, "txn_id", None) == txn_id:
                        fate.recoverable_from_gcs_log_on.append(name)
                        break
            for item in list(endpoint.deliveries._items):
                payload = getattr(item, "payload", None)
                if getattr(payload, "txn_id", None) == txn_id:
                    fate.pending_delivery_on.append(name)
                    break
    return fate


def is_transaction_lost(cluster: "ReplicatedDatabaseCluster", txn_id: str,
                        confirmed_to_client: bool = True) -> bool:
    """Convenience wrapper: is the confirmed transaction lost for good?"""
    return transaction_fate(cluster, txn_id,
                            confirmed_to_client=confirmed_to_client).is_lost


def committed_state_of(cluster: "ReplicatedDatabaseCluster",
                       servers: Optional[Sequence[str]] = None
                       ) -> Dict[str, List[str]]:
    """Mapping server -> committed transaction ids (for audits and tests)."""
    names = list(servers) if servers is not None else cluster.server_names()
    return {name: sorted(cluster.database(name).testable.committed_ids())
            for name in names}
