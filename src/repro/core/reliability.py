"""Reliability analysis of Sect. 7: lazy vs group-safe as the group grows.

The paper's closing argument is qualitative: with lazy replication the chance
of violating the ACID properties *grows* with the number of servers (more
servers means more concurrently submitted conflicting updates), whereas with
group-safe replication it *shrinks* (the only danger is the failure of the
group, and with independent crash probabilities a larger group is less likely
to lose its quorum).  This module provides the quantitative counterpart used
by the scaling experiment and benchmark:

* :func:`group_failure_probability` — probability that at least a quorum-
  breaking number of servers is simultaneously down, for independent
  per-server unavailability ``p``;
* :func:`lazy_conflict_probability` — probability that, during one
  propagation window, two transactions originating on different servers
  update a common item (the event that makes lazy replication diverge without
  any failure);
* :func:`acid_violation_probability` — the two combined under one interface,
  which is what the Fig. 10-style scaling curves plot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


def _binomial(n: int, k: int) -> float:
    return math.comb(n, k)


def group_failure_probability(server_count: int, server_down_probability: float,
                              quorum_size: int = None) -> float:
    """Probability that fewer than a quorum of servers is up.

    Servers fail independently with probability ``server_down_probability``.
    The group fails when the number of simultaneously down servers exceeds
    ``server_count - quorum_size`` (default quorum: a majority).
    """
    if server_count < 1:
        raise ValueError("server count must be positive")
    if not 0.0 <= server_down_probability <= 1.0:
        raise ValueError("probability out of range")
    if quorum_size is None:
        quorum_size = server_count // 2 + 1
    tolerated = server_count - quorum_size
    probability = 0.0
    p = server_down_probability
    for crashed in range(tolerated + 1, server_count + 1):
        probability += (_binomial(server_count, crashed) *
                        p ** crashed * (1 - p) ** (server_count - crashed))
    return probability


def pairwise_conflict_probability(writes_per_transaction: float,
                                  item_count: int) -> float:
    """Probability that two independent transactions write a common item."""
    if item_count <= 0:
        raise ValueError("item count must be positive")
    w = writes_per_transaction
    # Probability that none of the ~w items of the second transaction hits
    # any of the ~w items of the first one (uniform access).
    return 1.0 - (1.0 - w / item_count) ** w


def lazy_conflict_probability(server_count: int, per_server_tps: float,
                              propagation_delay_ms: float,
                              writes_per_transaction: float,
                              item_count: int) -> float:
    """Probability of at least one cross-server conflict per propagation window.

    During a propagation window of ``propagation_delay_ms`` every server
    commits ``per_server_tps * window`` transactions locally that the others
    have not seen yet.  Any pair of such transactions originating on two
    *different* servers and writing a common item creates divergence (lazy
    replication performs no conflict handling).  The result grows with the
    number of servers — the core of the paper's Sect. 7 argument.
    """
    if server_count < 2:
        return 0.0
    window_s = propagation_delay_ms / 1000.0
    transactions_per_server = per_server_tps * window_s
    pair_conflict = pairwise_conflict_probability(writes_per_transaction,
                                                  item_count)
    # Number of cross-server transaction pairs in one window.
    cross_pairs = (_binomial(server_count, 2) *
                   transactions_per_server * transactions_per_server)
    no_conflict = (1.0 - pair_conflict) ** cross_pairs
    return 1.0 - no_conflict


def acid_violation_probability(technique: str, server_count: int,
                               server_down_probability: float = 0.05,
                               system_tps: float = 30.0,
                               propagation_delay_ms: float = 250.0,
                               writes_per_transaction: float = 7.5,
                               item_count: int = 10_000) -> float:
    """Probability of an ACID violation for one propagation window / epoch.

    ``technique`` is ``"1-safe"`` (lazy) or ``"group-safe"``; the other
    techniques map onto one of the two behaviours (group-1-safe behaves like
    group-safe, 2-safe never violates durability and has no lazy divergence).
    """
    if technique in ("1-safe", "0-safe", "lazy"):
        per_server = system_tps / server_count
        return lazy_conflict_probability(server_count, per_server,
                                         propagation_delay_ms,
                                         writes_per_transaction, item_count)
    if technique in ("group-safe", "group-1-safe"):
        return group_failure_probability(server_count, server_down_probability)
    if technique == "2-safe":
        return 0.0
    raise ValueError(f"unknown technique {technique!r}")


@dataclass(frozen=True)
class ScalingPoint:
    """One point of the Sect. 7 scaling comparison."""

    server_count: int
    lazy_violation_probability: float
    group_safe_violation_probability: float

    @property
    def group_safe_wins(self) -> bool:
        """True if group-safe replication is the safer choice at this size."""
        return (self.group_safe_violation_probability
                < self.lazy_violation_probability)


def scaling_comparison(server_counts: List[int],
                       server_down_probability: float = 0.05,
                       system_tps: float = 30.0,
                       propagation_delay_ms: float = 250.0,
                       writes_per_transaction: float = 7.5,
                       item_count: int = 10_000) -> List[ScalingPoint]:
    """Evaluate both curves of the Sect. 7 argument over ``server_counts``."""
    points = []
    for count in server_counts:
        points.append(ScalingPoint(
            server_count=count,
            lazy_violation_probability=acid_violation_probability(
                "1-safe", count, server_down_probability, system_tps,
                propagation_delay_ms, writes_per_transaction, item_count),
            group_safe_violation_probability=acid_violation_probability(
                "group-safe", count, server_down_probability, system_tps,
                propagation_delay_ms, writes_per_transaction, item_count)))
    return points
