"""Safety levels for replicated databases.

The paper organises safety guarantees along two axes (Table 1):

* on how many replicas is the **message carrying the transaction guaranteed
  to be delivered** when the client is notified — one (the delegate) or all
  available servers;
* on how many replicas is the transaction **guaranteed to be logged** (and
  hence will eventually commit) at that moment — none, one, or all available
  servers.

Crossing the two axes yields the five meaningful levels below plus the
classical *very safe* criterion (logged on *all* servers, available or not),
which the paper mentions and dismisses as impractical.  :func:`classify`
derives the level from the two axis values, which is exactly how Table 1 is
generated in :mod:`repro.core.matrix`.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional


class DeliveredOn(Enum):
    """How many replicas are guaranteed to receive the transaction's message."""

    ONE = "one replica"
    ALL = "all replicas"


class LoggedOn(Enum):
    """How many replicas are guaranteed to have logged the transaction."""

    NONE = "no replica"
    ONE = "one replica"
    ALL = "all replicas"


class SafetyLevel(Enum):
    """The safety levels of the paper, ordered from weakest to strongest."""

    ZERO_SAFE = "0-safe"
    ONE_SAFE = "1-safe"
    GROUP_SAFE = "group-safe"
    GROUP_ONE_SAFE = "group-1-safe"
    TWO_SAFE = "2-safe"
    VERY_SAFE = "very safe"

    # -- axis positions (Table 1) -------------------------------------------------
    @property
    def delivered_on(self) -> DeliveredOn:
        """The delivery-guarantee axis value of the level (Table 1 rows)."""
        if self in (SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE):
            return DeliveredOn.ONE
        return DeliveredOn.ALL

    @property
    def logged_on(self) -> LoggedOn:
        """The logging-guarantee axis value of the level (Table 1 columns)."""
        if self in (SafetyLevel.ZERO_SAFE, SafetyLevel.GROUP_SAFE):
            return LoggedOn.NONE
        if self in (SafetyLevel.ONE_SAFE, SafetyLevel.GROUP_ONE_SAFE):
            return LoggedOn.ONE
        return LoggedOn.ALL

    # -- strength ordering -----------------------------------------------------------
    @property
    def rank(self) -> int:
        """Total-order rank used for comparisons (higher = stronger)."""
        order = (SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE,
                 SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE,
                 SafetyLevel.TWO_SAFE, SafetyLevel.VERY_SAFE)
        return order.index(self)

    def is_at_least(self, other: "SafetyLevel") -> bool:
        """True if this level is at least as strong as ``other``.

        The comparison follows the paper's Table 2 ordering by tolerated
        crashes, with group-1-safety placed above group-safety because it adds
        the 1-safe guarantee on top.
        """
        return self.rank >= other.rank

    # -- crash tolerance (Table 2) -----------------------------------------------------
    def tolerated_crashes(self, group_size: int) -> int:
        """Number of simultaneous server crashes the level tolerates.

        "Tolerates" means: no transaction whose commit was confirmed to a
        client can be lost, provided no more than the returned number of
        servers crash (Table 2 of the paper).
        """
        if group_size < 1:
            raise ValueError("group size must be positive")
        if self in (SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE):
            return 0
        if self in (SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE):
            return group_size - 1
        return group_size

    @property
    def relies_on_group(self) -> bool:
        """True if durability is entrusted to the group rather than to disk."""
        return self in (SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE)

    @property
    def relies_on_stable_storage(self) -> bool:
        """True if durability is entrusted to stable storage at notification."""
        return self in (SafetyLevel.ONE_SAFE, SafetyLevel.GROUP_ONE_SAFE,
                        SafetyLevel.TWO_SAFE, SafetyLevel.VERY_SAFE)

    def __str__(self) -> str:
        return self.value


def classify(delivered_on: DeliveredOn, logged_on: LoggedOn
             ) -> Optional[SafetyLevel]:
    """Derive the safety level from the two Table 1 axes.

    Returns ``None`` for the impossible combination (a transaction cannot be
    logged on all replicas while only guaranteed to be delivered on one —
    the greyed-out cell of Table 1).
    """
    if delivered_on is DeliveredOn.ONE:
        if logged_on is LoggedOn.NONE:
            return SafetyLevel.ZERO_SAFE
        if logged_on is LoggedOn.ONE:
            return SafetyLevel.ONE_SAFE
        return None
    if logged_on is LoggedOn.NONE:
        return SafetyLevel.GROUP_SAFE
    if logged_on is LoggedOn.ONE:
        return SafetyLevel.GROUP_ONE_SAFE
    return SafetyLevel.TWO_SAFE


def classify_notification(delivered_to_group: bool, logged_on_delegate: bool,
                          logged_on_all: bool = False) -> SafetyLevel:
    """Classify a single client notification from its recorded guarantees.

    This is the runtime counterpart of :func:`classify`: replica servers
    record on every :class:`~repro.replication.results.TransactionResult`
    what was guaranteed at the moment the client was answered, and the audit
    maps those flags back to a safety level.
    """
    delivered = DeliveredOn.ALL if delivered_to_group else DeliveredOn.ONE
    if logged_on_all:
        logged = LoggedOn.ALL
    elif logged_on_delegate:
        logged = LoggedOn.ONE
    else:
        logged = LoggedOn.NONE
    level = classify(delivered, logged)
    if level is None:
        # logged everywhere but only delivered at the delegate cannot happen
        # at runtime; be conservative and report the strongest coherent level.
        return SafetyLevel.ONE_SAFE
    return level
