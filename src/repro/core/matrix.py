"""Derivations of the paper's Tables 1, 2 and 3.

These tables are logical consequences of the criterion definitions, so the
library *derives* them from :mod:`repro.core.safety` rather than hard-coding
them; the benchmark ``benchmarks/bench_tables.py`` renders the derived tables
and the tests compare them cell by cell with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .safety import DeliveredOn, LoggedOn, SafetyLevel, classify


# --------------------------------------------------------------------------- Table 1
def safety_matrix() -> Dict[Tuple[DeliveredOn, LoggedOn], Optional[SafetyLevel]]:
    """Table 1: safety level for every (delivered, logged) combination.

    The impossible cell (delivered on one replica, logged on all) maps to
    ``None`` — it is greyed out in the paper.
    """
    matrix: Dict[Tuple[DeliveredOn, LoggedOn], Optional[SafetyLevel]] = {}
    for delivered in DeliveredOn:
        for logged in LoggedOn:
            matrix[(delivered, logged)] = classify(delivered, logged)
    return matrix


def render_safety_matrix() -> str:
    """Human-readable rendering of Table 1 (used by the benchmark report)."""
    matrix = safety_matrix()
    corner = "delivered / logged"
    header = f"{corner:>22} | " + " | ".join(
        f"{logged.value:^14}" for logged in LoggedOn)
    lines = [header, "-" * len(header)]
    for delivered in DeliveredOn:
        cells = []
        for logged in LoggedOn:
            level = matrix[(delivered, logged)]
            cells.append(f"{(level.value if level else '—'):^14}")
        lines.append(f"{delivered.value:>22} | " + " | ".join(cells))
    return "\n".join(lines)


# --------------------------------------------------------------------------- Table 2
@dataclass(frozen=True)
class CrashToleranceRow:
    """One row of Table 2: a tolerance class and the levels that provide it."""

    tolerated_crashes: str
    levels: Tuple[SafetyLevel, ...]


def crash_tolerance_table(group_size: int) -> List[CrashToleranceRow]:
    """Table 2: safety property by number of tolerated crashes.

    The rows are derived by evaluating
    :meth:`~repro.core.safety.SafetyLevel.tolerated_crashes` for every level
    and grouping the results into the paper's three classes (0 crashes, fewer
    than *n* crashes, *n* crashes).
    """
    by_tolerance: Dict[int, List[SafetyLevel]] = {}
    levels = (SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE,
              SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE,
              SafetyLevel.TWO_SAFE)
    for level in levels:
        tolerance = level.tolerated_crashes(group_size)
        by_tolerance.setdefault(tolerance, []).append(level)

    rows: List[CrashToleranceRow] = []
    labels = {0: "0 crashes",
              group_size - 1: f"less than {group_size} crashes",
              group_size: f"{group_size} crashes"}
    for tolerance in sorted(by_tolerance):
        rows.append(CrashToleranceRow(
            tolerated_crashes=labels.get(tolerance, f"{tolerance} crashes"),
            levels=tuple(by_tolerance[tolerance])))
    return rows


# --------------------------------------------------------------------------- Table 3
@dataclass(frozen=True)
class LossCondition:
    """One cell of Table 3: can a confirmed transaction be lost?"""

    level: SafetyLevel
    group_fails: bool
    delegate_crashes: bool
    possible_loss: bool

    @property
    def label(self) -> str:
        """The cell text used by the paper ("No Transaction Loss" / "Possible...")."""
        return ("Possible Transaction Loss" if self.possible_loss
                else "No Transaction Loss")


def loss_condition(level: SafetyLevel, group_fails: bool,
                   delegate_crashes: bool) -> bool:
    """Can a confirmed transaction be lost under the given failure pattern?

    The derivation follows the criterion definitions:

    * if the group does not fail, the group holds the transaction's message
      and neither group-safe nor group-1-safe replication can lose it;
    * if the group fails, group-safety gives no guarantee at all (the
      transaction may not be logged anywhere), so loss is possible whether or
      not the delegate crashed;
    * group-1-safety additionally guarantees the transaction on the delegate's
      stable storage, so loss requires the delegate itself to be among the
      crashed (or to never recover);
    * 2-safety never loses a confirmed transaction; 1-safety loses one as soon
      as the delegate crashes; 0-safety may lose one on any delegate crash,
      group failure or not.
    """
    if level is SafetyLevel.TWO_SAFE or level is SafetyLevel.VERY_SAFE:
        return False
    if level is SafetyLevel.ZERO_SAFE:
        return delegate_crashes
    if level is SafetyLevel.ONE_SAFE:
        return delegate_crashes
    if level is SafetyLevel.GROUP_SAFE:
        return group_fails
    if level is SafetyLevel.GROUP_ONE_SAFE:
        return group_fails and delegate_crashes
    raise ValueError(f"unhandled level {level}")


def partitioned_loss_condition(
        branches: Iterable[Tuple[SafetyLevel, bool, bool]]) -> bool:
    """Can a confirmed transaction spanning several shards be lost?

    ``branches`` holds one ``(level, group_fails, delegate_crashes)`` triple
    per shard the transaction's durability depends on: the owning shard for
    a fast-path transaction, every participant shard for a 2PC transaction,
    the *serving owner after the pattern* for a transaction whose range a
    migration moved.  The composition rule is disjunction — losing any one
    branch loses the (atomic) transaction, so Table 3 applies per shard and
    the cell verdicts OR together.

    Two partitioned failure modes deliberately do *not* appear as extra
    loss terms, because they block rather than lose:

    * a **coordinator crash** never loses a confirmed transaction — before
      the decision record is durable nothing was installed and the client
      was never confirmed; after it, the forced DECISION record replays
      phase 2 on recovery (the classic 2PC blocking discipline), so the
      crashed-and-recovered home delegate enters this composition as an
      ordinary ``delegate_crashes=False`` branch;
    * a **whole-group outage of a decided participant** leaves the branch
      in doubt until a member recovers; the decided writes are installed
      then, never dropped.

    As with :func:`loss_condition`, ``delegate_crashes`` means crashed *and
    never recovered*.
    """
    return any(loss_condition(level, group_fails, delegate_crashes)
               for level, group_fails, delegate_crashes in branches)


def group_safety_comparison_table() -> List[LossCondition]:
    """Table 3: group-safe vs group-1-safe under the three failure patterns."""
    patterns = (
        (False, False),   # group does not fail
        (True, False),    # group fails, delegate does not crash
        (True, True),     # group fails, delegate crashes
    )
    cells: List[LossCondition] = []
    for level in (SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE):
        for group_fails, delegate_crashes in patterns:
            cells.append(LossCondition(
                level=level, group_fails=group_fails,
                delegate_crashes=delegate_crashes,
                possible_loss=loss_condition(level, group_fails,
                                             delegate_crashes)))
    return cells


def render_loss_table() -> str:
    """Human-readable rendering of Table 3 (used by the benchmark report)."""
    cells = group_safety_comparison_table()
    columns = ["Group does not fail", "Group fails / Sd up",
               "Group fails / Sd crashes"]
    header = f"{'':>14} | " + " | ".join(f"{column:^26}" for column in columns)
    lines = [header, "-" * len(header)]
    for level in (SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE):
        row_cells = [cell for cell in cells if cell.level is level]
        lines.append(f"{level.value:>14} | " +
                     " | ".join(f"{cell.label:^26}" for cell in row_cells))
    return "\n".join(lines)
