"""Derivations of the paper's Tables 1, 2 and 3.

These tables are logical consequences of the criterion definitions, so the
library *derives* them from :mod:`repro.core.safety` rather than hard-coding
them; the benchmark ``benchmarks/bench_tables.py`` renders the derived tables
and the tests compare them cell by cell with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .safety import DeliveredOn, LoggedOn, SafetyLevel, classify


# --------------------------------------------------------------------------- Table 1
def safety_matrix() -> Dict[Tuple[DeliveredOn, LoggedOn], Optional[SafetyLevel]]:
    """Table 1: safety level for every (delivered, logged) combination.

    The impossible cell (delivered on one replica, logged on all) maps to
    ``None`` — it is greyed out in the paper.
    """
    matrix: Dict[Tuple[DeliveredOn, LoggedOn], Optional[SafetyLevel]] = {}
    for delivered in DeliveredOn:
        for logged in LoggedOn:
            matrix[(delivered, logged)] = classify(delivered, logged)
    return matrix


def render_safety_matrix() -> str:
    """Human-readable rendering of Table 1 (used by the benchmark report)."""
    matrix = safety_matrix()
    corner = "delivered / logged"
    header = f"{corner:>22} | " + " | ".join(
        f"{logged.value:^14}" for logged in LoggedOn)
    lines = [header, "-" * len(header)]
    for delivered in DeliveredOn:
        cells = []
        for logged in LoggedOn:
            level = matrix[(delivered, logged)]
            cells.append(f"{(level.value if level else '—'):^14}")
        lines.append(f"{delivered.value:>22} | " + " | ".join(cells))
    return "\n".join(lines)


# --------------------------------------------------------------------------- Table 2
@dataclass(frozen=True)
class CrashToleranceRow:
    """One row of Table 2: a tolerance class and the levels that provide it."""

    tolerated_crashes: str
    levels: Tuple[SafetyLevel, ...]


def crash_tolerance_table(group_size: int) -> List[CrashToleranceRow]:
    """Table 2: safety property by number of tolerated crashes.

    The rows are derived by evaluating
    :meth:`~repro.core.safety.SafetyLevel.tolerated_crashes` for every level
    and grouping the results into the paper's three classes (0 crashes, fewer
    than *n* crashes, *n* crashes).
    """
    by_tolerance: Dict[int, List[SafetyLevel]] = {}
    levels = (SafetyLevel.ZERO_SAFE, SafetyLevel.ONE_SAFE,
              SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE,
              SafetyLevel.TWO_SAFE)
    for level in levels:
        tolerance = level.tolerated_crashes(group_size)
        by_tolerance.setdefault(tolerance, []).append(level)

    rows: List[CrashToleranceRow] = []
    labels = {0: "0 crashes",
              group_size - 1: f"less than {group_size} crashes",
              group_size: f"{group_size} crashes"}
    for tolerance in sorted(by_tolerance):
        rows.append(CrashToleranceRow(
            tolerated_crashes=labels.get(tolerance, f"{tolerance} crashes"),
            levels=tuple(by_tolerance[tolerance])))
    return rows


# --------------------------------------------------------------------------- Table 3
@dataclass(frozen=True)
class LossCondition:
    """One cell of Table 3: can a confirmed transaction be lost?"""

    level: SafetyLevel
    group_fails: bool
    delegate_crashes: bool
    possible_loss: bool

    @property
    def label(self) -> str:
        """The cell text used by the paper ("No Transaction Loss" / "Possible...")."""
        return ("Possible Transaction Loss" if self.possible_loss
                else "No Transaction Loss")


def loss_condition(level: SafetyLevel, group_fails: bool,
                   delegate_crashes: bool) -> bool:
    """Can a confirmed transaction be lost under the given failure pattern?

    The derivation follows the criterion definitions:

    * if the group does not fail, the group holds the transaction's message
      and neither group-safe nor group-1-safe replication can lose it;
    * if the group fails, group-safety gives no guarantee at all (the
      transaction may not be logged anywhere), so loss is possible whether or
      not the delegate crashed;
    * group-1-safety additionally guarantees the transaction on the delegate's
      stable storage, so loss requires the delegate itself to be among the
      crashed (or to never recover);
    * 2-safety never loses a confirmed transaction; 1-safety loses one as soon
      as the delegate crashes; 0-safety may lose one on any delegate crash,
      group failure or not.
    """
    if level is SafetyLevel.TWO_SAFE or level is SafetyLevel.VERY_SAFE:
        return False
    if level is SafetyLevel.ZERO_SAFE:
        return delegate_crashes
    if level is SafetyLevel.ONE_SAFE:
        return delegate_crashes
    if level is SafetyLevel.GROUP_SAFE:
        return group_fails
    if level is SafetyLevel.GROUP_ONE_SAFE:
        return group_fails and delegate_crashes
    raise ValueError(f"unhandled level {level}")


def partitioned_loss_condition(
        branches: Iterable[Tuple[SafetyLevel, bool, bool]]) -> bool:
    """Can a confirmed transaction spanning several shards be lost?

    ``branches`` holds one ``(level, group_fails, delegate_crashes)`` triple
    per shard the transaction's durability depends on: the owning shard for
    a fast-path transaction, every participant shard for a 2PC transaction,
    the *serving owner after the pattern* for a transaction whose range a
    migration moved.  The composition rule is disjunction — losing any one
    branch loses the (atomic) transaction, so Table 3 applies per shard and
    the cell verdicts OR together.

    Two partitioned failure modes deliberately do *not* appear as extra
    loss terms, because they block rather than lose:

    * a **coordinator crash** never loses a confirmed transaction — before
      the decision record is durable nothing was installed and the client
      was never confirmed; after it, the forced DECISION record replays
      phase 2 on recovery (the classic 2PC blocking discipline), so the
      crashed-and-recovered home delegate enters this composition as an
      ordinary ``delegate_crashes=False`` branch;
    * a **whole-group outage of a decided participant** leaves the branch
      in doubt until a member recovers; the decided writes are installed
      then, never dropped.

    As with :func:`loss_condition`, ``delegate_crashes`` means crashed *and
    never recovered*.
    """
    return any(loss_condition(level, group_fails, delegate_crashes)
               for level, group_fails, delegate_crashes in branches)


# ----------------------------------------------------------------- netsplit predictions
#: Network fault kinds the netsplit matrix predicts outcomes for.
NETSPLIT_FAULT_KINDS = ("partition", "asymmetric", "lossy", "slow",
                        "gray-disk", "gray-cpu")


@dataclass(frozen=True)
class NetsplitPrediction:
    """Predicted outcome of one netsplit-matrix cell (Table 2/3 style).

    The three verdicts are tri-state: ``True`` / ``False`` are commitments
    the matrix checks against observation, ``None`` means the cell's
    behaviour is not predicted (e.g. progress under probabilistic loss) and
    only the safety invariants are enforced.
    """

    #: Can the minority side confirm transactions during the fault?
    #: ``True`` = it must block (zero confirmed commits).
    minority_blocks: Optional[bool]
    #: Does the majority side keep confirming transactions during the fault?
    majority_progress: Optional[bool]
    #: Can a *confirmed* transaction be lost?  Always ``False`` here: link
    #: faults crash nobody, so every criterion keeps its confirmed
    #: transactions (the group never "fails" in the Table 3 sense).
    possible_loss: bool


def netsplit_outcome(fault_kind: str, coordinator_in_minority: bool,
                     detector_sees_fault: bool) -> NetsplitPrediction:
    """Derive the predicted outcome of a network-fault cell.

    The derivation follows from the quorum discipline of the total-order
    engines and the failure-detector contract:

    * a **partition** (or an asymmetric fault muting the minority's
      outbound links) starves the minority of a quorum, so the minority
      always blocks — for *both* engines; split-brain would require two
      disjoint quorums, which majorities cannot form;
    * the **majority** makes progress iff it contains a working ordering
      coordinator (the fixed sequencer / the Paxos coordinator).  With the
      coordinator on the majority side, quorum ACKs alone suffice — even a
      detector that cannot see the fault does not stop progress.  With the
      coordinator in the minority, progress needs a view change, i.e. a
      detector that actually *sees* the fault (timeout shorter than the
      fault).  The perfect oracle detector only fires on crashes, so under
      it a partitioned-away coordinator blocks the majority indefinitely;
    * **lossy** links make progress probabilistic on both sides — the
      matrix predicts nothing about progress and checks only safety;
    * **slow** links and the gray failures (degraded disk, slow CPU) delay
      but deliver: everything keeps committing, just late;
    * no cell can lose a *confirmed* transaction: nothing crashes, so every
      server that logged a commit still has it.
    """
    if fault_kind not in NETSPLIT_FAULT_KINDS:
        raise ValueError(f"unknown fault kind {fault_kind!r}; expected one "
                         f"of {NETSPLIT_FAULT_KINDS}")
    if fault_kind in ("partition", "asymmetric"):
        return NetsplitPrediction(
            minority_blocks=True,
            majority_progress=(not coordinator_in_minority
                               or detector_sees_fault),
            possible_loss=False)
    if fault_kind == "lossy":
        return NetsplitPrediction(minority_blocks=None,
                                  majority_progress=None,
                                  possible_loss=False)
    # slow links and gray failures: delayed, never denied.
    return NetsplitPrediction(minority_blocks=False, majority_progress=True,
                              possible_loss=False)


def group_safety_comparison_table() -> List[LossCondition]:
    """Table 3: group-safe vs group-1-safe under the three failure patterns."""
    patterns = (
        (False, False),   # group does not fail
        (True, False),    # group fails, delegate does not crash
        (True, True),     # group fails, delegate crashes
    )
    cells: List[LossCondition] = []
    for level in (SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE):
        for group_fails, delegate_crashes in patterns:
            cells.append(LossCondition(
                level=level, group_fails=group_fails,
                delegate_crashes=delegate_crashes,
                possible_loss=loss_condition(level, group_fails,
                                             delegate_crashes)))
    return cells


def render_loss_table() -> str:
    """Human-readable rendering of Table 3 (used by the benchmark report)."""
    cells = group_safety_comparison_table()
    columns = ["Group does not fail", "Group fails / Sd up",
               "Group fails / Sd crashes"]
    header = f"{'':>14} | " + " | ".join(f"{column:^26}" for column in columns)
    lines = [header, "-" * len(header)]
    for level in (SafetyLevel.GROUP_SAFE, SafetyLevel.GROUP_ONE_SAFE):
        row_cells = [cell for cell in cells if cell.level is level]
        lines.append(f"{level.value:>14} | " +
                     " | ".join(f"{cell.label:^26}" for cell in row_cells))
    return "\n".join(lines)
