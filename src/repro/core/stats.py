"""Shared summary-statistics helpers.

One percentile implementation for the whole codebase.  Historically
``sim/monitor.py`` (Tally), ``replication/results.py`` (RunStatistics) and
``partition/stats.py`` each carried their own copy with the same semantics
(floor/ceil linear interpolation, empty sample -> 0.0, fraction outside
``[0, 1]`` -> ``ValueError``); they now all delegate here.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction`` percentile of ``values`` (linear interpolation).

    ``fraction`` must lie in ``[0, 1]``; an empty sample yields 0.0.
    """
    ordered = sorted(values)
    return _percentile_sorted(ordered, fraction)


def _percentile_sorted(ordered: Sequence[float], fraction: float) -> float:
    """Percentile of an already-sorted sample (shared by :func:`summarize`)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(
            f"percentile fraction must be in [0, 1], got {fraction!r}")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Count / mean / sample stdev / min / p50 / p90 / p99 / max of a sample."""
    ordered: List[float] = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n if n else 0.0
    if n < 2:
        stdev = 0.0
    else:
        stdev = math.sqrt(
            sum((value - mean) ** 2 for value in ordered) / (n - 1))
    return {
        "count": float(n),
        "mean": mean,
        "stdev": stdev,
        "min": ordered[0] if ordered else 0.0,
        "p50": _percentile_sorted(ordered, 0.50),
        "p90": _percentile_sorted(ordered, 0.90),
        "p99": _percentile_sorted(ordered, 0.99),
        "max": ordered[-1] if ordered else 0.0,
    }
