"""Execution audit: which safety guarantees did a run actually provide?

The audit has two halves:

* :func:`classify_results` looks at every client notification a run produced
  and classifies the guarantee that held at that moment (using the flags the
  replica servers record on each
  :class:`~repro.replication.results.TransactionResult`); the outcome is the
  *claimed* safety level of the run.
* :class:`SafetyAudit` confronts that claim with what actually happened:
  after the failure pattern of a scenario, were any confirmed transactions
  lost?  Was the replicated state mutually consistent?  The scenario
  experiments of ``repro.experiments.scenarios`` are thin wrappers around
  this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..db.serializability import (CommittedTransaction,
                                  check_one_copy_serializability)
from .durability import TransactionFate, transaction_fate
from .safety import SafetyLevel, classify_notification

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..replication.cluster import ReplicatedDatabaseCluster
    from ..replication.results import TransactionResult


def classify_result(result: "TransactionResult") -> SafetyLevel:
    """Safety level that held when this particular client was notified."""
    return classify_notification(delivered_to_group=result.delivered_to_group,
                                 logged_on_delegate=result.logged_on_delegate,
                                 logged_on_all=result.logged_on_all)


def classify_results(results: Sequence["TransactionResult"]
                     ) -> Dict[SafetyLevel, int]:
    """Histogram of notification-time guarantees over a set of results."""
    histogram: Dict[SafetyLevel, int] = {}
    for result in results:
        if not result.committed:
            continue
        level = classify_result(result)
        histogram[level] = histogram.get(level, 0) + 1
    return histogram


def weakest_guarantee(results: Sequence["TransactionResult"]
                      ) -> Optional[SafetyLevel]:
    """The weakest notification-time guarantee observed (None if no commits)."""
    levels = [classify_result(result) for result in results if result.committed]
    if not levels:
        return None
    return min(levels, key=lambda level: level.rank)


@dataclass
class AuditReport:
    """Outcome of a full safety audit of one scenario run."""

    technique: str
    confirmed_transactions: int
    lost_transactions: List[str] = field(default_factory=list)
    fates: Dict[str, TransactionFate] = field(default_factory=dict)
    guarantee_histogram: Dict[SafetyLevel, int] = field(default_factory=dict)
    divergent_items: List[str] = field(default_factory=list)
    serializable: bool = True

    @property
    def transaction_lost(self) -> bool:
        """True if at least one confirmed transaction was lost."""
        return bool(self.lost_transactions)

    @property
    def consistent(self) -> bool:
        """True if all up servers agree on the committed values."""
        return not self.divergent_items


class SafetyAudit:
    """Confronts a cluster's state with the confirmations it handed out."""

    def __init__(self, cluster: "ReplicatedDatabaseCluster") -> None:
        self.cluster = cluster

    # -- individual checks ------------------------------------------------------------
    def lost_confirmed_transactions(
            self, results: Sequence["TransactionResult"]
    ) -> Dict[str, TransactionFate]:
        """Fate of every confirmed transaction; only lost ones are returned."""
        lost: Dict[str, TransactionFate] = {}
        for result in results:
            if not result.committed:
                continue
            fate = transaction_fate(self.cluster, result.txn_id,
                                    confirmed_to_client=True)
            if fate.is_lost:
                lost[result.txn_id] = fate
        return lost

    def divergent_items(self, servers: Optional[Sequence[str]] = None
                        ) -> List[str]:
        """Item keys on which up servers currently disagree.

        Lazy replication may diverge even without failures (Sect. 7); the
        group-based techniques should never diverge while the group holds.
        Items whose pending updates are still being propagated/processed are
        *not* excluded — call this only once the run has quiesced.
        """
        names = servers if servers is not None else [
            name for name in self.cluster.server_names()
            if self.cluster.node(name).is_up]
        names = list(names)
        if len(names) < 2:
            return []
        reference = self.cluster.database(names[0])
        divergent: List[str] = []
        for key in reference.items.keys():
            values = {repr(self.cluster.database(name).value_of(key))
                      for name in names}
            if len(values) > 1:
                divergent.append(key)
        return divergent

    def serializability(self, servers: Optional[Sequence[str]] = None) -> bool:
        """Check one-copy serialisability of the committed history.

        The history is reconstructed from the write-ahead logs (commit order
        and write sets) of the given servers; read versions are not persisted
        in the log, so this check targets the write/write part of the
        serialisation order (the read part is checked live by the
        certification tests in the test-suite).
        """
        names = servers if servers is not None else [
            name for name in self.cluster.server_names()
            if self.cluster.node(name).is_up]
        transactions: List[CommittedTransaction] = []
        seen = set()
        for name in names:
            database = self.cluster.database(name)
            for record in database.wal.stable_records():
                if record.record_type.value != "commit":
                    continue
                if record.txn_id in seen:
                    continue
                seen.add(record.txn_id)
                transactions.append(CommittedTransaction(
                    txn_id=record.txn_id,
                    commit_order=record.commit_order or 0,
                    read_versions={},
                    write_keys=tuple(record.payload.keys())))
        return bool(check_one_copy_serializability(transactions))

    # -- full audit ------------------------------------------------------------------------
    def report(self, results: Sequence["TransactionResult"]) -> AuditReport:
        """Run every check and assemble the full report."""
        lost = self.lost_confirmed_transactions(results)
        report = AuditReport(
            technique=self.cluster.technique,
            confirmed_transactions=sum(1 for r in results if r.committed),
            lost_transactions=sorted(lost),
            fates=lost,
            guarantee_histogram=classify_results(results),
            divergent_items=self.divergent_items(),
            serializable=self.serializability())
        return report
