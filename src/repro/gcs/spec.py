"""Specifications and vocabulary of the group-communication component.

This module contains the *model-level* definitions of Sect. 2.3 of the paper:
the process classes (green / yellow / red), the two group-communication system
models (dynamic crash no-recovery vs. static crash recovery), and the formal
properties of atomic broadcast and of end-to-end atomic broadcast.  The
property objects are used by tests and by the experiment audit to state, in
code, exactly which guarantee is being checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence


class ProcessClass(Enum):
    """Behavioural classes of processes (Fig. 3 of the paper).

    * ``GREEN`` — never crashes.
    * ``YELLOW`` — may crash (possibly repeatedly) but is eventually forever up.
    * ``RED`` — crashes forever, or keeps crashing and recovering (unstable).

    Green and yellow processes are the "good" processes of Aguilera et al.;
    red processes are the "bad" ones.  The obligations of atomic broadcast
    (uniform agreement, the end-to-end property) bind only non-red processes.
    """

    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"

    @property
    def is_good(self) -> bool:
        """True for green and yellow processes (Aguilera et al.'s 'good')."""
        return self is not ProcessClass.RED


def classify_process(crash_count: int, currently_up: bool,
                     recovers_in_future: bool = False) -> ProcessClass:
    """Classify a process from its observed crash/recovery behaviour.

    ``recovers_in_future`` expresses the oracle knowledge an experiment has
    about the rest of its schedule (the classification is a property of the
    *complete* run, like in the paper's model).
    """
    if crash_count == 0 and currently_up:
        return ProcessClass.GREEN
    if currently_up or recovers_in_future:
        return ProcessClass.YELLOW
    return ProcessClass.RED


class GroupModel(Enum):
    """The two system models discussed in Sect. 2.3."""

    #: Isis-style view-based model: processes never recover under the same
    #: identity; recovery is by rejoining with a state transfer.  Cannot
    #: tolerate the crash of all members of a view.
    DYNAMIC_CRASH_NO_RECOVERY = "dynamic-crash-no-recovery"

    #: Static group with access to stable storage: processes may crash and
    #: recover with the same identity; tolerates the simultaneous crash of
    #: every process.
    STATIC_CRASH_RECOVERY = "static-crash-recovery"


@dataclass(frozen=True)
class BroadcastProperty:
    """A named property of a broadcast primitive, with its informal statement."""

    name: str
    statement: str


#: Properties of (classical) atomic broadcast, Sect. 2.3.
ATOMIC_BROADCAST_PROPERTIES: Sequence[BroadcastProperty] = (
    BroadcastProperty(
        "validity",
        "If a process A-delivers m, then m was A-broadcast by some process."),
    BroadcastProperty(
        "uniform agreement",
        "If a process A-delivers a message m, then all non-red processes "
        "eventually A-deliver m."),
    BroadcastProperty(
        "uniform integrity",
        "For every message m, every process A-delivers m at most once."),
    BroadcastProperty(
        "uniform total order",
        "If two processes p and q A-deliver messages m and m', then p "
        "delivers m before m' if and only if q delivers m before m'."),
)

#: Additional / refined properties of end-to-end atomic broadcast, Sect. 4.2.
END_TO_END_PROPERTIES: Sequence[BroadcastProperty] = (
    BroadcastProperty(
        "end-to-end",
        "If a non-red process A-delivers a message m, then it eventually "
        "successfully A-delivers m."),
    BroadcastProperty(
        "uniform integrity (successful delivery)",
        "For every message m, every process successfully A-delivers m at "
        "most once."),
)


@dataclass
class DeliveryRecord:
    """One observed A-deliver event, used by tests to check the properties."""

    member: str
    broadcast_id: str
    sequence: int
    delivered_at: float
    acknowledged: bool = False
    acknowledged_at: Optional[float] = None


@dataclass
class BroadcastTrace:
    """The observable history of a group of broadcast endpoints.

    Collecting the sent broadcasts and the per-member delivery sequences is
    enough to check validity, integrity, total order and (given the process
    classification) agreement; tests use the check methods directly.
    """

    sent: List[str] = field(default_factory=list)
    deliveries: List[DeliveryRecord] = field(default_factory=list)

    def record_send(self, broadcast_id: str) -> None:
        """Record that ``broadcast_id`` was A-broadcast."""
        self.sent.append(broadcast_id)

    def record_delivery(self, record: DeliveryRecord) -> None:
        """Record one A-deliver event."""
        self.deliveries.append(record)

    def sequence_at(self, member: str) -> List[str]:
        """Broadcast ids delivered at ``member``, in delivery order."""
        ordered = sorted((d for d in self.deliveries if d.member == member),
                         key=lambda d: (d.delivered_at, d.sequence))
        return [d.broadcast_id for d in ordered]

    # -- property checks ----------------------------------------------------------
    def check_validity(self) -> bool:
        """Every delivered message was actually broadcast."""
        sent = set(self.sent)
        return all(d.broadcast_id in sent for d in self.deliveries)

    def check_integrity(self) -> bool:
        """No member delivered the same message twice."""
        seen = set()
        for delivery in self.deliveries:
            key = (delivery.member, delivery.broadcast_id)
            if key in seen:
                return False
            seen.add(key)
        return True

    def check_total_order(self) -> bool:
        """All members deliver common messages in the same relative order."""
        sequences = {}
        for delivery in self.deliveries:
            sequences.setdefault(delivery.member, [])
        for member in sequences:
            sequences[member] = self.sequence_at(member)
        members = list(sequences)
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                common = [m for m in sequences[first] if m in set(sequences[second])]
                other = [m for m in sequences[second] if m in set(sequences[first])]
                if common != other:
                    return False
        return True

    def check_uniform_agreement(self, non_red_members: Sequence[str]) -> bool:
        """Every message delivered anywhere is delivered by all non-red members."""
        delivered_anywhere = {d.broadcast_id for d in self.deliveries}
        for member in non_red_members:
            delivered_here = set(self.sequence_at(member))
            if not delivered_anywhere.issubset(delivered_here):
                return False
        return True

    def check_end_to_end(self, non_red_members: Sequence[str]) -> bool:
        """Every delivery at a non-red member is eventually acknowledged."""
        for delivery in self.deliveries:
            if delivery.member in non_red_members and not delivery.acknowledged:
                return False
        return True
