"""Failure detection.

The atomic broadcast algorithms of the literature are specified in the
asynchronous model augmented with failure detectors (Chandra & Toueg).  The
simulation does not need to reproduce heartbeat traffic to study the paper's
questions, so the :class:`FailureDetector` here is a *perfect* detector driven
by the simulator's oracle knowledge of node crashes, with a configurable
detection latency: ``detection_delay`` milliseconds after a node crashes, all
subscribed members are notified of the suspicion (and symmetrically for
recoveries / rejoins).

Using a perfect detector is the standard simulation shortcut; the properties
the experiments check (safety of delivered transactions) do not depend on
detector accuracy, only the liveness of view changes does.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.layers import implements, uses
from ..network.lan import Lan
from ..network.node import Node
from ..sim.engine import Simulator

#: Callback signature: listener(member_name, event) with event "suspect"/"restore".
SuspicionListener = Callable[[str, str], None]


@implements("failure_detector")
@uses("links")
class FailureDetector:
    """A perfect, oracle-driven failure detector shared by the whole group."""

    def __init__(self, sim: Simulator, lan: Lan,
                 detection_delay: float = 1.0) -> None:
        if detection_delay < 0:
            raise ValueError("detection delay must be non-negative")
        self.sim = sim
        self.lan = lan
        self.detection_delay = detection_delay
        self._listeners: List[SuspicionListener] = []
        self._suspected: Dict[str, bool] = {}
        for node in lan.nodes:
            self._watch(node)

    def _watch(self, node: Node) -> None:
        self._suspected[node.name] = node.is_crashed
        node.add_listener(self._on_node_event)

    def watch(self, node: Node) -> None:
        """Start monitoring a node attached to the LAN after construction."""
        if node.name not in self._suspected:
            self._watch(node)

    # -- subscription -----------------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        """Register a listener for suspicion / restore notifications."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: SuspicionListener) -> None:
        """Remove a previously registered listener."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- queries -----------------------------------------------------------------
    def is_suspected(self, member: str) -> bool:
        """True if ``member`` is currently suspected to have crashed."""
        return self._suspected.get(member, False)

    def alive_members(self) -> List[str]:
        """Names of members not currently suspected."""
        return [name for name, suspected in self._suspected.items()
                if not suspected]

    # -- node events ---------------------------------------------------------------
    def _on_node_event(self, node: Node, event: str) -> None:
        if event == "crash":
            self.sim.call_after(self.detection_delay,
                                lambda: self._announce(node, "suspect"))
        elif event == "recover":
            self.sim.call_after(self.detection_delay,
                                lambda: self._announce(node, "restore"))

    def _announce(self, node: Node, kind: str) -> None:
        # Re-check the oracle: the node may have recovered (or re-crashed)
        # during the detection delay.
        if kind == "suspect" and not node.is_crashed:
            return
        if kind == "restore" and node.is_crashed:
            return
        self._suspected[node.name] = (kind == "suspect")
        for listener in list(self._listeners):
            listener(node.name, kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        suspected = [name for name, flag in self._suspected.items() if flag]
        return f"<FailureDetector suspected={suspected}>"
