"""Failure detection.

The atomic broadcast algorithms of the literature are specified in the
asynchronous model augmented with failure detectors (Chandra & Toueg).  Two
detectors share the oracle-layer contract (``watch`` / ``subscribe`` /
``is_suspected`` / ``alive_members``):

* the :class:`FailureDetector` is a *perfect* detector driven by the
  simulator's oracle knowledge of node crashes, with a configurable
  detection latency: ``detection_delay`` milliseconds after a node crashes,
  all subscribed members are notified of the suspicion (and symmetrically
  for recoveries / rejoins).  It is the default, and the standard simulation
  shortcut: the safety properties the experiments check do not depend on
  detector accuracy, only the liveness of view changes does.  It has one
  blind spot by construction — it only fires on crash events, so **network
  partitions are undetectable** to it;
* the :class:`HeartbeatFailureDetector` is an *imperfect*, timeout-based
  detector driven by real heartbeat traffic over the LAN
  (``SimulationParameters.failure_detector_mode = "heartbeat"``).  Every
  watched member broadcasts a small heartbeat message each
  ``heartbeat_period``; a member is suspected once fewer than a majority of
  the group (counting the member's own local beat) has heard from it within
  ``timeout``.  Partitions, message loss and slow links therefore *are*
  visible — and so are the detector's classic failure modes: a suspicion is
  a timeout, not a fact, and a live-but-partitioned member is suspected
  exactly like a crashed one.

The quorum-freshness rule makes the shared suspicion map the *majority
side's* view of a split: minority members go suspected (a majority never
hears them), majority members stay trusted (their own side still vouches
for a majority).  That matches the shared-view membership model of
:mod:`repro.gcs.membership`, which abstracts view agreement away.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.layers import implements, uses
from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator

#: Callback signature: listener(member_name, event) with event "suspect"/"restore".
SuspicionListener = Callable[[str, str], None]

#: Message kind of the heartbeat traffic (routed by the node dispatchers).
HEARTBEAT_KIND = "fd.heartbeat"


@implements("failure_detector")
@uses("links")
class FailureDetector:
    """A perfect, oracle-driven failure detector shared by the whole group."""

    def __init__(self, sim: Simulator, lan: Lan,
                 detection_delay: float = 1.0) -> None:
        if detection_delay < 0:
            raise ValueError("detection delay must be non-negative")
        self.sim = sim
        self.lan = lan
        self.detection_delay = detection_delay
        self._listeners: List[SuspicionListener] = []
        self._suspected: Dict[str, bool] = {}
        #: Total suspect / restore announcements (metrics collectors read these).
        self.suspicion_count = 0
        self.restore_count = 0
        for node in lan.nodes:
            self._watch(node)

    def _watch(self, node: Node) -> None:
        self._suspected[node.name] = node.is_crashed
        node.add_listener(self._on_node_event)

    def watch(self, node: Node) -> None:
        """Start monitoring a node attached to the LAN after construction."""
        if node.name not in self._suspected:
            self._watch(node)

    # -- subscription -----------------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        """Register a listener for suspicion / restore notifications."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: SuspicionListener) -> None:
        """Remove a previously registered listener."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- queries -----------------------------------------------------------------
    def is_suspected(self, member: str) -> bool:
        """True if ``member`` is currently suspected to have crashed."""
        return self._suspected.get(member, False)

    def alive_members(self) -> List[str]:
        """Names of members not currently suspected."""
        return [name for name, suspected in self._suspected.items()
                if not suspected]

    # -- node events ---------------------------------------------------------------
    def _on_node_event(self, node: Node, event: str) -> None:
        if event == "crash":
            self.sim.call_after(self.detection_delay,
                                lambda: self._announce(node, "suspect"))
        elif event == "recover":
            self.sim.call_after(self.detection_delay,
                                lambda: self._announce(node, "restore"))

    def _announce(self, node: Node, kind: str) -> None:
        # Re-check the oracle: the node may have recovered (or re-crashed)
        # during the detection delay.
        if kind == "suspect" and not node.is_crashed:
            return
        if kind == "restore" and node.is_crashed:
            return
        self._suspected[node.name] = (kind == "suspect")
        if kind == "suspect":
            self.suspicion_count += 1
        else:
            self.restore_count += 1
        for listener in list(self._listeners):
            listener(node.name, kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        suspected = [name for name, flag in self._suspected.items() if flag]
        return f"<FailureDetector suspected={suspected}>"


@implements("failure_detector")
@uses("links")
class HeartbeatFailureDetector:
    """An imperfect, timeout-based detector driven by real heartbeat traffic.

    Presents the same contract as the perfect :class:`FailureDetector`
    (``watch`` / ``subscribe`` / ``is_suspected`` / ``alive_members``), so
    membership and the total-order engines run unchanged on top of it.

    Mechanics: each watched member broadcasts a :data:`HEARTBEAT_KIND`
    message to every peer each ``period`` ms (the sender is a volatile node
    process — it dies with a crash and is respawned on recovery).  Receivers
    record last-heard times through their dispatcher
    (:meth:`bind_dispatcher`); the member's own beat counts as a local
    self-observation.  A periodic sweep suspects member ``M`` exactly when
    fewer than a majority of the group has heard from ``M`` within
    ``timeout`` — so a netsplit suspects the minority side, a crash suspects
    the crashed node, and a single slow or lossy link alone suspects nobody.

    All timing is driven by the two fixed knobs; the detector draws no
    randomness, so runs stay deterministic.
    """

    def __init__(self, sim: Simulator, lan: Lan,
                 members: Sequence[Node], period: float = 10.0,
                 timeout: float = 50.0) -> None:
        if period <= 0:
            raise ValueError("heartbeat period must be positive")
        if timeout < period:
            raise ValueError("heartbeat timeout must be >= the period")
        self.sim = sim
        self.lan = lan
        self.period = period
        self.timeout = timeout
        self._members: List[str] = []
        #: (observer, member) -> simulated time the observer last heard the
        #: member.  The diagonal is the member's own local beat.
        self._last_heard: Dict[tuple, float] = {}
        self._suspected: Dict[str, bool] = {}
        self._listeners: List[SuspicionListener] = []
        #: Total suspect / restore announcements (metrics collectors read these).
        self.suspicion_count = 0
        self.restore_count = 0
        for node in members:
            self._watch(node)
        self.sim.call_after(self.period, self._sweep)

    def _watch(self, node: Node) -> None:
        name = node.name
        self._members.append(name)
        self._suspected[name] = node.is_crashed
        # Everyone starts fresh as of now: suspicion needs a full timeout of
        # silence, never a cold start.
        for other in self._members:
            self._last_heard[(other, name)] = self.sim.now
            self._last_heard[(name, other)] = self.sim.now
        node.add_listener(self._on_node_event)
        if not node.is_crashed:
            node.spawn(self._beat_loop(node), name="fd.heartbeat")

    def watch(self, node: Node) -> None:
        """Start monitoring a node attached to the LAN after construction."""
        if node.name not in self._suspected:
            self._watch(node)

    def bind_dispatcher(self, name: str, dispatcher: Dispatcher) -> None:
        """Route member ``name``'s incoming heartbeats into the freshness map.

        Called by the composition root once the per-node dispatchers exist;
        heartbeats then share the receive path (and per-message CPU charge)
        of every other protocol message.
        """
        dispatcher.register(HEARTBEAT_KIND, self._on_heartbeat)

    # -- heartbeat traffic ------------------------------------------------------
    def _beat_loop(self, node: Node):
        name = node.name
        while True:
            self._last_heard[(name, name)] = self.sim.now
            for peer in self._members:
                if peer != name:
                    self.lan.send(Message(sender=name, destination=peer,
                                          kind=HEARTBEAT_KIND))
            yield self.sim.timeout(self.period)

    def _on_heartbeat(self, message: Message) -> None:
        self._last_heard[(message.destination, message.sender)] = self.sim.now

    def _on_node_event(self, node: Node, event: str) -> None:
        # Crash detection itself is timeout-driven (the beats stop); the
        # oracle event is only used to restart the sender on recovery.
        if event == "recover":
            node.spawn(self._beat_loop(node), name="fd.heartbeat")

    # -- the sweep ----------------------------------------------------------------
    def _quorum(self) -> int:
        return len(self._members) // 2 + 1

    def _fresh_observers(self, member: str, now: float) -> int:
        horizon = now - self.timeout
        count = 0
        for observer in self._members:
            if self._last_heard[(observer, member)] >= horizon:
                count += 1
        return count

    def _sweep(self) -> None:
        now = self.sim.now
        quorum = self._quorum()
        for member in self._members:
            suspected = self._fresh_observers(member, now) < quorum
            if suspected == self._suspected[member]:
                continue
            self._suspected[member] = suspected
            kind = "suspect" if suspected else "restore"
            if suspected:
                self.suspicion_count += 1
            else:
                self.restore_count += 1
            for listener in list(self._listeners):
                listener(member, kind)
        self.sim.call_after(self.period, self._sweep)

    # -- subscription -----------------------------------------------------------
    def subscribe(self, listener: SuspicionListener) -> None:
        """Register a listener for suspicion / restore notifications."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: SuspicionListener) -> None:
        """Remove a previously registered listener."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- queries -----------------------------------------------------------------
    def is_suspected(self, member: str) -> bool:
        """True if ``member`` is currently suspected (crashed *or* cut off)."""
        return self._suspected.get(member, False)

    def alive_members(self) -> List[str]:
        """Names of members not currently suspected."""
        return [name for name, suspected in self._suspected.items()
                if not suspected]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        suspected = [name for name, flag in self._suspected.items() if flag]
        return (f"<HeartbeatFailureDetector period={self.period} "
                f"timeout={self.timeout} suspected={suspected}>")


def build_failure_detector(mode: str, sim: Simulator, lan: Lan,
                           members: Sequence[Node],
                           detection_delay: float = 1.0,
                           heartbeat_period: float = 10.0,
                           heartbeat_timeout: float = 50.0):
    """Build the detector selected by ``mode`` (``"perfect"`` / ``"heartbeat"``).

    The perfect detector watches every LAN node (its oracle view is global);
    the heartbeat detector watches exactly the group ``members``, so several
    groups on one shared LAN do not flood each other with beats.
    """
    if mode == "perfect":
        return FailureDetector(sim, lan, detection_delay=detection_delay)
    if mode == "heartbeat":
        return HeartbeatFailureDetector(sim, lan, members,
                                        period=heartbeat_period,
                                        timeout=heartbeat_timeout)
    raise ValueError(f"unknown failure-detector mode {mode!r}; "
                     f"expected 'perfect' or 'heartbeat'")
