"""Total-order broadcast engines: shared machinery and the engine contract.

The paper's replication techniques are written against *atomic broadcast*
(Sect. 2.3) and do not care how the total order is produced.  This module
captures exactly that boundary: :class:`TotalOrderEngine` is the per-member
endpoint the application sees (``broadcast`` / ``deliveries`` /
``acknowledge`` / ``recover``), plus everything every ordering protocol
needs — the delivery process, duplicate suppression, the JOIN/state-transfer
rejoin protocol, and the optional end-to-end delivery journal — while the
ordering protocol itself lives in a subclass:

* :class:`repro.gcs.fixed_sequencer.FixedSequencerEngine` — the classical
  fixed-sequencer scheme (the seed behaviour, bit-identical schedules);
* :class:`repro.gcs.paxos.MultiPaxosEngine` — per-slot accept/learn
  Multi-Paxos with the leader taken from the failure detector.

Engines sit *below* the membership layer in the stack
(:data:`repro.core.layers.LAYER_ORDER`), so they must not call upward into
:class:`repro.gcs.membership.GroupMembership`.  The composition root
(:class:`repro.gcs.system.GroupCommunicationSystem`) inverts the dependency
with :class:`MembershipPort`: a small bundle of downward-facing callables
(current view, quorum size, join announcement) handed to the engine at
construction, plus a subscription that feeds view changes *down* into
:meth:`TotalOrderEngine.on_view_change`.

End-to-end delivery (Sect. 4) is a composition option, not a subclass: pass
a :class:`repro.gcs.end_to_end.DeliveryJournal` and the engine logs every
delivery on stable storage, honours ``ack(m)`` and recovers by replaying
unacknowledged messages instead of asking for an application checkpoint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..core.layers import implements, uses
from ..network.dispatch import Dispatcher
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.resources import Store
from .reliable_broadcast import ReliableBroadcastLayer
from .spec import BroadcastTrace, DeliveryRecord


@dataclass
class Delivery:
    """One A-deliver event handed to the application."""

    payload: Any
    broadcast_id: str
    sequence: int
    delivered_at: float
    member: str
    replayed: bool = False


@dataclass
class _PendingMessage:
    broadcast_id: str
    payload: Any
    sender: str


@dataclass(frozen=True)
class MembershipPort:
    """Downward-facing handle onto the membership layer.

    Engines implement ``total_order``, which sits *below* ``membership`` in
    :data:`repro.core.layers.LAYER_ORDER`; they therefore never import or
    call the membership layer directly.  The composition root builds this
    port from the real :class:`~repro.gcs.membership.GroupMembership` and
    the engine only ever goes through it.
    """

    #: The static group, in sequencer-rank order.
    members: Tuple[str, ...]
    #: Returns the currently installed view.
    view: Callable[[], Any]
    #: Returns the quorum size (majority of the static group by default).
    quorum_size: Callable[[], int]
    #: Announces that ``member`` (re)joined; the membership layer reacts by
    #: installing a new view, which flows back down via ``on_view_change``.
    announce_join: Callable[[str], None]


@implements("total_order")
@uses("reliable_broadcast")
class TotalOrderEngine:
    """Base class: the endpoint surface shared by every ordering engine."""

    #: Registry name; subclasses override (stamped into reports/JSON).
    engine_name = "abstract"

    #: Message-kind namespace shared by every engine on the dispatcher.
    KIND_JOIN = "ABCAST.JOIN"
    KIND_JOIN_REPLY = "ABCAST.JOIN_REPLY"
    KIND_SYNC_REQUEST = "ABCAST.E2E.SYNC_REQUEST"
    KIND_SYNC_REPLY = "ABCAST.E2E.SYNC_REPLY"

    def __init__(self, sim: Simulator, node: Node, dispatcher: Dispatcher,
                 broadcast_layer: ReliableBroadcastLayer, group: MembershipPort,
                 member_name: Optional[str] = None,
                 delivery_cpu_time: float = 0.07,
                 trace: Optional[BroadcastTrace] = None,
                 journal: Optional[Any] = None) -> None:
        self.sim = sim
        self.node = node
        self.dispatcher = dispatcher
        self.rb = broadcast_layer
        self.group = group
        self.member_name = member_name or node.name
        self.delivery_cpu_time = delivery_cpu_time
        self.trace = trace
        #: End-to-end delivery journal (``DeliveryJournal``) or ``None`` for
        #: the classical primitive.
        self.journal = journal
        #: Deliveries ready for the application (A-deliver), in total order.
        self.deliveries: Store = Store(sim, name=f"{self.member_name}.deliveries")
        #: Provider of an application checkpoint for state transfer (set by
        #: the replication technique); called with no argument, returns state.
        self.checkpoint_provider: Optional[Callable[[], Any]] = None

        self._broadcast_counter = itertools.count(1)
        self._register_base_handlers()
        self._register_engine_handlers()
        self.node.add_listener(self._on_node_event)
        self._reset_volatile()

        #: Statistics.
        self.broadcast_count = 0
        self.delivered_count = 0
        self.ack_count = 0
        self.replayed_count = 0

    # ------------------------------------------------------------------ engine contract
    def coordinator(self) -> Optional[str]:
        """The member new broadcasts should be submitted to (or ``None``)."""
        raise NotImplementedError

    def _register_engine_handlers(self) -> None:
        """Register the engine's own message kinds on the dispatcher."""
        raise NotImplementedError

    def _reset_engine_state(self) -> None:
        """Drop the engine's volatile ordering state."""
        raise NotImplementedError

    def _submit(self, broadcast_id: str, payload: Any, target: str) -> None:
        """Ship an unordered message to ``target`` for sequencing."""
        raise NotImplementedError

    def _deliverable_up_to(self) -> float:
        """Highest sequence currently safe to A-deliver."""
        raise NotImplementedError

    def _engine_install_horizon(self, sequence: int) -> None:
        """Set engine counters exactly to a recovered horizon."""
        raise NotImplementedError

    def _engine_merge_horizon(self, sequence: int) -> None:
        """Merge one caught-up sequence into the engine counters."""
        raise NotImplementedError

    def _on_coordinator_change(self, view: Any, coordinator: str) -> None:
        """React to a view change (run a takeover protocol if needed)."""
        raise NotImplementedError

    def _on_excluded(self, view: Any) -> None:
        """React to being excluded from ``view`` while the node is alive.

        Only reached through a false (or partition-induced) suspicion: a
        crash resets the endpoint via the node listener before any view
        excluding it is installed.  The default keeps all state — engines
        whose ordering authority must not survive exclusion override this.
        """

    # ------------------------------------------------------------------ state
    def _reset_volatile(self) -> None:
        """(Re)initialise every piece of state that does not survive a crash."""
        self.rb.reset()
        self._ready: Store = Store(self.sim, name=f"{self.member_name}.ready")
        self._pending: Dict[int, _PendingMessage] = {}
        self._delivered_seq = 0
        self._delivered_ids: Set[str] = set()
        self._unsequenced: Dict[str, Any] = {}
        self._reset_engine_state()
        self._started = False

    def _on_node_event(self, node: Node, event: str) -> None:
        """Drop all volatile state when the hosting node crashes.

        Deliveries that were queued for the application but never processed
        are volatile too — losing them here is exactly the behaviour that
        makes classical atomic broadcast unable to provide 2-safety.
        """
        if event != "crash":
            return
        self.deliveries.clear()
        self._reset_volatile()
        self._started = False

    def _register_base_handlers(self) -> None:
        self.dispatcher.register(self.KIND_JOIN, self._on_join)
        self.dispatcher.register(self.KIND_JOIN_REPLY, self._on_join_reply)
        if self.journal is not None:
            self.dispatcher.register(self.KIND_SYNC_REQUEST,
                                     self._on_sync_request)
            self.dispatcher.register(self.KIND_SYNC_REPLY, self._on_sync_reply)

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the endpoint's sender and delivery processes on the node."""
        if self._started:
            return
        self._started = True
        self.rb.start()
        self.node.spawn(self._delivery_loop(), name="abcast.delivery")

    @property
    def is_sequencer(self) -> bool:
        """True if this member currently coordinates the total order."""
        return self.coordinator() == self.member_name

    def current_sequencer(self) -> Optional[str]:
        """Name of the current coordinator (None if the view is empty)."""
        return self.coordinator()

    @property
    def message_log(self):
        """The stable delivery log (end-to-end composition only)."""
        return self.journal.log if self.journal is not None else None

    # ------------------------------------------------------------------ A-broadcast
    def broadcast(self, payload: Any) -> str:
        """A-broadcast ``payload`` to the group; returns the broadcast id.

        The call is asynchronous (fire-and-forget), mirroring the A-send of
        Fig. 4: the sender learns the outcome by A-delivering its own message.
        """
        broadcast_id = f"{self.member_name}#{next(self._broadcast_counter)}"
        self._unsequenced[broadcast_id] = payload
        if self.trace is not None:
            self.trace.record_send(broadcast_id)
        obs = self.sim.obs
        if obs is not None:
            obs.instant("abcast.broadcast", track=f"gcs.{self.member_name}",
                        labels={"broadcast_id": broadcast_id})
        self.broadcast_count += 1
        target = self.coordinator()
        if target is not None:
            self._submit(broadcast_id, payload, target)
        return broadcast_id

    # ------------------------------------------------------------------ outbound
    def _post(self, kind: str, destination: str, payload: Any) -> None:
        """Hand one protocol message to the broadcast layer."""
        self.rb.send(Message(sender=self.member_name,
                             destination=destination, kind=kind,
                             payload=payload))

    def _post_view(self, kind: str, payload: Any) -> None:
        """Post one protocol message per current view member."""
        for member in self.group.view().members:
            self._post(kind, member, payload)

    # ------------------------------------------------------------------ ordering → delivery
    def _try_deliver(self) -> None:
        """Move contiguously ordered-and-safe messages to the delivery process."""
        limit = self._deliverable_up_to()
        while True:
            next_seq = self._delivered_seq + 1
            if next_seq > limit or next_seq not in self._pending:
                break
            entry = self._pending.pop(next_seq)
            self._delivered_seq = next_seq
            if entry.broadcast_id in self._delivered_ids:
                continue  # uniform integrity: never hand a duplicate upward
            self._delivered_ids.add(entry.broadcast_id)
            self._ready.put((next_seq, entry, False))

    def _install_horizon(self, sequence: int) -> None:
        """Set the delivery horizon exactly (recovery from a log or reply)."""
        self._delivered_seq = sequence
        self._engine_install_horizon(sequence)

    def _merge_horizon(self, sequence: int) -> None:
        """Monotonically merge one caught-up sequence into the horizon."""
        self._delivered_seq = max(self._delivered_seq, sequence)
        self._engine_merge_horizon(sequence)

    # ------------------------------------------------------------------ delivery
    def _delivery_loop(self):
        while True:
            sequence, entry, replayed = yield self._ready.get()
            if self.delivery_cpu_time:
                yield from self.node.use_cpu(self.delivery_cpu_time)
            journal = self.journal
            if journal is not None:
                # Log the delivery on stable storage before handing it
                # upward (the end-to-end composition, Sect. 4).
                if journal.log_time:
                    yield from self.node.use_cpu(self.node.cpu_time_per_io)
                    yield from self.node.use_disk(journal.log_time)
                journal.record_delivery(sequence, entry.broadcast_id,
                                        entry.payload, self.sim.now)
            delivery = Delivery(payload=entry.payload,
                                broadcast_id=entry.broadcast_id,
                                sequence=sequence, delivered_at=self.sim.now,
                                member=self.member_name, replayed=replayed)
            self.delivered_count += 1
            if self.trace is not None:
                self.trace.record_delivery(DeliveryRecord(
                    member=self.member_name, broadcast_id=entry.broadcast_id,
                    sequence=sequence, delivered_at=self.sim.now))
            obs = self.sim.obs
            if obs is not None:
                obs.instant("abcast.deliver", track=f"gcs.{self.member_name}",
                            labels={"broadcast_id": entry.broadcast_id,
                                    "sequence": sequence,
                                    "replayed": replayed})
            self.deliveries.put(delivery)

    def acknowledge(self, delivery: Delivery) -> None:
        """Signal successful delivery (ack(m), Fig. 6).

        The classical primitive has no provision for this — without a
        delivery journal the call is accepted and ignored, which is exactly
        the model mismatch Sect. 3 describes.  With the end-to-end journal
        the acknowledgement is durably recorded, excluding the message from
        post-crash replay.
        """
        if self.journal is None:
            return
        self.ack_count += 1
        self.journal.record_ack(delivery.broadcast_id, self.sim.now)
        if self.trace is not None:
            for record in self.trace.deliveries:
                if record.member == self.member_name and \
                        record.broadcast_id == delivery.broadcast_id:
                    record.acknowledged = True
                    record.acknowledged_at = self.sim.now

    # ------------------------------------------------------------------ view changes
    def on_view_change(self, view: Any) -> None:
        """Entry point for view installations (wired by the composition root)."""
        if self.node.is_crashed or not self._started:
            return
        if self.member_name not in view.members:
            # Excluded while alive: the failure detector suspected us (a
            # netsplit, not a crash), so the node listener never fired.  Any
            # ordering authority we held is void in the new view — engines
            # that hold coordinator state must drop it here, or a later
            # rejoin re-asserts stale assignments over sequences the
            # surviving majority has meanwhile given to other messages.
            self._on_excluded(view)
            return
        coordinator = self.coordinator()
        if coordinator is None:
            return
        # Re-send messages of ours that were never ordered to the (possibly
        # new) coordinator.
        for broadcast_id, payload in list(self._unsequenced.items()):
            self._submit(broadcast_id, payload, coordinator)
        self._on_coordinator_change(view, coordinator)

    # ------------------------------------------------------------------ recovery
    def recover(self, rejoin_timeout: float = 10.0):
        """Generator: recover after a crash.

        The endpoint resets its volatile state, restarts its processes and
        rejoins the group.  What happens next depends on the composition:

        * **classical** (no journal, dynamic crash no-recovery model): a live
          member supplies an application *checkpoint* via state transfer,
          which is returned (or ``None`` when nobody answered).  Delivered-
          but-unprocessed messages are *not* replayed — the behaviour
          Sect. 3 of the paper builds its impossibility argument on.
        * **end-to-end** (journal, static crash recovery model): the delivery
          horizon is rebuilt from the stable message log, every
          unacknowledged message is replayed to the application and missed
          messages are fetched from live peers; returns the replay count.
        """
        self._reset_volatile()
        self._started = False
        if not self.dispatcher.is_running:
            self.dispatcher.start()
        self.start()
        self.group.announce_join(self.member_name)
        if self.journal is None:
            return (yield from self._recover_by_state_transfer(rejoin_timeout))
        return (yield from self._recover_by_replay(rejoin_timeout))

    def _recover_by_state_transfer(self, rejoin_timeout: float):
        reply_box: Store = Store(self.sim,
                                 name=f"{self.member_name}.join_replies")
        self._join_replies = reply_box
        self._post_view(self.KIND_JOIN, {"member": self.member_name})
        timeout = self.sim.timeout(rejoin_timeout)
        first_reply = reply_box.get()
        outcome = yield self.sim.any_of([first_reply, timeout])
        if first_reply in outcome:
            reply = first_reply.value
            self._install_horizon(reply["delivered_seq"])
            return reply["checkpoint"]
        return None

    def _recover_by_replay(self, rejoin_timeout: float):
        logged = self.journal.entries()
        self._install_horizon(self.journal.highest_sequence())
        self._delivered_ids = {entry.broadcast_id for entry in logged}

        # Replay unacknowledged messages to the application (Fig. 7).
        replayed = 0
        for entry in self.journal.unacknowledged():
            delivery = Delivery(payload=entry.payload,
                                broadcast_id=entry.broadcast_id,
                                sequence=entry.sequence,
                                delivered_at=self.sim.now,
                                member=self.member_name, replayed=True)
            self.replayed_count += 1
            replayed += 1
            self.deliveries.put(delivery)

        # Catch up on messages delivered by others while we were down.
        reply_box: Store = Store(self.sim,
                                 name=f"{self.member_name}.sync_replies")
        self._sync_replies = reply_box
        self._post_view(self.KIND_SYNC_REQUEST,
                        {"member": self.member_name,
                         "have_up_to": self._delivered_seq})
        timeout = self.sim.timeout(rejoin_timeout)
        first_reply = reply_box.get()
        outcome = yield self.sim.any_of([first_reply, timeout])
        if first_reply in outcome:
            for entry in sorted(first_reply.value["entries"],
                                key=lambda e: e["sequence"]):
                if entry["broadcast_id"] in self._delivered_ids:
                    continue
                self._delivered_ids.add(entry["broadcast_id"])
                self._merge_horizon(entry["sequence"])
                self._ready.put((entry["sequence"],
                                 _PendingMessage(
                                     broadcast_id=entry["broadcast_id"],
                                     payload=entry["payload"],
                                     sender=entry["origin"]),
                                 True))
        return replayed

    # ------------------------------------------------------------------ rejoin protocol
    def _on_join(self, message: Message) -> None:
        joining = message.payload["member"]
        self.group.announce_join(joining)
        if joining == self.member_name:
            return
        checkpoint = self.checkpoint_provider() if self.checkpoint_provider \
            else None
        self._post(self.KIND_JOIN_REPLY, joining,
                   {"delivered_seq": self._delivered_seq,
                    "checkpoint": checkpoint, "member": self.member_name})

    def _on_join_reply(self, message: Message) -> None:
        box = getattr(self, "_join_replies", None)
        if box is not None:
            box.put(message.payload)

    # ------------------------------------------------------------------ e2e catch-up protocol
    def _on_sync_request(self, message: Message) -> None:
        if message.payload["member"] == self.member_name:
            return
        have_up_to = message.payload["have_up_to"]
        entries = [{"sequence": entry.sequence,
                    "broadcast_id": entry.broadcast_id,
                    "payload": entry.payload,
                    "origin": self.member_name}
                   for entry in self.journal.entries()
                   if entry.sequence > have_up_to]
        self._post(self.KIND_SYNC_REPLY, message.payload["member"],
                   {"entries": entries, "member": self.member_name})

    def _on_sync_reply(self, message: Message) -> None:
        box = getattr(self, "_sync_replies", None)
        if box is not None:
            box.put(message.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<{type(self).__name__} {self.member_name} "
                f"delivered={self._delivered_seq}>")
