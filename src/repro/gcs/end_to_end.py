"""End-to-end atomic broadcast (Sect. 4 of the paper).

The end-to-end primitive extends classical atomic broadcast with the
inter-component acknowledgement ``ack(m)`` of Fig. 6 and with log-based
recovery:

* every message is recorded on the group-communication component's **stable
  message log** when it is delivered to the application;
* the application signals *successful delivery* by calling
  :meth:`EndToEndAtomicBroadcastEndpoint.acknowledge`, which durably marks the
  message as processed;
* after a crash, :meth:`recover` replays every logged message whose
  acknowledgement is missing, so a non-red process eventually successfully
  delivers every message it delivered — the End-to-End property;
* the refined uniform integrity holds because replays are marked and the
  application's testable-transaction registry (plus the log's acknowledged
  flag) ensures at-most-once *successful* delivery.

This is the primitive that makes 2-safe database replication possible
(Sect. 4.3, Fig. 7), at the price of a stable-storage write per delivery.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core.layers import implements, uses
from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.resources import Store
from .atomic_broadcast import AtomicBroadcastEndpoint, Delivery, _PendingMessage
# repro: allow(layer-contract): inherits the fused sequencer/view coupling of AtomicBroadcastEndpoint
from .membership import GroupMembership
from .message_log import GcsMessageLog
from .spec import BroadcastTrace


@implements("total_order")
@uses("links")
class EndToEndAtomicBroadcastEndpoint(AtomicBroadcastEndpoint):
    """Atomic broadcast with end-to-end guarantees and log-based recovery."""

    KIND_SYNC_REQUEST = "ABCAST.E2E.SYNC_REQUEST"
    KIND_SYNC_REPLY = "ABCAST.E2E.SYNC_REPLY"

    def __init__(self, sim: Simulator, lan: Lan, node: Node,
                 dispatcher: Dispatcher, membership: GroupMembership,
                 member_name: Optional[str] = None,
                 delivery_cpu_time: float = 0.07,
                 delivery_log_time: float = 0.0,
                 trace: Optional[BroadcastTrace] = None) -> None:
        super().__init__(sim, lan, node, dispatcher, membership,
                         member_name=member_name,
                         delivery_cpu_time=delivery_cpu_time, trace=trace)
        #: Time charged on a disk for logging one delivery.  The protocol
        #: experiments leave it at 0 (timing is irrelevant there); the 2-safe
        #: performance ablation sets it to a Table 4 write time to expose the
        #: cost of end-to-end guarantees.
        self.delivery_log_time = delivery_log_time
        self.message_log = GcsMessageLog(node, name=f"{self.member_name}.e2e")
        dispatcher.register(self.KIND_SYNC_REQUEST, self._on_sync_request)
        dispatcher.register(self.KIND_SYNC_REPLY, self._on_sync_reply)
        #: Statistics.
        self.replayed_count = 0
        self.ack_count = 0

    # ------------------------------------------------------------------ delivery hook
    def _before_deliver(self, sequence: int, entry: _PendingMessage,
                        replayed: bool):
        """Log the delivery on stable storage before handing it upward."""
        if self.delivery_log_time:
            yield from self.node.use_cpu(self.node.cpu_time_per_io)
            yield from self.node.use_disk(self.delivery_log_time)
        self.message_log.record_delivery(sequence, entry.broadcast_id,
                                         entry.payload, self.sim.now)

    # ------------------------------------------------------------------ ack(m)
    def acknowledge(self, delivery: Delivery) -> None:
        """Record the application's ack(m): the delivery was successful."""
        self.ack_count += 1
        self.message_log.record_ack(delivery.broadcast_id, self.sim.now)
        if self.trace is not None:
            for record in self.trace.deliveries:
                if record.member == self.member_name and \
                        record.broadcast_id == delivery.broadcast_id:
                    record.acknowledged = True
                    record.acknowledged_at = self.sim.now

    # ------------------------------------------------------------------ recovery
    def recover(self, rejoin_timeout: float = 10.0):
        """Generator: log-based recovery (static crash recovery model).

        Unlike the classical endpoint, a recovering end-to-end endpoint keeps
        its identity, rebuilds its delivery horizon from its stable message
        log, replays every unacknowledged message to the application, and
        asks live members to retransmit messages it never saw.  It never needs
        an application checkpoint.
        """
        self._reset_volatile()
        self._started = False
        if not self.dispatcher.is_running:
            self.dispatcher.start()
        self.start()
        self.membership.add_member(self.member_name)

        logged = self.message_log.entries()
        self._delivered_seq = self.message_log.highest_sequence()
        self._stable_up_to = self._delivered_seq
        self._next_seq = self._delivered_seq + 1
        self._delivered_ids = {entry.broadcast_id for entry in logged}

        # Replay unacknowledged messages to the application (Fig. 7).
        replayed = 0
        for entry in self.message_log.unacknowledged():
            delivery = Delivery(payload=entry.payload,
                                broadcast_id=entry.broadcast_id,
                                sequence=entry.sequence,
                                delivered_at=self.sim.now,
                                member=self.member_name, replayed=True)
            self.replayed_count += 1
            replayed += 1
            self.deliveries.put(delivery)

        # Catch up on messages delivered by others while we were down.
        reply_box: Store = Store(self.sim, name=f"{self.member_name}.sync_replies")
        self._sync_replies = reply_box
        self._post_view(self.KIND_SYNC_REQUEST,
                        {"member": self.member_name,
                         "have_up_to": self._delivered_seq})
        timeout = self.sim.timeout(rejoin_timeout)
        first_reply = reply_box.get()
        outcome = yield self.sim.any_of([first_reply, timeout])
        if first_reply in outcome:
            for entry in sorted(first_reply.value["entries"],
                                key=lambda e: e["sequence"]):
                if entry["broadcast_id"] in self._delivered_ids:
                    continue
                self._delivered_ids.add(entry["broadcast_id"])
                self._delivered_seq = max(self._delivered_seq, entry["sequence"])
                self._stable_up_to = max(self._stable_up_to, entry["sequence"])
                self._next_seq = self._delivered_seq + 1
                self._ready.put((entry["sequence"],
                                 _PendingMessage(broadcast_id=entry["broadcast_id"],
                                                 payload=entry["payload"],
                                                 sender=entry["origin"]),
                                 True))
        return replayed

    # ------------------------------------------------------------------ catch-up protocol
    def _on_sync_request(self, message: Message) -> None:
        if message.payload["member"] == self.member_name:
            return
        have_up_to = message.payload["have_up_to"]
        entries = [{"sequence": entry.sequence,
                    "broadcast_id": entry.broadcast_id,
                    "payload": entry.payload,
                    "origin": self.member_name}
                   for entry in self.message_log.entries()
                   if entry.sequence > have_up_to]
        self._post(self.KIND_SYNC_REPLY, message.payload["member"],
                   {"entries": entries, "member": self.member_name})

    def _on_sync_reply(self, message: Message) -> None:
        box = getattr(self, "_sync_replies", None)
        if box is not None:
            box.put(message.payload)
