"""End-to-end atomic broadcast as a layer-composition option (Sect. 4).

The end-to-end primitive extends classical atomic broadcast with the
inter-component acknowledgement ``ack(m)`` of Fig. 6 and with log-based
recovery:

* every message is recorded on the group-communication component's **stable
  message log** when it is delivered to the application;
* the application signals *successful delivery* by calling
  ``endpoint.acknowledge(delivery)``, which durably marks the message as
  processed;
* after a crash, ``endpoint.recover()`` replays every logged message whose
  acknowledgement is missing, so a non-red process eventually successfully
  delivers every message it delivered — the End-to-End property;
* the refined uniform integrity holds because replays are marked and the
  application's testable-transaction registry (plus the log's acknowledged
  flag) ensures at-most-once *successful* delivery.

Rather than a subclass of the endpoint, end-to-end delivery is composed into
any :class:`~repro.gcs.total_order.TotalOrderEngine` by handing it a
:class:`DeliveryJournal` — the one object that owns the stable message log
and the Table 4 cost of writing it.  This is the primitive that makes 2-safe
database replication possible (Sect. 4.3, Fig. 7), at the price of a
stable-storage write per delivery, and it works identically under every
ordering engine.
"""

from __future__ import annotations

from typing import Any, List

from ..network.node import Node
from .message_log import GcsMessageLog, LoggedMessage


class DeliveryJournal:
    """Stable-storage delivery journal backing the end-to-end guarantees."""

    def __init__(self, node: Node, name: str, log_time: float = 0.0) -> None:
        #: The underlying stable message log (survives crashes).
        self.log = GcsMessageLog(node, name=name)
        #: Time charged on a disk for logging one delivery.  The protocol
        #: experiments leave it at 0 (timing is irrelevant there); the 2-safe
        #: performance ablation sets it to a Table 4 write time to expose the
        #: cost of end-to-end guarantees.
        self.log_time = log_time

    # ------------------------------------------------------------------ writes
    def record_delivery(self, sequence: int, broadcast_id: str, payload: Any,
                        now: float) -> None:
        """Durably record one delivery before it is handed to the application."""
        self.log.record_delivery(sequence, broadcast_id, payload, now)

    def record_ack(self, broadcast_id: str, now: float) -> None:
        """Durably record the application's ack(m)."""
        self.log.record_ack(broadcast_id, now)

    # ------------------------------------------------------------------ reads
    def entries(self) -> List[LoggedMessage]:
        """Every logged delivery, in sequence order."""
        return self.log.entries()

    def unacknowledged(self) -> List[LoggedMessage]:
        """Logged deliveries the application never acknowledged."""
        return self.log.unacknowledged()

    def highest_sequence(self) -> int:
        """The highest logged sequence number (0 when the log is empty)."""
        return self.log.highest_sequence()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<DeliveryJournal entries={len(self.log)}>"
