"""A Multi-Paxos total-order engine (per-slot prepare/accept/learn).

The alternative ordering protocol behind the engine registry: instead of a
fixed sequencer with explicit stability, total order is agreed slot by slot
with Paxos over the same reliable-broadcast layer.

* The **leader** is the lowest-ranked member of the static group the failure
  detector does not currently suspect (Chandra & Toueg's Ω read off the
  perfect detector).
* Senders ship ``PROPOSE(m)`` to the leader; the leader assigns the next
  free slot and runs the accept phase: ``ACCEPT(ballot, slot, m)`` to every
  view member, who accepts (if the ballot is not stale) and answers
  ``ACCEPTED``; once a majority of the *static* group accepted, the leader
  posts ``LEARN(slot, m)`` and every member A-delivers in slot order.
  Learning after a majority-accept is what makes delivery *uniform*: the
  value is durable at a majority before anyone delivers it.
* A **leader change** (the failure detector suspects the old leader) runs
  phase 1: the new leader picks a higher ballot, collects ``PROMISE``s from
  a majority and re-proposes every value a promise carried — the classical
  Paxos invariant that preserves majority-accepted slots across crashes.
  Proposals arriving while phase 1 runs are backlogged and drained once the
  ballot is established.
* On every view installation the leader re-posts ``LEARN`` for every chosen
  slot it knows, which is how a rejoined member fills delivery gaps (the
  fixed-sequencer engine does the same with its ``VC_STATE`` re-propagation).

Compared to the fixed-sequencer engine the failure-free message cost is one
round higher (accept + learn instead of seq + stable piggybacked on acks),
but leader takeover needs no group-wide state collection: a majority quorum
is enough, so the paper's crash-the-sequencer cells re-elect faster when
views are slow to form.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..core.layers import implements, uses
from ..network.dispatch import Dispatcher
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator
from .failure_detector import FailureDetector
from .reliable_broadcast import ReliableBroadcastLayer
from .spec import BroadcastTrace
from .total_order import MembershipPort, TotalOrderEngine, _PendingMessage


@implements("total_order")
@uses("reliable_broadcast")
@uses("failure_detector")
class MultiPaxosEngine(TotalOrderEngine):
    """One member's endpoint of the Multi-Paxos ordering protocol."""

    engine_name = "multi-paxos"

    KIND_PROPOSE = "PAXOS.PROPOSE"
    KIND_PREPARE = "PAXOS.PREPARE"
    KIND_PROMISE = "PAXOS.PROMISE"
    KIND_ACCEPT = "PAXOS.ACCEPT"
    KIND_ACCEPTED = "PAXOS.ACCEPTED"
    KIND_LEARN = "PAXOS.LEARN"
    KIND_NACK = "PAXOS.NACK"

    def __init__(self, sim: Simulator, node: Node, dispatcher: Dispatcher,
                 broadcast_layer: ReliableBroadcastLayer, group: MembershipPort,
                 failure_detector: FailureDetector,
                 member_name: Optional[str] = None,
                 delivery_cpu_time: float = 0.07,
                 trace: Optional[BroadcastTrace] = None,
                 journal: Optional[Any] = None) -> None:
        self._fd = failure_detector
        super().__init__(sim, node, dispatcher, broadcast_layer, group,
                         member_name=member_name,
                         delivery_cpu_time=delivery_cpu_time, trace=trace,
                         journal=journal)
        self._rank = {name: index for index, name in enumerate(group.members)}
        #: Statistics.
        self.prepare_count = 0

    # ------------------------------------------------------------------ engine contract
    def coordinator(self) -> Optional[str]:
        """The lowest-ranked static member the failure detector trusts."""
        for member in self.group.members:
            if not self._fd.is_suspected(member):
                return member
        return None

    def _register_engine_handlers(self) -> None:
        handlers = {
            self.KIND_PROPOSE: self._on_propose,
            self.KIND_PREPARE: self._on_prepare,
            self.KIND_PROMISE: self._on_promise,
            self.KIND_ACCEPT: self._on_accept,
            self.KIND_ACCEPTED: self._on_accepted,
            self.KIND_LEARN: self._on_learn,
            self.KIND_NACK: self._on_nack,
        }
        for kind, handler in handlers.items():
            self.dispatcher.register(kind, handler)

    def _reset_engine_state(self) -> None:
        # Acceptor state.
        self._promised = -1
        self._accepted: Dict[int, Tuple[int, Tuple[str, Any, str]]] = {}
        # Learner state: every chosen slot this member knows about.
        self._chosen: Dict[int, Tuple[str, Any, str]] = {}
        self._learned_ids: Set[str] = set()
        # Leader state.
        self._ballot = -1
        self._established = False
        self._preparing = False
        self._next_slot = 1
        self._slot_of: Dict[str, int] = {}
        self._backlog: Dict[str, Tuple[Any, str]] = {}
        self._prepare_votes: Dict[str, Dict[int, Tuple[int, Tuple[str, Any, str]]]] = {}
        self._accept_votes: Dict[Tuple[int, int], Set[str]] = {}
        self._learn_sent: Set[int] = set()
        self._max_ballot_seen = -1

    def _submit(self, broadcast_id: str, payload: Any, target: str) -> None:
        self._post(self.KIND_PROPOSE, target,
                   {"broadcast_id": broadcast_id, "payload": payload,
                    "origin": self.member_name})

    def _deliverable_up_to(self) -> float:
        # A slot is safe as soon as it is learned; contiguity alone gates
        # delivery (``_pending`` only ever holds learned slots).
        return float("inf")

    def _engine_install_horizon(self, sequence: int) -> None:
        self._next_slot = sequence + 1

    def _engine_merge_horizon(self, sequence: int) -> None:
        self._next_slot = max(self._next_slot, self._delivered_seq + 1)

    def _on_coordinator_change(self, view: Any, coordinator: str) -> None:
        if coordinator != self.member_name:
            return
        # Fill delivery gaps of (re)joined members: re-post every chosen
        # slot; receivers ignore what they already delivered.
        for slot in sorted(self._chosen):
            broadcast_id, payload, origin = self._chosen[slot]
            self._post_view(self.KIND_LEARN,
                            {"slot": slot, "broadcast_id": broadcast_id,
                             "payload": payload, "origin": origin})
        if not self._established and not self._preparing:
            self._begin_prepare()

    # ------------------------------------------------------------------ ballots
    def _next_ballot(self) -> int:
        size = len(self.group.members)
        rank = self._rank[self.member_name]
        return ((self._max_ballot_seen // size) + 1) * size + rank

    def _begin_prepare(self) -> None:
        """Phase 1: claim leadership with a fresh, higher ballot."""
        self._ballot = self._next_ballot()
        self._max_ballot_seen = max(self._max_ballot_seen, self._ballot)
        self._preparing = True
        self._established = False
        self._prepare_votes = {}
        self.prepare_count += 1
        self._post_view(self.KIND_PREPARE, {"ballot": self._ballot})

    # ------------------------------------------------------------------ proposer side
    def _on_propose(self, message: Message) -> None:
        if not self.is_sequencer:
            # A stale sender; forward to the real leader.
            leader = self.coordinator()
            if leader and leader != self.member_name:
                self._post(self.KIND_PROPOSE, leader, message.payload)
            return
        payload = message.payload
        broadcast_id = payload["broadcast_id"]
        if broadcast_id in self._slot_of or broadcast_id in self._learned_ids \
                or broadcast_id in self._delivered_ids:
            return  # duplicate resend after a leader change
        if not self._established:
            self._backlog[broadcast_id] = (payload["payload"],
                                           payload["origin"])
            if not self._preparing:
                self._begin_prepare()
            return
        self._propose(broadcast_id, payload["payload"], payload["origin"])

    def _propose(self, broadcast_id: str, payload: Any, origin: str) -> None:
        slot = self._next_slot
        self._next_slot += 1
        self._slot_of[broadcast_id] = slot
        self._post_view(self.KIND_ACCEPT,
                        {"ballot": self._ballot, "slot": slot,
                         "broadcast_id": broadcast_id, "payload": payload,
                         "origin": origin})

    # ------------------------------------------------------------------ acceptor side
    def _on_prepare(self, message: Message) -> None:
        ballot = message.payload["ballot"]
        self._max_ballot_seen = max(self._max_ballot_seen, ballot)
        if ballot <= self._promised:
            # Tell the stale proposer what it is up against (it may have
            # crashed and lost its ballot high-water mark) so it can retry
            # with a higher ballot.
            self._post(self.KIND_NACK, message.sender,
                       {"ballot": ballot, "promised": self._promised})
            return
        self._promised = ballot
        accepted = {slot: value for slot, value in self._accepted.items()}
        self._post(self.KIND_PROMISE, message.sender,
                   {"ballot": ballot, "accepted": accepted,
                    "member": self.member_name})

    def _on_accept(self, message: Message) -> None:
        payload = message.payload
        ballot = payload["ballot"]
        self._max_ballot_seen = max(self._max_ballot_seen, ballot)
        if ballot < self._promised:
            self._post(self.KIND_NACK, message.sender,
                       {"ballot": ballot, "promised": self._promised})
            return  # stale leader
        self._promised = ballot
        slot = payload["slot"]
        value = (payload["broadcast_id"], payload["payload"],
                 payload["origin"])
        self._accepted[slot] = (ballot, value)
        self._post(self.KIND_ACCEPTED, message.sender,
                   {"ballot": ballot, "slot": slot,
                    "member": self.member_name})

    # ------------------------------------------------------------------ leader side
    def _on_promise(self, message: Message) -> None:
        payload = message.payload
        if not self._preparing or payload["ballot"] != self._ballot:
            return
        self._prepare_votes[payload["member"]] = payload["accepted"]
        if len(self._prepare_votes) < self.group.quorum_size():
            return
        self._preparing = False
        self._established = True
        # Classical Paxos invariant: adopt, per slot, the value accepted at
        # the highest ballot any promise carried (plus our own acceptances).
        merged: Dict[int, Tuple[int, Tuple[str, Any, str]]] = dict(self._accepted)
        for member in sorted(self._prepare_votes):
            accepted = self._prepare_votes[member]
            for slot, (ballot, value) in accepted.items():
                known = merged.get(slot)
                if known is None or ballot > known[0]:
                    merged[slot] = (ballot, value)
        for slot in sorted(merged):
            _, value = merged[slot]
            broadcast_id, data, origin = value
            self._slot_of[broadcast_id] = slot
            self._next_slot = max(self._next_slot, slot + 1)
            self._post_view(self.KIND_ACCEPT,
                            {"ballot": self._ballot, "slot": slot,
                             "broadcast_id": broadcast_id, "payload": data,
                             "origin": origin})
        for broadcast_id, (data, origin) in list(self._backlog.items()):
            if broadcast_id in self._slot_of or \
                    broadcast_id in self._learned_ids or \
                    broadcast_id in self._delivered_ids:
                continue
            self._propose(broadcast_id, data, origin)
        self._backlog = {}

    def _on_accepted(self, message: Message) -> None:
        payload = message.payload
        ballot = payload["ballot"]
        if ballot != self._ballot or not self._established:
            return
        slot = payload["slot"]
        votes = self._accept_votes.setdefault((ballot, slot), set())
        votes.add(payload["member"])
        if len(votes) < self.group.quorum_size() or slot in self._learn_sent:
            return
        known = self._accepted.get(slot)
        if known is None:
            return  # we have not accepted our own proposal yet; wait for it
        self._learn_sent.add(slot)
        broadcast_id, data, origin = known[1]
        self._post_view(self.KIND_LEARN,
                        {"slot": slot, "broadcast_id": broadcast_id,
                         "payload": data, "origin": origin})

    def _on_nack(self, message: Message) -> None:
        payload = message.payload
        self._max_ballot_seen = max(self._max_ballot_seen, payload["promised"])
        if not self.is_sequencer:
            return  # someone else leads now; stop fighting
        if payload["ballot"] != self._ballot:
            return  # stale rejection of an abandoned ballot
        if self._preparing or self._established:
            # Our current ballot lost (typically: we crashed, recovered with
            # an empty high-water mark and under-bid); claim a higher one.
            self._begin_prepare()

    # ------------------------------------------------------------------ learner side
    def _on_learn(self, message: Message) -> None:
        payload = message.payload
        slot = payload["slot"]
        broadcast_id = payload["broadcast_id"]
        value = (broadcast_id, payload["payload"], payload["origin"])
        self._chosen[slot] = value
        self._learned_ids.add(broadcast_id)
        self._unsequenced.pop(broadcast_id, None)
        if slot <= self._delivered_seq or slot in self._pending:
            return  # already delivered (or queued) here
        self._pending[slot] = _PendingMessage(
            broadcast_id=broadcast_id, payload=payload["payload"],
            sender=payload["origin"])
        self._try_deliver()
