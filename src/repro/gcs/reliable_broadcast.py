"""Reliable point-to-point broadcast layer over the simulated LAN.

This is the bottom protocol of the group-communication stack (between the
raw links and the total-order engines): a per-member outbound channel that
charges the sending CPU for each protocol message and hands it to the LAN.
On the paper's switched 100 Mb/s LAN the link layer itself neither loses nor
reorders frames, so reliability at this level reduces to (a) surviving the
*sender's* crash — volatile outbound state is dropped and rebuilt, and the
engines above re-send what was never ordered — and (b) never blocking the
protocol handlers: sends are queued and a dedicated sender process drains
them, which is what gives every protocol message its CPU cost.

The total-order engines (:mod:`repro.gcs.fixed_sequencer`,
:mod:`repro.gcs.paxos`) are written against this layer only; they never talk
to the LAN directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.layers import implements, uses
from ..network.lan import Lan
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Timeout
from ..sim.resources import Store


@implements("reliable_broadcast")
@uses("links")
class ReliableBroadcastLayer:
    """One member's outbound broadcast channel (queue + sender process)."""

    def __init__(self, sim: Simulator, lan: Lan, node: Node,
                 member_name: Optional[str] = None) -> None:
        self.sim = sim
        self.lan = lan
        self.node = node
        self.member_name = member_name or node.name
        self.reset()

    # ------------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Drop the volatile outbound queue (the crash of the hosting node)."""
        self._outbox: Store = Store(self.sim, name=f"{self.member_name}.outbox")
        self._started = False

    def start(self) -> None:
        """Start the sender process on the hosting node."""
        if self._started:
            return
        self._started = True
        self.node.spawn(self._sender_loop(), name="abcast.sender")

    # ------------------------------------------------------------------ sending
    def send(self, message: Message) -> None:
        """Queue one protocol message for the sender process."""
        self._outbox.put(message)

    def _sender_loop(self):
        # Hot loop: inline ``cpu.use(...)`` (identical event schedule) to
        # spare a generator object per protocol message.
        outbox_get = self._outbox.get
        cpu = self.node.cpu
        cpu_cost = self.node.cpu_time_per_network_op
        sim = self.sim
        send = self.lan.send
        while True:
            message = yield outbox_get()
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, cpu_cost)
            finally:
                cpu.release(request)
            send(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ReliableBroadcastLayer {self.member_name}>"
