"""View-based group membership (the dynamic crash no-recovery model).

The history of the group is a sequence of *views* v0, v1, ... (Sect. 2.3 of
the paper); a new view is installed whenever a member is suspected to have
crashed or a (recovered) member rejoins.  The membership service here is a
shared object: real group-membership protocols agree on views with a
consensus round, which the simulation abstracts away since view agreement is
orthogonal to the safety questions studied.

The membership also answers the question the replication techniques care
about most: *did the group fail?*  A group fails when fewer than a quorum
(majority of the static membership, by default) of members remain in the
view — at that point the group-communication system can no longer guarantee
the durability that group-safety relies on (Table 2 / Table 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.layers import implements, uses
from ..sim.engine import Simulator
from .failure_detector import FailureDetector

ViewListener = Callable[["View"], None]


@dataclass(frozen=True)
class View:
    """One installed view: an identifier plus the ordered member list."""

    view_id: int
    members: Tuple[str, ...]
    installed_at: float = 0.0

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)

    @property
    def primary(self) -> Optional[str]:
        """The first member of the view (used as sequencer / coordinator)."""
        return self.members[0] if self.members else None


@implements("membership")
@uses("failure_detector")
class GroupMembership:
    """Tracks the current view of a static set of potential members."""

    def __init__(self, sim: Simulator, members: Sequence[str],
                 failure_detector: Optional[FailureDetector] = None,
                 quorum_size: Optional[int] = None) -> None:
        if not members:
            raise ValueError("a group needs at least one member")
        self.sim = sim
        self.static_members: Tuple[str, ...] = tuple(members)
        self.quorum_size = quorum_size if quorum_size is not None \
            else len(self.static_members) // 2 + 1
        self._listeners: List[ViewListener] = []
        self._history: List[View] = []
        self._install(tuple(members))
        if failure_detector is not None:
            failure_detector.subscribe(self._on_suspicion)

    # -- views --------------------------------------------------------------------
    @property
    def view(self) -> View:
        """The currently installed view."""
        return self._history[-1]

    @property
    def history(self) -> List[View]:
        """All installed views, oldest first."""
        return list(self._history)

    def _install(self, members: Tuple[str, ...]) -> View:
        view = View(view_id=len(self._history), members=members,
                    installed_at=self.sim.now)
        self._history.append(view)
        for listener in list(self._listeners):
            listener(view)
        return view

    def subscribe(self, listener: ViewListener) -> None:
        """Register a callback invoked at each view installation."""
        self._listeners.append(listener)

    # -- membership changes ------------------------------------------------------------
    def remove_member(self, member: str) -> Optional[View]:
        """Install a new view without ``member`` (no-op if already absent)."""
        current = self.view.members
        if member not in current:
            return None
        return self._install(tuple(m for m in current if m != member))

    def add_member(self, member: str) -> Optional[View]:
        """Install a new view including ``member`` (no-op if already present).

        The member list keeps the order of the static membership so that the
        sequencer choice (lowest-ranked member) is deterministic.
        """
        current = set(self.view.members)
        if member in current:
            return None
        if member not in self.static_members:
            raise ValueError(f"{member!r} is not part of the static group")
        current.add(member)
        ordered = tuple(m for m in self.static_members if m in current)
        return self._install(ordered)

    def _on_suspicion(self, member: str, event: str) -> None:
        if member not in self.static_members:
            # On a shared LAN the failure detector watches every node,
            # including nodes of other replica groups; only notifications
            # about this group's own members concern this membership.
            return
        if event == "suspect":
            self.remove_member(member)
        elif event == "restore":
            self.add_member(member)

    # -- group failure ------------------------------------------------------------------
    @property
    def has_quorum(self) -> bool:
        """True while the view still contains a quorum of the static group."""
        return len(self.view) >= self.quorum_size

    @property
    def group_failed(self) -> bool:
        """True once the view lost its quorum ("the group fails", Table 3)."""
        return not self.has_quorum

    def is_primary(self, member: str) -> bool:
        """True if ``member`` is the current view's primary / sequencer."""
        return self.view.primary == member

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<GroupMembership view={self.view.view_id} members={self.view.members}>"
