"""Facade wiring the group-communication component of a whole cluster.

:class:`GroupCommunicationSystem` builds, for a set of nodes attached to one
LAN, the shared failure detector, the view-based membership, one message
dispatcher per node and one atomic broadcast endpoint per node (classical or
end-to-end).  The replication techniques receive this object and only talk to
their local endpoint (``system.endpoint(name)``) and dispatcher
(``system.dispatcher(name)``) — mirroring the architecture of Fig. 1 where the
application uses the group-communication component without knowing how it is
implemented.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.node import Node
from ..sim.engine import Simulator
from .atomic_broadcast import AtomicBroadcastEndpoint
from .end_to_end import EndToEndAtomicBroadcastEndpoint
from .failure_detector import FailureDetector
from .membership import GroupMembership
from .spec import BroadcastTrace


class GroupCommunicationSystem:
    """All group-communication machinery of one replicated database cluster."""

    def __init__(self, sim: Simulator, lan: Lan,
                 nodes: Optional[Sequence[Node]] = None,
                 end_to_end: bool = False,
                 delivery_cpu_time: float = 0.07,
                 delivery_log_time: float = 0.0,
                 detection_delay: float = 1.0,
                 quorum_size: Optional[int] = None) -> None:
        self.sim = sim
        self.lan = lan
        self.end_to_end = end_to_end
        members = list(nodes) if nodes is not None else list(lan.nodes)
        if not members:
            raise ValueError("the group needs at least one node")
        self.failure_detector = FailureDetector(sim, lan,
                                                detection_delay=detection_delay)
        self.membership = GroupMembership(
            sim, [node.name for node in members],
            failure_detector=self.failure_detector, quorum_size=quorum_size)
        self.trace = BroadcastTrace()
        self._dispatchers: Dict[str, Dispatcher] = {}
        self._endpoints: Dict[str, AtomicBroadcastEndpoint] = {}
        for node in members:
            dispatcher = Dispatcher(sim, node)
            self._dispatchers[node.name] = dispatcher
            if end_to_end:
                endpoint: AtomicBroadcastEndpoint = EndToEndAtomicBroadcastEndpoint(
                    sim, lan, node, dispatcher, self.membership,
                    delivery_cpu_time=delivery_cpu_time,
                    delivery_log_time=delivery_log_time, trace=self.trace)
            else:
                endpoint = AtomicBroadcastEndpoint(
                    sim, lan, node, dispatcher, self.membership,
                    delivery_cpu_time=delivery_cpu_time, trace=self.trace)
            self._endpoints[node.name] = endpoint

    # -- access ---------------------------------------------------------------
    def endpoint(self, name: str) -> AtomicBroadcastEndpoint:
        """The atomic broadcast endpoint of server ``name``."""
        return self._endpoints[name]

    def dispatcher(self, name: str) -> Dispatcher:
        """The message dispatcher of server ``name``."""
        return self._dispatchers[name]

    @property
    def endpoints(self) -> List[AtomicBroadcastEndpoint]:
        """All endpoints, in node order."""
        # repro: allow(ordering-hazard): registration order is node order, deterministic
        return list(self._endpoints.values())

    def member_names(self) -> List[str]:
        """Names of all static group members."""
        return list(self._endpoints)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        """Start dispatchers and endpoints on every node that is up."""
        for name, endpoint in self._endpoints.items():
            node = self.lan.node(name)
            if node.is_crashed:
                continue
            self._dispatchers[name].start()
            endpoint.start()

    def start_member(self, name: str) -> None:
        """Start (or restart) the dispatcher and endpoint of one member."""
        self._dispatchers[name].start()
        self._endpoints[name].start()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "end-to-end" if self.end_to_end else "classical"
        return (f"<GroupCommunicationSystem {kind} members="
                f"{self.member_names()}>")
