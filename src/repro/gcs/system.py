"""Facade wiring the group-communication component of a whole cluster.

:class:`GroupCommunicationSystem` is the composition root of the protocol
stack: for a set of nodes attached to one LAN it builds the shared failure
detector, the view-based membership, and — per node — a message dispatcher,
a reliable-broadcast layer and one total-order engine endpoint (chosen by
name from :mod:`repro.gcs.engines`).  The replication techniques receive
this object and only talk to their local endpoint (``system.endpoint(name)``)
and dispatcher (``system.dispatcher(name)``) — mirroring the architecture of
Fig. 1 where the application uses the group-communication component without
knowing how it is implemented.

The engines sit below the membership layer, so this module also performs the
dependency inversion between the two: each engine receives a
:class:`~repro.gcs.total_order.MembershipPort` (downward-facing callables)
and the membership's view installations are subscribed *down* into
``engine.on_view_change``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.node import Node
from ..sim.engine import Simulator
from .end_to_end import DeliveryJournal
from .engines import DEFAULT_ENGINE, resolve_engine
from .failure_detector import build_failure_detector
from .membership import GroupMembership
from .reliable_broadcast import ReliableBroadcastLayer
from .spec import BroadcastTrace
from .total_order import MembershipPort, TotalOrderEngine


class GroupCommunicationSystem:
    """All group-communication machinery of one replicated database cluster."""

    def __init__(self, sim: Simulator, lan: Lan,
                 nodes: Optional[Sequence[Node]] = None,
                 end_to_end: bool = False,
                 delivery_cpu_time: float = 0.07,
                 delivery_log_time: float = 0.0,
                 detection_delay: float = 1.0,
                 quorum_size: Optional[int] = None,
                 engine: str = DEFAULT_ENGINE,
                 detector_mode: str = "perfect",
                 heartbeat_period: float = 10.0,
                 heartbeat_timeout: float = 50.0) -> None:
        self.sim = sim
        self.lan = lan
        self.end_to_end = end_to_end
        self.engine_spec = resolve_engine(engine)
        self.engine_name = self.engine_spec.name
        members = list(nodes) if nodes is not None else list(lan.nodes)
        if not members:
            raise ValueError("the group needs at least one node")
        self.detector_mode = detector_mode
        self.failure_detector = build_failure_detector(
            detector_mode, sim, lan, members,
            detection_delay=detection_delay,
            heartbeat_period=heartbeat_period,
            heartbeat_timeout=heartbeat_timeout)
        self.membership = GroupMembership(
            sim, [node.name for node in members],
            failure_detector=self.failure_detector, quorum_size=quorum_size)
        self.trace = BroadcastTrace()
        group_port = MembershipPort(
            members=tuple(node.name for node in members),
            view=lambda: self.membership.view,
            quorum_size=lambda: self.membership.quorum_size,
            announce_join=self.membership.add_member)
        self._dispatchers: Dict[str, Dispatcher] = {}
        self._broadcast_layers: Dict[str, ReliableBroadcastLayer] = {}
        self._endpoints: Dict[str, TotalOrderEngine] = {}
        for node in members:
            dispatcher = Dispatcher(sim, node)
            self._dispatchers[node.name] = dispatcher
            if detector_mode == "heartbeat":
                self.failure_detector.bind_dispatcher(node.name, dispatcher)
            broadcast_layer = ReliableBroadcastLayer(sim, lan, node)
            self._broadcast_layers[node.name] = broadcast_layer
            journal = DeliveryJournal(node, name=f"{node.name}.e2e",
                                      log_time=delivery_log_time) \
                if end_to_end else None
            endpoint = self.engine_spec.build(
                sim=sim, node=node, dispatcher=dispatcher,
                broadcast_layer=broadcast_layer, group=group_port,
                failure_detector=self.failure_detector,
                delivery_cpu_time=delivery_cpu_time, trace=self.trace,
                journal=journal)
            self.membership.subscribe(endpoint.on_view_change)
            self._endpoints[node.name] = endpoint

    # -- access ---------------------------------------------------------------
    def endpoint(self, name: str) -> TotalOrderEngine:
        """The total-order broadcast endpoint of server ``name``."""
        return self._endpoints[name]

    def dispatcher(self, name: str) -> Dispatcher:
        """The message dispatcher of server ``name``."""
        return self._dispatchers[name]

    def broadcast_layer(self, name: str) -> ReliableBroadcastLayer:
        """The reliable-broadcast layer of server ``name``."""
        return self._broadcast_layers[name]

    @property
    def endpoints(self) -> List[TotalOrderEngine]:
        """All endpoints, in node order."""
        # repro: allow(ordering-hazard): registration order is node order, deterministic
        return list(self._endpoints.values())

    def member_names(self) -> List[str]:
        """Names of all static group members."""
        return list(self._endpoints)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        """Start dispatchers and endpoints on every node that is up."""
        for name, endpoint in self._endpoints.items():
            node = self.lan.node(name)
            if node.is_crashed:
                continue
            self._dispatchers[name].start()
            endpoint.start()

    def start_member(self, name: str) -> None:
        """Start (or restart) the dispatcher and endpoint of one member."""
        self._dispatchers[name].start()
        self._endpoints[name].start()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        kind = "end-to-end" if self.end_to_end else "classical"
        return (f"<GroupCommunicationSystem {self.engine_name} {kind} "
                f"members={self.member_names()}>")
