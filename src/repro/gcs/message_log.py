"""Stable message log of the group-communication component.

End-to-end atomic broadcast (Sect. 4.2 of the paper) requires the group
communication component to *log messages and use log-based recovery*: every
message is recorded at delivery time, and the acknowledgement of the
application (``ack(m)``, i.e. successful delivery) is recorded when it
arrives.  After a crash, the messages whose acknowledgement is missing are
replayed to the application.

The log lives on the node's stable storage, so it survives crashes — that is
the whole point.  The classical atomic broadcast does **not** use this log,
which is exactly why it cannot be used to build 2-safe replication (Sect. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..network.node import Node
from ..db.stable_storage import StableStorage


@dataclass
class LoggedMessage:
    """One delivered message as recorded on stable storage."""

    sequence: int
    broadcast_id: str
    payload: Any
    delivered_at: float
    acknowledged: bool = False
    acknowledged_at: Optional[float] = None


class GcsMessageLog:
    """Crash-surviving record of delivered messages and their acknowledgements."""

    def __init__(self, node: Node, name: str = "gcs_log") -> None:
        self.node = node
        self._storage: StableStorage = node.register_stable(
            f"{name}.messages", StableStorage(f"{node.name}.{name}"))

    # -- recording ----------------------------------------------------------------
    def record_delivery(self, sequence: int, broadcast_id: str, payload: Any,
                        delivered_at: float) -> LoggedMessage:
        """Durably record that message ``broadcast_id`` was delivered."""
        existing = self._storage.get(broadcast_id)
        if existing is not None:
            return existing
        entry = LoggedMessage(sequence=sequence, broadcast_id=broadcast_id,
                              payload=payload, delivered_at=delivered_at)
        self._storage.put(broadcast_id, entry)
        return entry

    def record_ack(self, broadcast_id: str, acknowledged_at: float) -> None:
        """Durably record the application's ack(m) for ``broadcast_id``."""
        entry: Optional[LoggedMessage] = self._storage.get(broadcast_id)
        if entry is None:
            return
        entry.acknowledged = True
        entry.acknowledged_at = acknowledged_at
        self._storage.put(broadcast_id, entry)

    # -- queries -------------------------------------------------------------------
    def is_logged(self, broadcast_id: str) -> bool:
        """True if delivery of ``broadcast_id`` was recorded on this server."""
        return broadcast_id in self._storage

    def is_acknowledged(self, broadcast_id: str) -> bool:
        """True if the application acknowledged ``broadcast_id`` here."""
        entry = self._storage.get(broadcast_id)
        return bool(entry and entry.acknowledged)

    def entries(self) -> List[LoggedMessage]:
        """All logged messages, in delivery (sequence) order."""
        return sorted((self._storage.get(key)
                       for key in self._storage.keys()),
                      key=lambda entry: entry.sequence)

    def unacknowledged(self) -> List[LoggedMessage]:
        """Messages delivered but never acknowledged, in sequence order.

        These are exactly the messages the end-to-end broadcast replays after
        a crash (Fig. 7 of the paper).
        """
        return [entry for entry in self.entries() if not entry.acknowledged]

    def highest_sequence(self) -> int:
        """The largest sequence number ever logged here (0 if none)."""
        entries = self.entries()
        return entries[-1].sequence if entries else 0

    def as_dict(self) -> Dict[str, LoggedMessage]:
        """Mapping broadcast id -> logged entry (a shallow copy)."""
        return {entry.broadcast_id: entry for entry in self.entries()}

    def __len__(self) -> int:
        return len(self._storage)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<GcsMessageLog {self.node.name} logged={len(self)} "
                f"unacked={len(self.unacknowledged())}>")
