"""Group communication component (Sect. 2.3 and 4 of the paper).

The package is a layered protocol stack matching
:data:`repro.core.layers.LAYER_ORDER`: a reliable-broadcast layer over the
LAN, a perfect failure detector, pluggable total-order engines (fixed
sequencer and Multi-Paxos, selected through :mod:`repro.gcs.engines`),
view-based membership, the stable message log used for log-based recovery
(composed in as the end-to-end :class:`DeliveryJournal`), and
checkpoint-based state transfer.
"""

from .end_to_end import DeliveryJournal
from .engines import (DEFAULT_ENGINE, BroadcastEngineSpec, engine_names,
                      register_engine, resolve_engine)
from .failure_detector import FailureDetector
from .fixed_sequencer import FixedSequencerEngine
from .membership import GroupMembership, View
from .message_log import GcsMessageLog, LoggedMessage
from .paxos import MultiPaxosEngine
from .reliable_broadcast import ReliableBroadcastLayer
from .spec import (ATOMIC_BROADCAST_PROPERTIES, END_TO_END_PROPERTIES,
                   BroadcastProperty, BroadcastTrace, DeliveryRecord,
                   GroupModel, ProcessClass, classify_process)
from .state_transfer import (ApplicationCheckpoint, install_checkpoint,
                             take_checkpoint)
from .system import GroupCommunicationSystem
from .total_order import Delivery, MembershipPort, TotalOrderEngine

__all__ = [
    "BroadcastEngineSpec",
    "DEFAULT_ENGINE",
    "Delivery",
    "DeliveryJournal",
    "FixedSequencerEngine",
    "GroupCommunicationSystem",
    "GroupMembership",
    "MembershipPort",
    "MultiPaxosEngine",
    "ReliableBroadcastLayer",
    "TotalOrderEngine",
    "View",
    "FailureDetector",
    "GcsMessageLog",
    "LoggedMessage",
    "ApplicationCheckpoint",
    "take_checkpoint",
    "install_checkpoint",
    "ProcessClass",
    "classify_process",
    "GroupModel",
    "BroadcastProperty",
    "BroadcastTrace",
    "DeliveryRecord",
    "ATOMIC_BROADCAST_PROPERTIES",
    "END_TO_END_PROPERTIES",
    "engine_names",
    "register_engine",
    "resolve_engine",
]
