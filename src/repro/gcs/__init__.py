"""Group communication component (Sect. 2.3 and 4 of the paper).

The package provides classical uniform atomic broadcast, the new end-to-end
atomic broadcast, view-based membership, failure detection, the stable
message log used for log-based recovery, and checkpoint-based state transfer.
"""

from .atomic_broadcast import AtomicBroadcastEndpoint, Delivery
from .end_to_end import EndToEndAtomicBroadcastEndpoint
from .failure_detector import FailureDetector
from .membership import GroupMembership, View
from .message_log import GcsMessageLog, LoggedMessage
from .spec import (ATOMIC_BROADCAST_PROPERTIES, END_TO_END_PROPERTIES,
                   BroadcastProperty, BroadcastTrace, DeliveryRecord,
                   GroupModel, ProcessClass, classify_process)
from .state_transfer import (ApplicationCheckpoint, install_checkpoint,
                             take_checkpoint)
from .system import GroupCommunicationSystem

__all__ = [
    "AtomicBroadcastEndpoint",
    "EndToEndAtomicBroadcastEndpoint",
    "Delivery",
    "GroupCommunicationSystem",
    "GroupMembership",
    "View",
    "FailureDetector",
    "GcsMessageLog",
    "LoggedMessage",
    "ApplicationCheckpoint",
    "take_checkpoint",
    "install_checkpoint",
    "ProcessClass",
    "classify_process",
    "GroupModel",
    "BroadcastProperty",
    "BroadcastTrace",
    "DeliveryRecord",
    "ATOMIC_BROADCAST_PROPERTIES",
    "END_TO_END_PROPERTIES",
]
