"""Registry of total-order broadcast engines.

The replication techniques are written against the
:class:`~repro.gcs.total_order.TotalOrderEngine` endpoint surface and never
name an ordering protocol; which protocol runs underneath is selected by
name through this registry — ``SimulationParameters.broadcast_engine`` /
the ``--engine`` flag of the experiment CLIs end up here.

Built-in engines:

``fixed-sequencer`` (default)
    The classical LAN scheme of the seed
    (:class:`~repro.gcs.fixed_sequencer.FixedSequencerEngine`);
    bit-identical event schedules to the pre-decomposition code.
``multi-paxos``
    Per-slot prepare/accept/learn Multi-Paxos with the leader read off the
    failure detector (:class:`~repro.gcs.paxos.MultiPaxosEngine`).

Third-party engines register with :func:`register_engine`::

    from repro.gcs.engines import BroadcastEngineSpec, register_engine

    register_engine("my-engine", BroadcastEngineSpec(
        name="my-engine", factory=build_my_engine,
        description="token-ring total order"))

A factory is called once per member with keyword arguments ``sim``, ``node``,
``dispatcher``, ``broadcast_layer``, ``group`` (a
:class:`~repro.gcs.total_order.MembershipPort`), ``failure_detector``,
``delivery_cpu_time``, ``trace`` and ``journal`` and returns the member's
endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from .fixed_sequencer import FixedSequencerEngine
from .paxos import MultiPaxosEngine
from .total_order import TotalOrderEngine

#: Name of the engine used when nothing is configured (the seed behaviour).
DEFAULT_ENGINE = "fixed-sequencer"


@dataclass(frozen=True)
class BroadcastEngineSpec:
    """How to build one member's endpoint of a total-order engine."""

    #: Registry name (also stamped into experiment reports/JSON).
    name: str
    #: Factory called with the keyword arguments documented in the module
    #: docstring; returns a :class:`TotalOrderEngine`.
    factory: Callable[..., TotalOrderEngine]
    #: One-line description for ``--help`` output and reports.
    description: str = ""

    def build(self, **kwargs: Any) -> TotalOrderEngine:
        """Build one member endpoint."""
        return self.factory(**kwargs)


def _build_fixed_sequencer(*, failure_detector: Any = None,
                           **kwargs: Any) -> TotalOrderEngine:
    # The fixed sequencer takes its coordinator from the view, not from the
    # failure detector.
    return FixedSequencerEngine(**kwargs)


def _build_multi_paxos(*, failure_detector: Any,
                       **kwargs: Any) -> TotalOrderEngine:
    return MultiPaxosEngine(failure_detector=failure_detector, **kwargs)


_REGISTRY: Dict[str, BroadcastEngineSpec] = {}


def register_engine(name: str, spec: BroadcastEngineSpec) -> None:
    """Register (or replace) the engine spec known under ``name``."""
    if not name:
        raise ValueError("engine name must be non-empty")
    _REGISTRY[name] = spec


def resolve_engine(name: str) -> BroadcastEngineSpec:
    """Look up an engine spec by name; raises ``KeyError`` with the choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown broadcast engine {name!r}; "
                       f"known engines: {engine_names()}") from None


def engine_names() -> List[str]:
    """Names of every registered engine, in registration order."""
    return list(_REGISTRY)


register_engine("fixed-sequencer", BroadcastEngineSpec(
    name="fixed-sequencer", factory=_build_fixed_sequencer,
    description="fixed sequencer with explicit stability (the seed scheme)"))
register_engine("multi-paxos", BroadcastEngineSpec(
    name="multi-paxos", factory=_build_multi_paxos,
    description="per-slot Multi-Paxos, leader from the failure detector"))
