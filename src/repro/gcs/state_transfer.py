"""State transfer: checkpoint-based recovery of the dynamic model.

In the dynamic crash no-recovery model a recovering process rejoins the group
under a new identity and receives a *checkpoint* of the application state from
a current member (Sect. 2.3 of the paper).  The group-communication endpoint
only moves opaque checkpoints around; this module defines the small container
the replication techniques use for those checkpoints, so that what is (and is
not) captured by a state transfer is explicit: the database items, the set of
committed transactions, and the commit counter — but **not** the messages
that were delivered and not yet processed, which is why checkpoint-based
recovery loses the Fig. 5 transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..db.engine import LocalDatabase
from ..db.items import ItemVersion


@dataclass
class ApplicationCheckpoint:
    """A transferable snapshot of one replica's database state."""

    items: Dict[str, ItemVersion] = field(default_factory=dict)
    committed_transactions: List[str] = field(default_factory=list)
    commit_counter: int = 0
    taken_at: float = 0.0
    source: str = ""


def take_checkpoint(database: LocalDatabase, at_time: float,
                    source: str = "") -> ApplicationCheckpoint:
    """Capture the current committed state of ``database``."""
    return ApplicationCheckpoint(
        items=database.items.snapshot(),
        committed_transactions=list(database.testable.committed_ids()),
        commit_counter=database.commit_counter,
        taken_at=at_time,
        source=source or database.node.name)


def install_checkpoint(database: LocalDatabase,
                       checkpoint: ApplicationCheckpoint) -> None:
    """Replace ``database``'s state with the transferred ``checkpoint``.

    The testable-transaction registry is updated so the receiving replica
    knows which transactions are already reflected in the installed state and
    will not commit them a second time.
    """
    database.items.restore(checkpoint.items)
    database.commit_counter = checkpoint.commit_counter
    for txn_id in checkpoint.committed_transactions:
        database.testable.record_commit(txn_id)
