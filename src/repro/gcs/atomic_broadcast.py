"""Classical (uniform) atomic broadcast over the simulated LAN.

The implementation follows the fixed-sequencer scheme with explicit
stability, which is representative of what LAN group-communication toolkits
do and produces the ~1 ms broadcast cost the paper quotes for a 100 Mb/s LAN:

1. the sender ships ``DATA(m)`` to the current *sequencer* (the first member
   of the current view);
2. the sequencer assigns the next global sequence number and ships
   ``SEQ(seq, m)`` to every view member (including itself);
3. every member buffers the message and acknowledges with ``ACK(seq)``;
4. once a quorum (majority of the static group) has acknowledged ``seq``, the
   sequencer ships ``STABLE(up_to=seq)``; members A-deliver messages in
   sequence order once they are covered by the stability horizon.

Step 4 is what makes the delivery *uniform*: no member delivers a message
that could still be lost by the crash of a minority.  What the primitive does
**not** give — and this is the crux of the paper — is any guarantee that the
application has *processed* a delivered message: delivery only means the
message reached the application boundary.  The end-to-end variant in
:mod:`repro.gcs.end_to_end` adds that missing guarantee.

Recovery in this classical variant follows the dynamic crash no-recovery
model: a recovering member rejoins the group and receives a *state transfer*
(an application-level checkpoint) from a live member; delivered-but-
unprocessed messages are **not** replayed, which is precisely how the Fig. 5
scenario loses a committed transaction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core.layers import implements, uses
from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Timeout
from ..sim.resources import Store
# repro: allow(layer-contract): views fused with the sequencer until the ROADMAP pluggable-stack decomposition
from .membership import GroupMembership, View
from .spec import BroadcastTrace, DeliveryRecord


@dataclass
class Delivery:
    """One A-deliver event handed to the application."""

    payload: Any
    broadcast_id: str
    sequence: int
    delivered_at: float
    member: str
    replayed: bool = False


@dataclass
class _PendingMessage:
    broadcast_id: str
    payload: Any
    sender: str


@implements("total_order")
@uses("links")
# repro: allow(layer-contract): sequencer consumes views/quorums directly; debt until the stack decomposition (ROADMAP)
@uses("membership")
class AtomicBroadcastEndpoint:
    """The group-communication component of one server (classical abcast)."""

    #: Message-kind namespace used on the shared per-node dispatcher.
    KIND_DATA = "ABCAST.DATA"
    KIND_SEQ = "ABCAST.SEQ"
    KIND_ACK = "ABCAST.ACK"
    KIND_STABLE = "ABCAST.STABLE"
    KIND_JOIN = "ABCAST.JOIN"
    KIND_JOIN_REPLY = "ABCAST.JOIN_REPLY"
    KIND_VC_REQUEST = "ABCAST.VC_REQUEST"
    KIND_VC_STATE = "ABCAST.VC_STATE"

    def __init__(self, sim: Simulator, lan: Lan, node: Node,
                 dispatcher: Dispatcher, membership: GroupMembership,
                 member_name: Optional[str] = None,
                 delivery_cpu_time: float = 0.07,
                 trace: Optional[BroadcastTrace] = None) -> None:
        self.sim = sim
        self.lan = lan
        self.node = node
        self.dispatcher = dispatcher
        self.membership = membership
        self.member_name = member_name or node.name
        self.delivery_cpu_time = delivery_cpu_time
        self.trace = trace
        #: Deliveries ready for the application (A-deliver), in total order.
        self.deliveries: Store = Store(sim, name=f"{self.member_name}.deliveries")
        #: Provider of an application checkpoint for state transfer (set by
        #: the replication technique); called with no argument, returns state.
        self.checkpoint_provider: Optional[Callable[[], Any]] = None

        self._broadcast_counter = itertools.count(1)
        self._register_handlers()
        self.membership.subscribe(self._on_view_change)
        self.node.add_listener(self._on_node_event)
        self._reset_volatile()

        #: Statistics.
        self.broadcast_count = 0
        self.delivered_count = 0

    # ------------------------------------------------------------------ state
    def _reset_volatile(self) -> None:
        """(Re)initialise every piece of state that does not survive a crash."""
        self._outbox: Store = Store(self.sim, name=f"{self.member_name}.outbox")
        self._ready: Store = Store(self.sim, name=f"{self.member_name}.ready")
        self._pending: Dict[int, _PendingMessage] = {}
        self._delivered_seq = 0
        self._stable_up_to = 0
        self._delivered_ids: Set[str] = set()
        self._unsequenced: Dict[str, Any] = {}
        # Sequencer-only state.
        self._next_seq = 1
        self._assigned: Dict[int, _PendingMessage] = {}
        self._acks: Dict[int, Set[str]] = {}
        self._sequenced_ids: Set[str] = set()
        self._started = False

    def _on_node_event(self, node: Node, event: str) -> None:
        """Drop all volatile state when the hosting node crashes.

        Deliveries that were queued for the application but never processed
        are volatile too — losing them here is exactly the behaviour that
        makes classical atomic broadcast unable to provide 2-safety.
        """
        if event != "crash":
            return
        self.deliveries.clear()
        self._reset_volatile()
        self._started = False

    def _register_handlers(self) -> None:
        handlers = {
            self.KIND_DATA: self._on_data,
            self.KIND_SEQ: self._on_seq,
            self.KIND_ACK: self._on_ack,
            self.KIND_STABLE: self._on_stable,
            self.KIND_JOIN: self._on_join,
            self.KIND_JOIN_REPLY: self._on_join_reply,
            self.KIND_VC_REQUEST: self._on_vc_request,
            self.KIND_VC_STATE: self._on_vc_state,
        }
        for kind, handler in handlers.items():
            self.dispatcher.register(kind, handler)

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the endpoint's sender and delivery processes on the node."""
        if self._started:
            return
        self._started = True
        self.node.spawn(self._sender_loop(), name="abcast.sender")
        self.node.spawn(self._delivery_loop(), name="abcast.delivery")

    @property
    def is_sequencer(self) -> bool:
        """True if this member is the current view's sequencer."""
        return self.membership.view.primary == self.member_name

    def current_sequencer(self) -> Optional[str]:
        """Name of the current sequencer (None if the view is empty)."""
        return self.membership.view.primary

    # ------------------------------------------------------------------ A-broadcast
    def broadcast(self, payload: Any) -> str:
        """A-broadcast ``payload`` to the group; returns the broadcast id.

        The call is asynchronous (fire-and-forget), mirroring the A-send of
        Fig. 4: the sender learns the outcome by A-delivering its own message.
        """
        broadcast_id = f"{self.member_name}#{next(self._broadcast_counter)}"
        self._unsequenced[broadcast_id] = payload
        if self.trace is not None:
            self.trace.record_send(broadcast_id)
        obs = self.sim.obs
        if obs is not None:
            obs.instant("abcast.broadcast", track=f"gcs.{self.member_name}",
                        labels={"broadcast_id": broadcast_id})
        self.broadcast_count += 1
        sequencer = self.current_sequencer()
        if sequencer is not None:
            self._post(self.KIND_DATA, sequencer,
                       {"broadcast_id": broadcast_id, "payload": payload,
                        "origin": self.member_name})
        return broadcast_id

    # ------------------------------------------------------------------ outbound
    def _post(self, kind: str, destination: str, payload: Any) -> None:
        """Queue one protocol message for the sender process."""
        self._outbox.put(Message(sender=self.member_name,
                                 destination=destination, kind=kind,
                                 payload=payload))

    def _post_view(self, kind: str, payload: Any) -> None:
        """Queue one protocol message per current view member."""
        for member in self.membership.view.members:
            self._post(kind, member, payload)

    def _sender_loop(self):
        # Hot loop: inline ``cpu.use(...)`` (identical event schedule) to
        # spare a generator object per protocol message.
        outbox_get = self._outbox.get
        cpu = self.node.cpu
        cpu_cost = self.node.cpu_time_per_network_op
        sim = self.sim
        send = self.lan.send
        while True:
            message = yield outbox_get()
            request = cpu.request()
            yield request
            try:
                yield Timeout(sim, cpu_cost)
            finally:
                cpu.release(request)
            send(message)

    # ------------------------------------------------------------------ handlers
    def _on_data(self, message: Message) -> None:
        if not self.is_sequencer:
            # A stale sender; forward to the real sequencer.
            sequencer = self.current_sequencer()
            if sequencer and sequencer != self.member_name:
                self._post(self.KIND_DATA, sequencer, message.payload)
            return
        payload = message.payload
        broadcast_id = payload["broadcast_id"]
        if broadcast_id in self._sequenced_ids:
            return  # duplicate resend after a view change
        sequence = self._next_seq
        self._next_seq += 1
        entry = _PendingMessage(broadcast_id=broadcast_id,
                                payload=payload["payload"],
                                sender=payload["origin"])
        self._assigned[sequence] = entry
        self._sequenced_ids.add(broadcast_id)
        self._post_view(self.KIND_SEQ,
                        {"sequence": sequence, "broadcast_id": broadcast_id,
                         "payload": entry.payload, "origin": entry.sender})

    def _on_seq(self, message: Message) -> None:
        payload = message.payload
        sequence = payload["sequence"]
        broadcast_id = payload["broadcast_id"]
        self._pending[sequence] = _PendingMessage(
            broadcast_id=broadcast_id, payload=payload["payload"],
            sender=payload["origin"])
        self._unsequenced.pop(broadcast_id, None)
        sequencer = message.sender
        self._post(self.KIND_ACK, sequencer,
                   {"sequence": sequence, "member": self.member_name})
        self._try_deliver()

    def _on_ack(self, message: Message) -> None:
        if not self.is_sequencer:
            return
        payload = message.payload
        sequence = payload["sequence"]
        self._acks.setdefault(sequence, set()).add(payload["member"])
        self._advance_stability()

    def _advance_stability(self) -> None:
        quorum = self.membership.quorum_size
        new_stable = self._stable_up_to
        while True:
            candidate = new_stable + 1
            if candidate not in self._assigned:
                break
            if len(self._acks.get(candidate, ())) < quorum:
                break
            new_stable = candidate
        if new_stable > self._stable_up_to:
            self._post_view(self.KIND_STABLE, {"up_to": new_stable})

    def _on_stable(self, message: Message) -> None:
        up_to = message.payload["up_to"]
        if up_to > self._stable_up_to:
            self._stable_up_to = up_to
        self._try_deliver()

    def _try_deliver(self) -> None:
        """Move contiguously stable messages to the delivery process."""
        while True:
            next_seq = self._delivered_seq + 1
            if next_seq > self._stable_up_to or next_seq not in self._pending:
                break
            entry = self._pending.pop(next_seq)
            self._delivered_seq = next_seq
            if entry.broadcast_id in self._delivered_ids:
                continue  # uniform integrity: never hand a duplicate upward
            self._delivered_ids.add(entry.broadcast_id)
            self._ready.put((next_seq, entry, False))

    # ------------------------------------------------------------------ delivery
    def _delivery_loop(self):
        while True:
            sequence, entry, replayed = yield self._ready.get()
            if self.delivery_cpu_time:
                yield from self.node.use_cpu(self.delivery_cpu_time)
            yield from self._before_deliver(sequence, entry, replayed)
            delivery = Delivery(payload=entry.payload,
                                broadcast_id=entry.broadcast_id,
                                sequence=sequence, delivered_at=self.sim.now,
                                member=self.member_name, replayed=replayed)
            self.delivered_count += 1
            if self.trace is not None:
                self.trace.record_delivery(DeliveryRecord(
                    member=self.member_name, broadcast_id=entry.broadcast_id,
                    sequence=sequence, delivered_at=self.sim.now))
            obs = self.sim.obs
            if obs is not None:
                obs.instant("abcast.deliver", track=f"gcs.{self.member_name}",
                            labels={"broadcast_id": entry.broadcast_id,
                                    "sequence": sequence,
                                    "replayed": replayed})
            self.deliveries.put(delivery)

    def _before_deliver(self, sequence: int, entry: _PendingMessage,
                        replayed: bool):
        """Hook for subclasses (end-to-end logging); a generator."""
        return
        yield  # pragma: no cover - makes this a generator

    def acknowledge(self, delivery: Delivery) -> None:
        """Signal successful delivery (ack(m), Fig. 6).

        The classical primitive has no provision for this — the call is
        accepted and ignored, which is exactly the model mismatch Sect. 3
        describes.  The end-to-end subclass overrides it.
        """

    # ------------------------------------------------------------------ view changes
    def _on_view_change(self, view: View) -> None:
        if self.node.is_crashed or not self._started:
            return
        if self.member_name not in view.members:
            return
        # Re-send messages of ours that were never sequenced to the (possibly
        # new) sequencer.
        sequencer = view.primary
        if sequencer is None:
            return
        for broadcast_id, payload in list(self._unsequenced.items()):
            self._post(self.KIND_DATA, sequencer,
                       {"broadcast_id": broadcast_id, "payload": payload,
                        "origin": self.member_name})
        # If we just became the sequencer, collect the group's pending state.
        if sequencer == self.member_name and not self._assigned and \
                self._delivered_seq == 0 and self._stable_up_to == 0:
            # Fresh sequencer with no local history of assignments: ask the
            # other members what they have seen.
            self._post_view(self.KIND_VC_REQUEST, {"view_id": view.view_id})
        elif sequencer == self.member_name:
            self._post_view(self.KIND_VC_REQUEST, {"view_id": view.view_id})

    def _on_vc_request(self, message: Message) -> None:
        pending = {seq: (entry.broadcast_id, entry.payload, entry.sender)
                   for seq, entry in self._pending.items()}
        self._post(self.KIND_VC_STATE, message.sender,
                   {"pending": pending, "delivered_seq": self._delivered_seq,
                    "stable_up_to": self._stable_up_to,
                    "member": self.member_name})

    def _on_vc_state(self, message: Message) -> None:
        if not self.is_sequencer:
            return
        payload = message.payload
        for sequence, (broadcast_id, data, origin) in payload["pending"].items():
            if sequence not in self._assigned:
                self._assigned[sequence] = _PendingMessage(
                    broadcast_id=broadcast_id, payload=data, sender=origin)
                self._sequenced_ids.add(broadcast_id)
        highest_known = max([payload["delivered_seq"], payload["stable_up_to"],
                             self._stable_up_to, self._delivered_seq] +
                            list(self._assigned))  if self._assigned else \
            max(payload["delivered_seq"], payload["stable_up_to"],
                self._stable_up_to, self._delivered_seq)
        self._next_seq = max(self._next_seq, highest_known + 1)
        self._stable_up_to = max(self._stable_up_to,
                                 min(payload["stable_up_to"], highest_known))
        # Re-propagate every assignment we know about so that all members can
        # (re-)acknowledge; receivers ignore duplicates they already delivered.
        for sequence, entry in sorted(self._assigned.items()):
            self._post_view(self.KIND_SEQ,
                            {"sequence": sequence,
                             "broadcast_id": entry.broadcast_id,
                             "payload": entry.payload, "origin": entry.sender})

    # ------------------------------------------------------------------ recovery
    def recover(self, rejoin_timeout: float = 10.0):
        """Generator: recover after a crash (dynamic crash no-recovery model).

        The endpoint resets its volatile state, restarts its processes,
        rejoins the group and — if some member is still alive — obtains an
        application checkpoint via state transfer.  Returns the checkpoint (or
        ``None`` when no live member answered, in which case the application
        must fall back to its own stable storage).

        Delivered-but-unprocessed messages are *not* replayed: with classical
        atomic broadcast they are simply gone, which is the behaviour Sect. 3
        of the paper builds its impossibility argument on.
        """
        self._reset_volatile()
        self._started = False
        if not self.dispatcher.is_running:
            self.dispatcher.start()
        self.start()
        self.membership.add_member(self.member_name)
        reply_box: Store = Store(self.sim, name=f"{self.member_name}.join_replies")
        self._join_replies = reply_box
        self._post_view(self.KIND_JOIN, {"member": self.member_name})
        timeout = self.sim.timeout(rejoin_timeout)
        first_reply = reply_box.get()
        outcome = yield self.sim.any_of([first_reply, timeout])
        if first_reply in outcome:
            reply = first_reply.value
            self._delivered_seq = reply["delivered_seq"]
            self._stable_up_to = reply["delivered_seq"]
            self._next_seq = reply["delivered_seq"] + 1
            return reply["checkpoint"]
        return None

    def _on_join(self, message: Message) -> None:
        joining = message.payload["member"]
        self.membership.add_member(joining)
        if joining == self.member_name:
            return
        checkpoint = self.checkpoint_provider() if self.checkpoint_provider else None
        self._post(self.KIND_JOIN_REPLY, joining,
                   {"delivered_seq": self._delivered_seq,
                    "checkpoint": checkpoint, "member": self.member_name})

    def _on_join_reply(self, message: Message) -> None:
        box = getattr(self, "_join_replies", None)
        if box is not None:
            box.put(message.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<{type(self).__name__} {self.member_name} "
                f"delivered={self._delivered_seq} stable={self._stable_up_to}>")
