"""The fixed-sequencer total-order engine (the classical LAN scheme).

This is the seed's ordering protocol, extracted verbatim from the fused
endpoint into a :class:`~repro.gcs.total_order.TotalOrderEngine` subclass —
its event schedules are bit-identical to the pre-decomposition code (pinned
by the golden-digest tests).  The scheme is representative of what LAN
group-communication toolkits do and produces the ~1 ms broadcast cost the
paper quotes for a 100 Mb/s LAN:

1. the sender ships ``DATA(m)`` to the current *sequencer* (the first member
   of the current view);
2. the sequencer assigns the next global sequence number and ships
   ``SEQ(seq, m)`` to every view member (including itself);
3. every member buffers the message and acknowledges with ``ACK(seq)``;
4. once a quorum (majority of the static group) has acknowledged ``seq``, the
   sequencer ships ``STABLE(up_to=seq)``; members A-deliver messages in
   sequence order once they are covered by the stability horizon.

Step 4 is what makes the delivery *uniform*: no member delivers a message
that could still be lost by the crash of a minority.  What the primitive does
**not** give — and this is the crux of the paper — is any guarantee that the
application has *processed* a delivered message: delivery only means the
message reached the application boundary.  The end-to-end composition
(:mod:`repro.gcs.end_to_end`) adds that missing guarantee.

When the sequencer crashes, the next live member (view primary) takes over:
it collects the group's pending assignments (``VC_REQUEST``/``VC_STATE``)
and re-propagates every known assignment so all members can re-acknowledge.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..core.layers import implements, uses
from ..network.message import Message
from .total_order import TotalOrderEngine, _PendingMessage


@implements("total_order")
@uses("reliable_broadcast")
class FixedSequencerEngine(TotalOrderEngine):
    """The group-communication component of one server (fixed sequencer)."""

    engine_name = "fixed-sequencer"

    #: Message-kind namespace used on the shared per-node dispatcher.
    KIND_DATA = "ABCAST.DATA"
    KIND_SEQ = "ABCAST.SEQ"
    KIND_ACK = "ABCAST.ACK"
    KIND_STABLE = "ABCAST.STABLE"
    KIND_VC_REQUEST = "ABCAST.VC_REQUEST"
    KIND_VC_STATE = "ABCAST.VC_STATE"

    # ------------------------------------------------------------------ engine contract
    def coordinator(self) -> Optional[str]:
        """The sequencer: the first member of the current view."""
        return self.group.view().primary

    def _register_engine_handlers(self) -> None:
        handlers = {
            self.KIND_DATA: self._on_data,
            self.KIND_SEQ: self._on_seq,
            self.KIND_ACK: self._on_ack,
            self.KIND_STABLE: self._on_stable,
            self.KIND_VC_REQUEST: self._on_vc_request,
            self.KIND_VC_STATE: self._on_vc_state,
        }
        for kind, handler in handlers.items():
            self.dispatcher.register(kind, handler)

    def _reset_engine_state(self) -> None:
        self._stable_up_to = 0
        # Sequencer-only state.
        self._next_seq = 1
        self._assigned: Dict[int, _PendingMessage] = {}
        self._acks: Dict[int, Set[str]] = {}
        self._sequenced_ids: Set[str] = set()
        # Takeover barrier: while waiting for ``VC_STATE`` replies the new
        # sequencer must not assign sequence numbers — its ``_next_seq`` may
        # trail assignments the old sequencer stabilised with a quorum that
        # did not include us.  DATA arriving meanwhile is buffered.
        self._takeover_waiting: Optional[Set[str]] = None
        self._takeover_replies: Set[str] = set()
        self._takeover_buffer: list = []

    def _submit(self, broadcast_id: str, payload: Any, target: str) -> None:
        self._post(self.KIND_DATA, target,
                   {"broadcast_id": broadcast_id, "payload": payload,
                    "origin": self.member_name})

    def _deliverable_up_to(self) -> float:
        return self._stable_up_to

    def _engine_install_horizon(self, sequence: int) -> None:
        self._stable_up_to = sequence
        self._next_seq = sequence + 1

    def _engine_merge_horizon(self, sequence: int) -> None:
        self._stable_up_to = max(self._stable_up_to, sequence)
        self._next_seq = self._delivered_seq + 1

    def _on_coordinator_change(self, view: Any, coordinator: str) -> None:
        if coordinator != self.member_name:
            # Someone else sequences now; anything buffered during an
            # abandoned takeover of ours belongs to them.
            self._takeover_waiting = None
            buffered, self._takeover_buffer = self._takeover_buffer, []
            for message in buffered:
                self._post(self.KIND_DATA, coordinator, message.payload)
            return
        # We just became the sequencer: collect the group's pending state so
        # assignments known to others survive the handoff.  Until a quorum
        # has answered, DATA is buffered (see ``_on_data``) — sequencing
        # before the collection completes could re-use sequence numbers the
        # old sequencer already stabilised.
        self._takeover_waiting = set(view.members)
        self._takeover_replies = set()
        self._post_view(self.KIND_VC_REQUEST, {"view_id": view.view_id})

    def _on_excluded(self, view: Any) -> None:
        # Excluded while alive (partitioned away, not crashed): our
        # sequencer tenancy — if we had one — is void.  The surviving
        # majority re-collects pending state and re-assigns our sequence
        # numbers to other messages, so re-asserting ``_assigned`` on a
        # later rejoin would deliver a *different* message under an
        # already-delivered sequence: a total-order (split-brain) violation.
        # Our own not-yet-delivered broadcasts go back to ``_unsequenced``
        # so the rejoin view change re-submits them for fresh sequencing.
        for _seq, entry in sorted(self._pending.items()) + \
                sorted(self._assigned.items()):
            if entry.sender == self.member_name and \
                    entry.broadcast_id not in self._delivered_ids:
                self._unsequenced.setdefault(entry.broadcast_id,
                                             entry.payload)
        self._pending.clear()
        self._assigned = {}
        self._acks = {}
        self._sequenced_ids = set()
        self._next_seq = self._delivered_seq + 1
        self._takeover_waiting = None
        self._takeover_replies = set()
        self._takeover_buffer = []

    # ------------------------------------------------------------------ handlers
    def _on_data(self, message: Message) -> None:
        if not self.is_sequencer:
            # A stale sender; forward to the real sequencer.
            sequencer = self.coordinator()
            if sequencer and sequencer != self.member_name:
                self._post(self.KIND_DATA, sequencer, message.payload)
            return
        if self._takeover_waiting is not None:
            self._takeover_buffer.append(message)
            return
        payload = message.payload
        broadcast_id = payload["broadcast_id"]
        if broadcast_id in self._sequenced_ids:
            return  # duplicate resend after a view change
        sequence = self._next_seq
        self._next_seq += 1
        entry = _PendingMessage(broadcast_id=broadcast_id,
                                payload=payload["payload"],
                                sender=payload["origin"])
        self._assigned[sequence] = entry
        self._sequenced_ids.add(broadcast_id)
        self._post_view(self.KIND_SEQ,
                        {"sequence": sequence, "broadcast_id": broadcast_id,
                         "payload": entry.payload, "origin": entry.sender})

    def _on_seq(self, message: Message) -> None:
        payload = message.payload
        sequence = payload["sequence"]
        broadcast_id = payload["broadcast_id"]
        self._pending[sequence] = _PendingMessage(
            broadcast_id=broadcast_id, payload=payload["payload"],
            sender=payload["origin"])
        self._unsequenced.pop(broadcast_id, None)
        sequencer = message.sender
        self._post(self.KIND_ACK, sequencer,
                   {"sequence": sequence, "member": self.member_name})
        self._try_deliver()

    def _on_ack(self, message: Message) -> None:
        if not self.is_sequencer:
            return
        payload = message.payload
        sequence = payload["sequence"]
        self._acks.setdefault(sequence, set()).add(payload["member"])
        self._advance_stability()

    def _advance_stability(self) -> None:
        quorum = self.group.quorum_size()
        new_stable = self._stable_up_to
        while True:
            candidate = new_stable + 1
            if candidate not in self._assigned:
                break
            if len(self._acks.get(candidate, ())) < quorum:
                break
            new_stable = candidate
        if new_stable > self._stable_up_to:
            self._post_view(self.KIND_STABLE, {"up_to": new_stable})

    def _on_stable(self, message: Message) -> None:
        up_to = message.payload["up_to"]
        if up_to > self._stable_up_to:
            self._stable_up_to = up_to
        self._try_deliver()

    # ------------------------------------------------------------------ sequencer handoff
    def _on_vc_request(self, message: Message) -> None:
        pending = {seq: (entry.broadcast_id, entry.payload, entry.sender)
                   for seq, entry in self._pending.items()}
        self._post(self.KIND_VC_STATE, message.sender,
                   {"pending": pending, "delivered_seq": self._delivered_seq,
                    "stable_up_to": self._stable_up_to,
                    "member": self.member_name})

    def _on_vc_state(self, message: Message) -> None:
        if not self.is_sequencer:
            return
        payload = message.payload
        for sequence, (broadcast_id, data, origin) in payload["pending"].items():
            if sequence not in self._assigned:
                self._assigned[sequence] = _PendingMessage(
                    broadcast_id=broadcast_id, payload=data, sender=origin)
                self._sequenced_ids.add(broadcast_id)
        highest_known = max([payload["delivered_seq"], payload["stable_up_to"],
                             self._stable_up_to, self._delivered_seq] +
                            list(self._assigned))  if self._assigned else \
            max(payload["delivered_seq"], payload["stable_up_to"],
                self._stable_up_to, self._delivered_seq)
        self._next_seq = max(self._next_seq, highest_known + 1)
        self._stable_up_to = max(self._stable_up_to,
                                 min(payload["stable_up_to"], highest_known))
        # Re-propagate every assignment we know about so that all members can
        # (re-)acknowledge; receivers ignore duplicates they already delivered.
        for sequence, entry in sorted(self._assigned.items()):
            self._post_view(self.KIND_SEQ,
                            {"sequence": sequence,
                             "broadcast_id": entry.broadcast_id,
                             "payload": entry.payload, "origin": entry.sender})
        if self._takeover_waiting is not None:
            self._takeover_replies.add(payload["member"])
            needed = min(self.group.quorum_size(),
                         len(self._takeover_waiting))
            if len(self._takeover_replies & self._takeover_waiting) >= needed:
                # Enough of the view answered: ``_next_seq`` now covers every
                # assignment a quorum could have stabilised — safe to sequence.
                self._takeover_waiting = None
                buffered, self._takeover_buffer = self._takeover_buffer, []
                for message in buffered:
                    self._on_data(message)
