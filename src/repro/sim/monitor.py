"""Measurement collection for simulation runs.

The experiments of the paper report three kinds of quantities:

* **response times** (Fig. 9's Y axis) — collected per committed transaction,
  summarised by mean / percentiles;
* **rates** (load actually achieved, abort rate) — counters divided by the
  measured interval;
* **resource utilisation** — to sanity-check that the simulated system is in
  the intended operating region (disks saturating before CPUs, etc.).

:class:`Tally` accumulates scalar observations, :class:`Counter` counts
occurrences, and :class:`Monitor` groups them per run with warm-up handling so
that the transient at the start of a run does not bias the steady-state
measurements.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..core.stats import percentile as _shared_percentile


class Tally:
    """Accumulates scalar observations and computes summary statistics."""

    def __init__(self, name: str = "tally") -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    def extend(self, values: Sequence[float]) -> None:
        """Record many observations at once."""
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return len(self._values)

    def snapshot(self) -> List[float]:
        """A copy of all recorded observations, in arrival order.

        Deliberately a method, not a property: the copy is O(n), and a
        property made it too easy to pay that cost by accident on a hot
        path (``tally.values`` looked free).
        """
        return list(self._values)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 if empty)."""
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    @property
    def variance(self) -> float:
        """Sample variance (0.0 for fewer than two observations)."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = self.mean
        return sum((value - mean) ** 2 for value in self._values) / (n - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (0.0 if empty)."""
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0.0 if empty)."""
        return max(self._values) if self._values else 0.0

    def percentile(self, fraction: float) -> float:
        """Return the ``fraction`` percentile using linear interpolation.

        Delegates to :func:`repro.core.stats.percentile` — the one shared
        implementation (empty sample -> 0.0, fraction outside [0, 1] ->
        ``ValueError``).
        """
        return _shared_percentile(self._values, fraction)

    def summary(self) -> Dict[str, float]:
        """Return a dictionary of the main statistics."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.3f}>"


class Counter:
    """A named integer counter."""

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def rate(self, interval: float) -> float:
        """Counter value divided by ``interval`` (guarding the zero case)."""
        if interval <= 0:
            return 0.0
        return self.value / interval

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Counter {self.name!r} value={self.value}>"


class Monitor:
    """Groups tallies and counters for one simulation run.

    ``warmup`` is a simulated-time threshold: observations recorded before it
    are discarded, which removes the initial transient from steady-state
    statistics (standard practice for closed-loop simulations like Fig. 9).
    """

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = warmup
        self._tallies: Dict[str, Tally] = {}
        self._counters: Dict[str, Counter] = {}
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    def tally(self, name: str) -> Tally:
        """Return (creating if needed) the tally called ``name``."""
        if name not in self._tallies:
            self._tallies[name] = Tally(name)
        return self._tallies[name]

    def counter(self, name: str) -> Counter:
        """Return (creating if needed) the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def observe(self, name: str, value: float, at_time: float) -> None:
        """Record ``value`` into tally ``name`` unless still in warm-up."""
        if at_time >= self.warmup:
            self.tally(name).observe(value)

    def count(self, name: str, at_time: float, amount: int = 1) -> None:
        """Increment counter ``name`` unless still in warm-up."""
        if at_time >= self.warmup:
            self.counter(name).increment(amount)

    @property
    def measured_interval(self) -> float:
        """Length of the measured (post warm-up) interval in simulated time."""
        if self.stopped_at is None:
            return 0.0
        start = max(self.warmup, self.started_at or 0.0)
        return max(0.0, self.stopped_at - start)

    def throughput(self, counter_name: str) -> float:
        """Events per millisecond for counter ``counter_name``."""
        return self.counter(counter_name).rate(self.measured_interval)

    def report(self) -> Dict[str, Dict[str, float]]:
        """Summaries of every tally plus raw counter values."""
        report: Dict[str, Dict[str, float]] = {}
        for name, tally in self._tallies.items():
            report[name] = tally.summary()
        for name, counter in self._counters.items():
            report[f"counter:{name}"] = {"value": float(counter.value)}
        return report
