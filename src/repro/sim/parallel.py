"""Conservative parallel execution of sharded simulations.

The serial :class:`~repro.sim.engine.Simulator` is single-threaded by design
— one clock, one heap — which caps every experiment at one core.  This module
runs *several* simulators side by side, one per shard, and keeps them causally
consistent with a Chandy–Misra–Bryant-style conservative barrier protocol:

* Each shard owns a full :class:`~repro.sim.engine.Simulator` (its own clock,
  event heap and interned random streams).  Shards interact **only** through
  :class:`CrossShardMessage` values whose delivery latency is at least the
  global ``lookahead``.
* The coordinator repeatedly computes the global floor — the minimum of every
  shard's next-event time and every in-transit message's delivery time — and
  grants each shard the right to advance through the half-open window
  ``[floor, floor + lookahead)``.  Any message *sent* inside that window is
  timestamped at least ``floor + lookahead``, i.e. at or beyond the window
  bound, so no shard can ever receive an event in its simulated past.
* Messages drained at the end of a window are routed by the coordinator and
  injected at the start of the receiver's next window, sorted by
  ``(deliver_at, origin shard, origin sequence)`` — a total order independent
  of which worker produced them, which is what makes per-shard event traces
  bit-identical at every worker count.

Two execution engines share that loop verbatim:

* ``workers=0`` — the serial reference engine: all shards live in this
  process and are advanced round-robin, window by window.
* ``workers=N`` — N worker processes; shard ``s`` lives in worker
  ``s % N`` and the per-window exchange travels over pipes.

Shard models are described by picklable :class:`ShardSpec` values naming a
``module:function`` builder, so worker processes can rebuild their shards
under both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import importlib
import math
import multiprocessing
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

_INFINITY = float("inf")


class LookaheadViolation(RuntimeError):
    """A shard broke the conservative window protocol.

    Raised by ``run_sharded(..., detect_races=True)`` when a cross-shard
    message lands inside the lookahead window, a shard's clock regresses
    behind its granted window, or the injection order diverges from the
    ``(deliver_at, origin_shard, origin_seq)`` total order.  Carries full
    provenance so the offending shard model can be found from the exception
    alone.
    """

    def __init__(self, message: str, *, window: int, floor: float,
                 lookahead: float,
                 offending: Optional["CrossShardMessage"] = None) -> None:
        super().__init__(message)
        self.window = window
        self.floor = floor
        self.lookahead = lookahead
        self.offending = offending


@dataclass(frozen=True)
class CrossShardMessage:
    """One timestamped message in flight between two shards.

    ``origin_seq`` is the sender's per-shard send counter; together with
    ``origin_shard`` and ``deliver_at`` it gives every message a globally
    unique, execution-order-independent sort key.
    """

    deliver_at: float
    dest_shard: int
    origin_shard: int
    origin_seq: int
    kind: str
    payload: Any


#: Sort key injecting messages in a deterministic total order.
def _message_key(message: CrossShardMessage) -> Tuple[float, int, int]:
    return (message.deliver_at, message.origin_shard, message.origin_seq)


@dataclass(frozen=True)
class ShardSpec:
    """Picklable description of one shard: who builds it, from what config."""

    shard_id: int
    #: ``"package.module:function"`` — resolved in the worker process.
    builder: str
    #: Arbitrary picklable configuration handed to the builder.
    config: Any = None


def _resolve_builder(spec: ShardSpec) -> Callable[[int, Any], Any]:
    module_name, _, function_name = spec.builder.partition(":")
    if not function_name:
        raise ValueError(
            f"shard builder {spec.builder!r} must be 'module:function'")
    module = importlib.import_module(module_name)
    return getattr(module, function_name)


def build_shard(spec: ShardSpec) -> Any:
    """Instantiate the shard model described by ``spec``.

    The builder is called as ``builder(shard_id, config)`` and must return an
    object with the shard protocol: ``peek() -> float``,
    ``run_before(bound) -> None``, ``inject(message) -> None``,
    ``drain_outbox() -> list[CrossShardMessage]`` and
    ``finish(until) -> picklable result``.
    """
    return _resolve_builder(spec)(spec.shard_id, spec.config)


# -- the conservative window loop ---------------------------------------------------------


class _ShardGroup:
    """The per-window shard operations, shared by both execution engines.

    A group advances *its* shards; the coordinator tells it the window bound
    and hands over the messages routed to its shards.  Shards are always
    iterated in ascending shard id so the in-process engine and every
    worker-process layout replay the same per-shard order.
    """

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self.shards = [build_shard(spec)
                       for spec in sorted(specs, key=lambda s: s.shard_id)]
        self.ids = [spec.shard_id
                    for spec in sorted(specs, key=lambda s: s.shard_id)]

    def advance(self, bound: float,
                inbound: Dict[int, List[CrossShardMessage]]
                ) -> Tuple[Dict[int, float], List[CrossShardMessage]]:
        """Inject, run one window on every owned shard, drain and peek."""
        peeks: Dict[int, float] = {}
        outbox: List[CrossShardMessage] = []
        for shard_id, shard in zip(self.ids, self.shards):
            for message in inbound.get(shard_id, ()):
                shard.inject(message)
            shard.run_before(bound)
            outbox.extend(shard.drain_outbox())
            peeks[shard_id] = shard.peek()
        return peeks, outbox

    def finish(self, until: float) -> Dict[int, Any]:
        """Settle every shard's clock at ``until`` and collect results."""
        return {shard_id: shard.finish(until)
                for shard_id, shard in zip(self.ids, self.shards)}


def _worker_main(connection, specs: Sequence[ShardSpec]) -> None:
    """Worker-process loop: build the owned shards, serve window commands."""
    group = _ShardGroup(specs)
    connection.send(("ready",))
    while True:
        command = connection.recv()
        if command[0] == "advance":
            _, bound, inbound = command
            connection.send(group.advance(bound, inbound))
        elif command[0] == "finish":
            connection.send(group.finish(command[1]))
            connection.close()
            return
        else:  # pragma: no cover - protocol guard
            raise ValueError(f"unknown worker command {command[0]!r}")


class _InProcessEngine:
    """Serial reference engine: every shard lives in the coordinator."""

    def __init__(self, specs: Sequence[ShardSpec]) -> None:
        self._group = _ShardGroup(specs)

    def advance(self, bound: float,
                routed: Dict[int, List[CrossShardMessage]]
                ) -> Tuple[Dict[int, float], List[CrossShardMessage]]:
        return self._group.advance(bound, routed)

    def finish(self, until: float) -> Dict[int, Any]:
        return self._group.finish(until)

    def close(self) -> None:
        pass


class _ProcessPoolEngine:
    """N worker processes; shard ``s`` is owned by worker ``s % N``."""

    def __init__(self, specs: Sequence[ShardSpec], workers: int) -> None:
        context = multiprocessing.get_context()
        assignments: List[List[ShardSpec]] = [[] for _ in range(workers)]
        for spec in sorted(specs, key=lambda s: s.shard_id):
            assignments[spec.shard_id % workers].append(spec)
        self._owner = {spec.shard_id: spec.shard_id % workers
                       for spec in specs}
        self._connections = []
        self._processes = []
        for owned in assignments:
            parent_end, child_end = context.Pipe()
            process = context.Process(target=_worker_main,
                                      args=(child_end, owned), daemon=True)
            process.start()
            child_end.close()
            self._connections.append(parent_end)
            self._processes.append(process)
        # Workers build their shard worlds concurrently; wait for all of
        # them so build time never pollutes the window-loop timing.
        for connection in self._connections:
            ready = connection.recv()
            if ready != ("ready",):  # pragma: no cover - protocol guard
                raise RuntimeError(f"worker failed to start: {ready!r}")

    def advance(self, bound: float,
                routed: Dict[int, List[CrossShardMessage]]
                ) -> Tuple[Dict[int, float], List[CrossShardMessage]]:
        per_worker: List[Dict[int, List[CrossShardMessage]]] = [
            {} for _ in self._connections]
        for shard_id, messages in routed.items():
            per_worker[self._owner[shard_id]][shard_id] = messages
        for connection, inbound in zip(self._connections, per_worker):
            connection.send(("advance", bound, inbound))
        peeks: Dict[int, float] = {}
        outbox: List[CrossShardMessage] = []
        for connection in self._connections:
            worker_peeks, worker_outbox = connection.recv()
            peeks.update(worker_peeks)
            outbox.extend(worker_outbox)
        return peeks, outbox

    def finish(self, until: float) -> Dict[int, Any]:
        for connection in self._connections:
            connection.send(("finish", until))
        results: Dict[int, Any] = {}
        for connection in self._connections:
            results.update(connection.recv())
        return results

    def close(self) -> None:
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - hang guard
                process.terminate()


@dataclass
class ParallelRunReport:
    """What one conservative parallel run produced."""

    #: Per-shard results, keyed by shard id (whatever ``finish`` returned).
    shard_results: Dict[int, Any]
    #: Synchronization windows the coordinator granted.
    windows: int
    #: Cross-shard messages exchanged.
    messages: int
    #: The worker count the run executed with (0 = in-process serial).
    workers: int
    #: The worker count the caller asked for, before clamping to the shard
    #: count; equals ``workers`` when no clamp was applied.
    requested_workers: int = 0
    #: Wall-clock seconds spent building the shard worlds (workers build
    #: theirs concurrently) and running the window loop, kept separate so
    #: events/sec benchmarks measure the event loop, not model construction.
    build_seconds: float = 0.0
    run_seconds: float = 0.0


def run_sharded(specs: Sequence[ShardSpec], *, lookahead: float,
                until: float, workers: int = 0,
                detect_races: bool = False) -> ParallelRunReport:
    """Run every shard to simulated time ``until`` under conservative sync.

    ``lookahead`` must be a lower bound on every cross-shard delivery
    latency; the coordinator trusts it and widens each window by exactly that
    much beyond the global floor.  ``workers=0`` runs all shards serially in
    this process (the reference engine); ``workers>=1`` fans the shards out
    over that many worker processes.  The produced per-shard event sequences
    are identical in both modes and at every worker count.

    ``detect_races=True`` cross-checks the protocol every window instead of
    trusting it: every drained message must carry
    ``deliver_at >= floor + lookahead``, the global floor must never regress,
    every post-window peek must sit at or beyond the granted bound, and each
    inbox's injection order must be strictly increasing under the
    ``(deliver_at, origin_shard, origin_seq)`` key.  Violations raise
    :class:`LookaheadViolation`.  Detection only observes — it never alters
    the schedule, so digests are identical with it on or off.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead!r}")
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers!r}")
    if not specs:
        raise ValueError("at least one shard is required")
    worker_count = min(workers, len(specs))
    if worker_count != workers:
        warnings.warn(
            f"run_sharded: clamped workers from {workers} to {worker_count} "
            f"({len(specs)} shard(s) cannot use more processes)",
            RuntimeWarning, stacklevel=2)
    build_started = time.perf_counter()
    engine = (_InProcessEngine(specs) if worker_count == 0
              else _ProcessPoolEngine(specs, worker_count))
    build_seconds = time.perf_counter() - build_started
    # The horizon is inclusive, matching Simulator.run(until=...): events at
    # exactly ``until`` still run, so the effective strict bound is the next
    # representable float.
    horizon = math.nextafter(until, _INFINITY)
    run_started = time.perf_counter()
    try:
        peeks: Dict[int, float] = {spec.shard_id: 0.0 for spec in specs}
        pending: List[CrossShardMessage] = []
        windows = 0
        messages = 0
        previous_floor = -_INFINITY
        while True:
            floor = min(peeks.values())
            if pending:
                floor = min(floor, min(m.deliver_at for m in pending))
            if floor > until or floor == _INFINITY:
                break
            if detect_races:
                if floor < previous_floor:
                    raise LookaheadViolation(
                        f"window {windows}: global floor regressed from "
                        f"{previous_floor!r} to {floor!r}",
                        window=windows, floor=floor, lookahead=lookahead)
                previous_floor = floor
            bound = min(floor + lookahead, horizon)
            routed: Dict[int, List[CrossShardMessage]] = {}
            still_pending: List[CrossShardMessage] = []
            for message in pending:
                if message.deliver_at < bound:
                    routed.setdefault(message.dest_shard, []).append(message)
                else:
                    still_pending.append(message)
            for dest_shard in sorted(routed):
                routed[dest_shard].sort(key=_message_key)
            if detect_races:
                for dest_shard in sorted(routed):
                    inbox = routed[dest_shard]
                    for earlier, later in zip(inbox, inbox[1:]):
                        if _message_key(earlier) >= _message_key(later):
                            raise LookaheadViolation(
                                f"window {windows}: inbox for shard "
                                f"{dest_shard} is not strictly increasing "
                                f"under (deliver_at, origin_shard, "
                                f"origin_seq): {_message_key(earlier)!r} "
                                f"followed by {_message_key(later)!r}",
                                window=windows, floor=floor,
                                lookahead=lookahead, offending=later)
            peeks, outbox = engine.advance(bound, routed)
            if detect_races:
                for message in outbox:
                    if message.deliver_at < floor + lookahead:
                        raise LookaheadViolation(
                            f"window {windows} [{floor!r}, {bound!r}): shard "
                            f"{message.origin_shard} sent "
                            f"{message.kind!r} #{message.origin_seq} to "
                            f"shard {message.dest_shard} with deliver_at="
                            f"{message.deliver_at!r} < floor + lookahead = "
                            f"{floor + lookahead!r}",
                            window=windows, floor=floor,
                            lookahead=lookahead, offending=message)
                for shard_id in sorted(peeks):
                    if peeks[shard_id] < bound:
                        raise LookaheadViolation(
                            f"window {windows}: shard {shard_id} reports "
                            f"next event at {peeks[shard_id]!r}, inside the "
                            f"granted window bound {bound!r} — its clock "
                            f"regressed",
                            window=windows, floor=floor, lookahead=lookahead)
            messages += len(outbox)
            pending = still_pending + list(outbox)
            windows += 1
        shard_results = engine.finish(until)
        run_seconds = time.perf_counter() - run_started
    finally:
        engine.close()
    return ParallelRunReport(shard_results=shard_results, windows=windows,
                             messages=messages, workers=worker_count,
                             requested_workers=workers,
                             build_seconds=build_seconds,
                             run_seconds=run_seconds)
