"""Exception types used by the discrete-event simulation kernel.

The kernel keeps its error handling deliberately small: anything that is a
programming error (scheduling in the past, running a finished simulation)
raises :class:`SimulationError`, while control-flow signals delivered *into*
simulated processes (crash of the hosting server, explicit kill) use
:class:`Interrupt` so that process code can distinguish them from ordinary
exceptions.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """Raised when the simulation kernel is used incorrectly.

    Typical causes are scheduling an event at a time earlier than the current
    simulation clock, or re-triggering an event that already fired.
    """


class SchedulingError(SimulationError):
    """Raised when an event is scheduled at an invalid simulation time."""


class EventAlreadyTriggered(SimulationError):
    """Raised when an event is succeeded or failed more than once."""


class Interrupt(Exception):
    """Thrown inside a simulated process when it is interrupted.

    The ``cause`` attribute carries an arbitrary object describing why the
    interruption happened (for instance a :class:`~repro.sim.process.Process`
    being killed because the server hosting it crashed).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Interrupt(cause={self.cause!r})"


class ProcessKilled(Exception):
    """Internal signal used to terminate a process generator permanently."""
