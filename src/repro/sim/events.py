"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is the unit of coordination between simulated processes and
the :class:`~repro.sim.engine.Simulator`.  Processes *yield* events; the
simulator resumes the process when the event fires.  Events fire either
because simulated time reached them (:class:`Timeout`), because another
process triggered them explicitly (:meth:`Event.succeed` /
:meth:`Event.fail`), or because a composite condition was satisfied
(:class:`AllOf`, :class:`AnyOf`).

The design follows the classic SimPy shape but is intentionally minimal: it
only contains what the replicated-database simulator needs, and it is fully
deterministic — ties in simulated time are broken by a monotonically
increasing sequence number assigned by the simulator.

Hot-path notes: millions of events are created per benchmark run, so every
event class is ``__slots__``-ed and the callback list is allocated lazily
(most events — timeouts of service times, deliveries — never get more than
one callback, and many get none before processing).  ``callbacks`` is
``None`` both before the first :meth:`add_callback` and after processing;
the separate ``_processed`` flag keeps the two states distinguishable.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Simulator


#: Sentinel used for "not yet triggered" values.
_PENDING = object()

#: Added to the sequence number of non-priority queue entries; priority
#: events (interrupts) keep their raw sequence number, so at equal times
#: they sort first while FIFO order holds within each class.  The triggering
#: fast paths below push heap entries directly (equivalent to
#: ``Simulator._schedule`` with ``delay=0, priority=False``) to spare a
#: method call on the two hottest operations of the kernel.
NORMAL_BIAS = 1 << 62


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  It becomes *triggered* when either
    :meth:`succeed` or :meth:`fail` is called, at which point it is placed on
    the simulator's queue and will be *processed* (its callbacks run) at the
    current simulation time.  Each callback receives the event itself.
    """

    __slots__ = ("sim", "_cb", "callbacks", "_value", "_ok", "_defused",
                 "_processed")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: First attached callback (almost every event gets at most one, so
        #: the common case allocates no list at all).
        self._cb: Optional[Callable[["Event"], None]] = None
        #: Overflow callbacks beyond the first, in attach order.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False
        self._processed = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def defused(self) -> bool:
        """True if a failure of this event has been handled somewhere.

        The simulator raises failures of events that nobody handled (they are
        almost always programming errors); handlers mark the event as defused
        to signal that the failure was consumed.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not raise it."""
        self._defused = True

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed.

        Only meaningful once :attr:`triggered` is True.
        """
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event carries (or the exception if it failed)."""
        if self._value is _PENDING:
            raise AttributeError("value of a pending event is not available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._sequence += 1
        heappush(sim._queue, (sim._now, NORMAL_BIAS + sim._sequence, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception will be re-raised inside any process waiting on the
        event.
        """
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._sequence += 1
        heappush(sim._queue, (sim._now, NORMAL_BIAS + sim._sequence, self))
        return self

    # -- callback management ----------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately; this keeps waiting-on-old-events race free.
        """
        if self._processed:
            callback(self)
        elif self._cb is None and self.callbacks is None:
            self._cb = callback
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        cb = self._cb
        callbacks = self.callbacks
        self._cb = None
        self.callbacks = None
        self._processed = True
        if cb is not None:
            cb(self)
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ and schedule — timeouts are the single most
        # frequently created object of the whole simulator (every service
        # time is one).
        self.sim = sim
        self._cb = None
        self.callbacks = None
        self._value = value
        self._ok = True
        self._defused = False
        self._processed = False
        self.delay = delay
        sim._sequence += 1
        heappush(sim._queue,
                 (sim._now + delay, NORMAL_BIAS + sim._sequence, self))


class Deferred(Event):
    """A pre-succeeded event that invokes one bound callback when processed.

    This is what :meth:`~repro.sim.engine.Simulator.call_after` schedules: it
    carries the target callable (and its arguments) directly instead of
    allocating a wrapper lambda per call.  The stored callable occupies the
    first-callback slot, so it runs before any callbacks attached
    afterwards — exactly like the wrapper callback used to — and event
    processing stays uniform across all event classes (which lets the run
    loop inline callback dispatch).
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, sim: "Simulator", delay: float,
                 fn: Callable[..., None], args: tuple = ()) -> None:
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay!r}")
        self.sim = sim
        self._cb = self._invoke
        self.callbacks = None
        self._value = None
        self._ok = True
        self._defused = False
        self._processed = False
        self._fn = fn
        self._args = args
        sim._sequence += 1
        heappush(sim._queue,
                 (sim._now + delay, NORMAL_BIAS + sim._sequence, self))

    def _invoke(self, _event: "Event") -> None:
        self._fn(*self._args)


class ConditionValue:
    """Mapping-like container with the values of the events of a condition."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = [event for event in events if event._processed]

    def __iter__(self):
        return iter(self.events)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def values(self) -> List[Any]:
        """Return the payload values of all triggered events, in order."""
        return [event.value for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConditionValue({self.events!r})"


class Condition(Event):
    """Composite event that fires when ``evaluate`` says it should.

    ``evaluate(events, triggered_count)`` must return True once the condition
    holds.  The two concrete conditions used by the library are
    :class:`AllOf` and :class:`AnyOf`.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, sim: "Simulator", evaluate, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("all events of a condition must share a simulator")

        if not self._events:
            self.succeed(ConditionValue(self._events))
            return

        check = self._check
        for event in self._events:
            event.add_callback(check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._events))


def _all_fired(events: List[Event], count: int) -> bool:
    return count >= len(events)


def _any_fired(events: List[Event], count: int) -> bool:
    return count >= 1


class AllOf(Condition):
    """Fires once every constituent event has fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, _all_fired, events)


class AnyOf(Condition):
    """Fires as soon as any constituent event has fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, _any_fired, events)
