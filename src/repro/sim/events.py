"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is the unit of coordination between simulated processes and
the :class:`~repro.sim.engine.Simulator`.  Processes *yield* events; the
simulator resumes the process when the event fires.  Events fire either
because simulated time reached them (:class:`Timeout`), because another
process triggered them explicitly (:meth:`Event.succeed` /
:meth:`Event.fail`), or because a composite condition was satisfied
(:class:`AllOf`, :class:`AnyOf`).

The design follows the classic SimPy shape but is intentionally minimal: it
only contains what the replicated-database simulator needs, and it is fully
deterministic — ties in simulated time are broken by a monotonically
increasing sequence number assigned by the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Simulator


#: Sentinel used for "not yet triggered" values.
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  It becomes *triggered* when either
    :meth:`succeed` or :meth:`fail` is called, at which point it is placed on
    the simulator's queue and will be *processed* (its callbacks run) at the
    current simulation time.  Each callback receives the event itself.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def defused(self) -> bool:
        """True if a failure of this event has been handled somewhere.

        The simulator raises failures of events that nobody handled (they are
        almost always programming errors); handlers mark the event as defused
        to signal that the failure was consumed.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the simulator does not raise it."""
        self._defused = True

    @property
    def ok(self) -> bool:
        """True if the event succeeded, False if it failed.

        Only meaningful once :attr:`triggered` is True.
        """
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event carries (or the exception if it failed)."""
        if self._value is _PENDING:
            raise AttributeError("value of a pending event is not available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception will be re-raised inside any process waiting on the
        event.
        """
        if self.triggered:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    # -- callback management ----------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately; this keeps waiting-on-old-events race free.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)


class ConditionValue:
    """Mapping-like container with the values of the events of a condition."""

    def __init__(self, events: Iterable[Event]) -> None:
        self.events = [event for event in events if event.processed]

    def __iter__(self):
        return iter(self.events)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def values(self) -> List[Any]:
        """Return the payload values of all triggered events, in order."""
        return [event.value for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConditionValue({self.events!r})"


class Condition(Event):
    """Composite event that fires when ``evaluate`` says it should.

    ``evaluate(events, triggered_count)`` must return True once the condition
    holds.  The two concrete conditions used by the library are
    :class:`AllOf` and :class:`AnyOf`.
    """

    def __init__(self, sim: "Simulator", evaluate, events: Iterable[Event]) -> None:
        super().__init__(sim)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.sim is not sim:
                raise ValueError("all events of a condition must share a simulator")

        if not self._events:
            self.succeed(ConditionValue(self._events))
            return

        for event in self._events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event.ok:
            event.defuse()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._events))


class AllOf(Condition):
    """Fires once every constituent event has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Fires as soon as any constituent event has fired."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, lambda events, count: count >= 1, events)
