"""Queued resources and inter-process channels for the simulation kernel.

Three primitives cover everything the replicated-database model needs:

* :class:`Resource` — a server (or pool of identical servers) with a FIFO
  request queue.  CPUs and disks of a database server are resources.
* :class:`Store` — an unbounded FIFO buffer of items with blocking ``get``.
  Network endpoints and intra-server mailboxes are stores.
* :class:`Gate` — a level-triggered condition processes can wait on
  (e.g. "the commit record of transaction *t* has reached stable storage").
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

from heapq import heappush

from .errors import SimulationError
from .events import _PENDING, NORMAL_BIAS, Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Simulator


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "granted_at")

    def __init__(self, sim: "Simulator", resource: "Resource") -> None:
        # Inlined Event.__init__ — one request per resource use makes this a
        # hot allocation under saturation.
        self.sim = sim
        self._cb = None
        self.callbacks = None
        self._value = _PENDING
        self._ok = None
        self._defused = False
        self._processed = False
        self.resource = resource
        #: Simulated time the slot was granted (None while queued).
        self.granted_at: Optional[float] = None


class Resource:
    """A FIFO resource with a fixed number of identical slots.

    Usage inside a process::

        request = cpu.request()
        yield request
        try:
            yield sim.timeout(service_time)
        finally:
            cpu.release(request)

    The :meth:`use` helper wraps exactly that pattern.
    """

    __slots__ = ("sim", "capacity", "name", "_users", "_waiting",
                 "granted_count", "busy_time")

    def __init__(self, sim: "Simulator", capacity: int = 1,
                 name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._users: List[Request] = []
        self._waiting: Deque[Request] = deque()
        #: Total number of requests ever granted (for utilisation stats).
        self.granted_count = 0
        #: Accumulated (simulated) busy time across all slots.
        self.busy_time = 0.0

    # -- introspection -------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    # -- request / release -----------------------------------------------------
    def request(self) -> Request:
        """Ask for a slot; the returned event fires when the slot is granted."""
        request = Request(self.sim, self)
        if len(self._users) < self.capacity:
            # Inlined _grant + succeed: the uncontended grant is the hottest
            # resource operation of the whole model (a fresh request cannot
            # have been triggered, so the succeed guard is skipped).
            self._users.append(request)
            sim = self.sim
            request.granted_at = sim._now
            self.granted_count += 1
            request._ok = True
            request._value = request
            sim._sequence += 1
            heappush(sim._queue,
                     (sim._now, NORMAL_BIAS + sim._sequence, request))
        else:
            self._waiting.append(request)
        return request

    def release(self, request: Request) -> None:
        """Give back a previously granted slot."""
        users = self._users
        try:
            users.remove(request)
        except ValueError:
            if request in self._waiting:
                self._waiting.remove(request)
                return
            raise SimulationError(
                f"release of a request not held on {self.name!r}") from None
        now = self.sim._now
        granted_at = request.granted_at
        self.busy_time += now - (now if granted_at is None else granted_at)
        if self._waiting and len(users) < self.capacity:
            self._grant(self._waiting.popleft())

    def use(self, duration: float):
        """Generator helper: hold one slot for ``duration`` milliseconds.

        Yield from it inside a process::

            yield from disk.use(8.0)

        The body repeats :meth:`request` inline (same fast path) because
        ``use`` accounts for nearly every resource interaction of the model.
        """
        sim = self.sim
        request = Request(sim, self)
        if len(self._users) < self.capacity:
            self._users.append(request)
            request.granted_at = sim._now
            self.granted_count += 1
            request._ok = True
            request._value = request
            sim._sequence += 1
            heappush(sim._queue,
                     (sim._now, NORMAL_BIAS + sim._sequence, request))
        else:
            self._waiting.append(request)
        yield request
        try:
            yield Timeout(sim, duration)
        finally:
            self.release(request)

    def cancel_all(self) -> None:
        """Drop every waiting request and forget current users.

        Used when the server owning the resource crashes: in-flight disk and
        CPU operations simply vanish with the server.
        """
        self._waiting.clear()
        self._users.clear()

    def _grant(self, request: Request) -> None:
        self._users.append(request)
        request.granted_at = self.sim._now
        self.granted_count += 1
        request.succeed(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<Resource {self.name!r} {self.in_use}/{self.capacity} busy,"
                f" {self.queue_length} queued>")


class Store:
    """Unbounded FIFO channel of items with blocking ``get``."""

    __slots__ = ("sim", "name", "_items", "_getters", "put_count")

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        #: Count of items ever put, for statistics.
        self.put_count = 0

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the oldest waiting getter, if any."""
        self.put_count += 1
        if self._getters:
            getter = self._getters.popleft()
            # Inlined getter.succeed(item): a queued getter is pending by
            # construction.
            getter._ok = True
            getter._value = item
            sim = self.sim
            sim._sequence += 1
            heappush(sim._queue,
                     (sim._now, NORMAL_BIAS + sim._sequence, getter))
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim)
        if self._items:
            # Inlined event.succeed(...): the event was created pending.
            event._ok = True
            event._value = self._items.popleft()
            sim = self.sim
            sim._sequence += 1
            heappush(sim._queue,
                     (sim._now, NORMAL_BIAS + sim._sequence, event))
        else:
            self._getters.append(event)
        return event

    def clear(self) -> None:
        """Drop all buffered items and abandon all waiting getters."""
        self._items.clear()
        self._getters.clear()

    @property
    def pending_items(self) -> int:
        """Number of items buffered and not yet taken."""
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Store {self.name!r} items={len(self._items)}>"


class Gate:
    """A level-triggered condition.

    Processes wait on the gate with ``yield gate.wait()``; once
    :meth:`open` is called, all current and future waiters pass immediately
    until :meth:`close` resets the gate.
    """

    __slots__ = ("sim", "name", "_opened", "_waiters")

    def __init__(self, sim: "Simulator", opened: bool = False,
                 name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name or "gate"
        self._opened = opened
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        """Whether waiters currently pass without blocking."""
        return self._opened

    def wait(self) -> Event:
        """Return an event that fires when the gate is (or becomes) open."""
        event = Event(self.sim)
        if self._opened:
            # Inlined event.succeed(None): the event was created pending.
            event._ok = True
            event._value = None
            sim = self.sim
            sim._sequence += 1
            heappush(sim._queue,
                     (sim._now, NORMAL_BIAS + sim._sequence, event))
        else:
            self._waiters.append(event)
        return event

    def open(self, value: Any = None) -> None:
        """Open the gate and release every waiter."""
        self._opened = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed(value)

    def close(self) -> None:
        """Close the gate; subsequent waiters block until the next open()."""
        self._opened = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "open" if self._opened else "closed"
        return f"<Gate {self.name!r} {state} waiters={len(self._waiters)}>"
