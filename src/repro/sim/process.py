"""Generator-based simulated processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Each yield suspends the process until the event fires; the event's
value is sent back into the generator (or the event's exception is thrown into
it).  A :class:`Process` is itself an event, so processes can wait for the
completion of other processes.

Processes can be *interrupted* (an :class:`~repro.sim.errors.Interrupt` is
thrown at their current yield point) or *killed* outright.  Killing is how the
simulator models a server crash: all protocol and transaction processes of the
crashed server stop immediately and never resume, mirroring the
crash-no-recovery / crash-recovery process behaviour described in Sect. 2.3 of
the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt, SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .engine import Simulator


class Process(Event):
    """Wraps a generator and drives it through the simulator.

    The process completes (as an event) with the generator's return value, or
    fails with the exception that escaped the generator.
    """

    __slots__ = ("name", "_generator", "_target", "_killed", "_send",
                 "_throw", "_on_fire")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}")
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None
        self._killed = False
        # Hot-path handles bound once per process instead of once per yield:
        # the generator's send/throw, and the resume callback (attribute
        # access on a method creates a fresh bound-method object every time —
        # at one callback per yield that is a measurable allocation).
        self._send = generator.send
        self._throw = generator.throw
        self._on_fire = self._resume

        # Bootstrap: resume the generator for the first time "immediately".
        bootstrap = Event(sim)
        bootstrap._cb = self._on_fire
        bootstrap.succeed()

    # -- state -------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for (None if running)."""
        return self._target

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a no-op so that callers do not need
        to guard against races between completion and interruption.
        """
        if not self.is_alive or self._killed:
            return
        interrupt_event = Event(self.sim)
        interrupt_event.add_callback(self._deliver_interrupt)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        self.sim._schedule(interrupt_event, priority=True)

    def kill(self, cause: object = None) -> None:
        """Terminate the process immediately and permanently.

        Unlike :meth:`interrupt`, the generator gets no chance to handle the
        termination: it is closed and the process event fails with
        :class:`Interrupt`.  Used to model server crashes.
        """
        if not self.is_alive or self._killed:
            return
        self._killed = True
        self._detach_from_target()
        self._generator.close()
        if not self.triggered:
            self._ok = False
            self._value = Interrupt(cause)
            self._defused = True
            self.sim._schedule(self)

    # -- internal ----------------------------------------------------------
    def _detach_from_target(self) -> None:
        target = self._target
        self._target = None
        if target is None:
            return
        if target._cb is self._on_fire:
            target._cb = None
        elif target.callbacks is not None:
            try:
                target.callbacks.remove(self._on_fire)
            except ValueError:
                pass

    def _deliver_interrupt(self, event: Event) -> None:
        if not self.is_alive or self._killed:
            return
        self._detach_from_target()
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator by one yield using ``event``'s outcome."""
        if self._killed:
            return
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                next_event = self._send(event._value)
            else:
                event._defused = True
                next_event = self._throw(event._value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self.triggered:
                self._ok = False
                self._value = exc
                sim._schedule(self)
            return
        finally:
            sim._active_process = None

        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_event!r}, expected an Event")
        if next_event.sim is not sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator")
        self._target = next_event
        # Inlined next_event.add_callback(self._on_fire):
        if next_event._processed:
            self._on_fire(next_event)
        elif next_event._cb is None and next_event.callbacks is None:
            next_event._cb = self._on_fire
        elif next_event.callbacks is None:
            next_event.callbacks = [self._on_fire]
        else:
            next_event.callbacks.append(self._on_fire)

    # Kept as an alias: subclass/test code historically drove the process
    # through ``_step``.
    _step = _resume

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"
