"""The discrete-event simulation engine.

The :class:`Simulator` owns the simulated clock and the event queue and drives
all simulated processes.  It is deliberately deterministic: two runs with the
same seed and the same program produce the same event ordering, which is what
makes the failure-injection experiments of the paper reproducible.

Time is a float.  Throughout the library the unit is **milliseconds**, because
the paper's Table 4 expresses every service time in milliseconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .errors import SchedulingError, SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .rng import RandomStreams


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named random streams (see
        :class:`~repro.sim.rng.RandomStreams`).  Two simulators built with the
        same seed and running the same model produce identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._finished = False
        self.random = RandomStreams(seed)
        #: Arbitrary per-run annotations experiments may attach (e.g. config).
        self.metadata: dict = {}

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event creation -------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` milliseconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create an event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create an event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    def spawn(self, generator: Generator[Event, Any, Any],
              name: Optional[str] = None) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator, name=name)

    # Alias kept for readability at call sites that mirror SimPy code.
    process = spawn

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now is {self._now})")
        return self.call_after(time - self._now, callback)

    def call_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` milliseconds of simulated time."""
        event = self.timeout(delay)
        event.add_callback(lambda _event: callback())
        return event

    # -- scheduling internals -------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: bool = False) -> None:
        """Place a triggered event on the queue ``delay`` from now.

        ``priority`` events (interrupts) sort before ordinary events that were
        scheduled for the same instant, which makes crash delivery immediate.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        self._sequence += 1
        rank = 0 if priority else 1
        heapq.heappush(self._queue,
                       (self._now + delay, rank, self._sequence, event))

    # -- execution --------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise SimulationError("step() called on an empty event queue")
        when, _rank, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        event._run_callbacks()
        if not event.ok and not event.defused:
            # A failure nobody handled is a bug in the model; surface it.
            raise event.value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue is empty or simulated time reaches ``until``.

        Returns the simulation time at which the run stopped.
        """
        if until is not None and until < self._now:
            raise SchedulingError(
                f"cannot run until {until}: clock is already at {self._now}")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self._now = until
                return self._now
            self.step()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_complete(self, process: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes and return its value.

        ``limit`` bounds the simulated time; exceeding it raises
        :class:`SimulationError` (useful to catch livelocks in protocol code).
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: {process!r} never finished and no events remain")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded while waiting for {process!r}")
            self.step()
        if not process.ok:
            raise process.value
        return process.value

    def peek(self) -> float:
        """Return the time of the next event, or ``float('inf')`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    @property
    def queued_events(self) -> int:
        """Number of events currently waiting in the queue."""
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Simulator t={self._now:.3f}ms queue={len(self._queue)}>"
