"""The discrete-event simulation engine.

The :class:`Simulator` owns the simulated clock and the event queue and drives
all simulated processes.  It is deliberately deterministic: two runs with the
same seed and the same program produce the same event ordering, which is what
makes the failure-injection experiments of the paper reproducible.

Time is a float.  Throughout the library the unit is **milliseconds**, because
the paper's Table 4 expresses every service time in milliseconds.

Hot-path notes: queue entries are ``(time, key, event)`` 3-tuples where
``key`` folds the priority rank and the tie-breaking sequence number into one
integer — priority events (interrupts) keep their raw sequence number while
ordinary events carry :data:`_NORMAL_BIAS` on top, so at equal times every
priority event sorts before every ordinary one and FIFO order holds within
each class.  This is ordering-equivalent to the historical
``(time, rank, sequence, event)`` 4-tuples (the sequence counter is consumed
identically), but allocates one word less per event and compares one element
less per heap sift.  :meth:`run` inlines the pop loop of :meth:`step` so the
per-event cost is a heappop, a clock store and the callback dispatch.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from .errors import SchedulingError, SimulationError
from .events import NORMAL_BIAS, AllOf, AnyOf, Deferred, Event, Timeout
from .process import Process
from .rng import RandomStreams

#: Alias of :data:`repro.sim.events.NORMAL_BIAS` (the triggering fast paths
#: in :mod:`repro.sim.events` push heap entries directly, so the constant
#: lives there).
_NORMAL_BIAS = NORMAL_BIAS

_INFINITY = float("inf")


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the named random streams (see
        :class:`~repro.sim.rng.RandomStreams`).  Two simulators built with the
        same seed and running the same model produce identical traces.
    """

    def __init__(self, seed: int = 0) -> None:
        self._now: float = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._active_process: Optional[Process] = None
        self._finished = False
        self.random = RandomStreams(seed)
        #: Arbitrary per-run annotations experiments may attach (e.g. config).
        self.metadata: dict = {}
        #: Optional event-trace sink (see :meth:`enable_trace`).
        self._trace: Optional[list] = None
        #: Optional span tracer (see :class:`repro.obs.tracer.Observability`).
        #: ``None`` when observability is off; instrumentation sites guard on
        #: that, so the disabled cost is one attribute load and a None check.
        self.obs: Optional[Any] = None

    # -- clock --------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event creation -------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` milliseconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create an event that fires once all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create an event that fires once any of ``events`` has fired."""
        return AnyOf(self, events)

    def spawn(self, generator: Generator[Event, Any, Any],
              name: Optional[str] = None) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator, name=name)

    # Alias kept for readability at call sites that mirror SimPy code.
    process = spawn

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} (now is {self._now})")
        return Deferred(self, time - self._now, callback)

    def call_after(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> Event:
        """Run ``callback(*args)`` after ``delay`` milliseconds of simulated time.

        The callback (with its pre-bound ``args``) is stored directly on the
        scheduled event — no wrapper lambda, no callback-list allocation.
        """
        return Deferred(self, delay, callback, args)

    # -- scheduling internals -------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: bool = False) -> None:
        """Place a triggered event on the queue ``delay`` from now.

        ``priority`` events (interrupts) sort before ordinary events that were
        scheduled for the same instant, which makes crash delivery immediate.
        """
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        self._sequence += 1
        heapq.heappush(
            self._queue,
            (self._now + delay,
             self._sequence if priority else _NORMAL_BIAS + self._sequence,
             event))

    # -- execution --------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event in the queue."""
        if not self._queue:
            raise SimulationError("step() called on an empty event queue")
        when, _key, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        if self._trace is not None:
            self._trace.append((when, _key, type(event).__name__))
        self._now = when
        event._run_callbacks()
        if not event._ok and not event._defused:
            # A failure nobody handled is a bug in the model; surface it.
            raise event._value

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue is empty or simulated time reaches ``until``.

        Returns the simulation time at which the run stopped.
        """
        if until is not None and until < self._now:
            raise SchedulingError(
                f"cannot run until {until}: clock is already at {self._now}")
        if self._trace is not None:
            # Traced runs go through step() so every pop is recorded.
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    return self._now
                self.step()
            if until is not None:
                self._now = max(self._now, until)
            return self._now
        queue = self._queue
        pop = heapq.heappop
        limit = _INFINITY if until is None else until
        while queue:
            if queue[0][0] > limit:
                self._now = until
                return until
            when, _key, event = pop(queue)
            self._now = when
            # Inlined event._run_callbacks() — event processing is uniform
            # across every event class, and this loop runs once per event.
            cb = event._cb
            callbacks = event.callbacks
            event._cb = None
            event.callbacks = None
            event._processed = True
            if cb is not None:
                cb(event)
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                # A failure nobody handled is a bug in the model; surface it.
                raise event._value
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_before(self, bound: float) -> float:
        """Run every queued event with time strictly below ``bound``.

        The window primitive of the conservative parallel mode
        (:mod:`repro.sim.parallel`): a shard advances through the half-open
        interval ``[now, bound)`` and stops with the clock on its last
        processed event, never on ``bound`` itself — so a message arriving
        exactly at the window bound can still be scheduled with
        :meth:`call_at`.  Returns the simulation time reached.
        """
        if bound < self._now:
            raise SchedulingError(
                f"cannot run before {bound}: clock is already at {self._now}")
        if self._trace is not None:
            # Traced runs go through step() so every pop is recorded.
            while self._queue and self._queue[0][0] < bound:
                self.step()
            return self._now
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] < bound:
            when, _key, event = pop(queue)
            self._now = when
            # Inlined event._run_callbacks(), exactly as in run().
            cb = event._cb
            callbacks = event.callbacks
            event._cb = None
            event.callbacks = None
            event._processed = True
            if cb is not None:
                cb(event)
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                # A failure nobody handled is a bug in the model; surface it.
                raise event._value
        return self._now

    def run_until_complete(self, process: Process,
                           limit: Optional[float] = None) -> Any:
        """Run until ``process`` finishes and return its value.

        ``limit`` bounds the simulated time; exceeding it raises
        :class:`SimulationError` (useful to catch livelocks in protocol code).
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: {process!r} never finished and no events remain")
            if limit is not None and self._queue[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded while waiting for {process!r}")
            self.step()
        if not process.ok:
            raise process.value
        return process.value

    def peek(self) -> float:
        """Return the time of the next event, or ``float('inf')`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    @property
    def queued_events(self) -> int:
        """Number of events currently waiting in the queue."""
        return len(self._queue)

    @property
    def scheduled_events(self) -> int:
        """Total events ever scheduled — the benchmark's events/sec numerator."""
        return self._sequence

    # -- tracing ------------------------------------------------------------
    def enable_trace(self) -> list:
        """Record every processed event as ``(time, key, type name)``.

        Returns the (live) list the trace is appended to.  Used by the
        golden-trace determinism tests; tracing routes :meth:`run` through
        :meth:`step`, so it costs real time and is off by default.
        """
        if self._trace is None:
            self._trace = []
        return self._trace

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Simulator t={self._now:.3f}ms queue={len(self._queue)}>"
