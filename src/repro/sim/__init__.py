"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the whole replicated-database
model runs: a simulated clock, generator-based processes, queued resources
(CPUs, disks), FIFO stores (network endpoints, mailboxes) and measurement
collection.  Time is measured in **milliseconds** everywhere.

Quick example::

    from repro.sim import Simulator

    sim = Simulator(seed=1)

    def worker(sim, cpu):
        yield from cpu.use(5.0)      # hold the CPU for 5 ms
        return sim.now

    from repro.sim import Resource
    cpu = Resource(sim, capacity=1, name="cpu")
    done = sim.spawn(worker(sim, cpu))
    sim.run()
    assert done.value == 5.0
"""

from .engine import Simulator
from .errors import (EventAlreadyTriggered, Interrupt, SchedulingError,
                     SimulationError)
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .monitor import Counter, Monitor, Tally
from .process import Process
from .resources import Gate, Request, Resource, Store
from .rng import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "Request",
    "Store",
    "Gate",
    "RandomStreams",
    "Monitor",
    "Tally",
    "Counter",
    "SimulationError",
    "SchedulingError",
    "EventAlreadyTriggered",
    "Interrupt",
]
