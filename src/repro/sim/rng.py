"""Named, reproducible random-number streams.

Every stochastic decision in the simulator (transaction lengths, operation
mix, service times, client think times, crash instants) draws from a *named*
stream.  Each stream is an independent ``random.Random`` seeded from the
master seed and the stream name, so adding a new source of randomness to one
part of the model does not perturb the draws made elsewhere.  This is the
standard "common random numbers" discipline for simulation studies and it is
what makes the Fig. 9 curves comparable across replication techniques: all
three techniques see exactly the same transaction workload.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from the master seed and stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A registry of independent named random streams.

    Stream seeds depend only on the master seed and the stream *name* —
    never on creation order — so hot-path callers are encouraged to
    *intern* their stream handle once (``stream = sim.random.stream(name)``
    at construction time) and draw from it directly, instead of re-resolving
    an f-string name through this registry on every draw.
    """

    __slots__ = ("master_seed", "_streams")

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = self._streams[name] = random.Random(
                _derive_seed(self.master_seed, name))
        return stream

    # -- convenience draws ----------------------------------------------------
    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform float in ``[low, high]`` from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw a uniform integer in ``[low, high]`` from stream ``name``."""
        return self.stream(name).randint(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential variate with the given ``rate`` (1/mean)."""
        return self.stream(name).expovariate(rate)

    def choice(self, name: str, population: Sequence[T]) -> T:
        """Pick one element of ``population`` uniformly at random."""
        return self.stream(name).choice(population)

    def sample(self, name: str, population: Sequence[T], k: int) -> list:
        """Pick ``k`` distinct elements of ``population``."""
        return self.stream(name).sample(population, k)

    def shuffle(self, name: str, items: list) -> list:
        """Shuffle ``items`` in place and return it."""
        self.stream(name).shuffle(items)
        return items

    def bernoulli(self, name: str, probability: float) -> bool:
        """Return True with the given ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability!r}")
        return self.stream(name).random() < probability

    def stream_names(self) -> Iterable[str]:
        """Names of all streams that have been used so far."""
        return tuple(self._streams)
