"""Common machinery of all replica servers.

A :class:`ReplicaServer` is the *replicated database component* of one server
(Fig. 1 of the paper): it owns the local database component, talks to the
group-communication component (for the techniques that use one) and to the
clients.  Subclasses implement the individual replication techniques; this
base class provides what they all share — submission plumbing, client
responses, background flushers, crash bookkeeping and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.layers import implements, uses
from ..db.engine import LocalDatabase
from ..db.operations import TransactionProgram
from ..db.transaction import Transaction
from ..network.dispatch import Dispatcher
from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.resources import Gate
from ..workload.params import SimulationParameters
from .results import TransactionResult


@dataclass
class PendingSubmission:
    """Book-keeping for a transaction whose client is waiting for an answer."""

    transaction: Transaction
    response_event: Event
    submitted_at: float
    responded: bool = False


@implements("replication")
@uses("links")
class ReplicaServer:
    """Base class of every replication technique's per-server logic."""

    #: Human-readable technique name, overridden by subclasses.
    technique_name = "base"

    def __init__(self, sim: Simulator, node: Node, database: LocalDatabase,
                 dispatcher: Dispatcher, params: SimulationParameters) -> None:
        self.sim = sim
        self.node = node
        self.db = database
        self.dispatcher = dispatcher
        self.params = params
        #: Gate the processing stage waits on before handling each delivered
        #: transaction.  Failure-injection scenarios close it to freeze a
        #: server between *delivery* and *processing* — the window the paper's
        #: Fig. 5 argument is about.
        self.processing_gate = Gate(sim, opened=True,
                                    name=f"{node.name}.processing")
        self._pending: Dict[str, PendingSubmission] = {}
        #: Every result this server has sent back to a client.
        self.results: List[TransactionResult] = []
        self._running = False
        node.add_listener(self._on_node_event)

    # ------------------------------------------------------------------ identity
    @property
    def name(self) -> str:
        """The server's name (same as its node's name)."""
        return self.node.name

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the server's processes (dispatcher, flushers, technique loops)."""
        if self._running:
            return
        self._running = True
        if not self.dispatcher.is_running:
            self.dispatcher.start()
        self.node.spawn(self._log_flusher(), name="wal.group_commit")
        self.db.buffer.start_write_behind(
            interval=self.params.write_behind_interval)
        self._start_technique()

    def _start_technique(self) -> None:
        """Hook: subclasses start their protocol-specific processes here."""

    def _log_flusher(self):
        """Background group-commit flusher for asynchronously logged records."""
        while True:
            yield self.sim.timeout(self.params.log_flush_interval)
            if self.db.wal.volatile_records():
                yield from self.db.wal.flush()

    def _on_node_event(self, node: Node, event: str) -> None:
        if event == "crash":
            self._running = False
            self._fail_pending("delegate-crash")

    def _fail_pending(self, reason: str) -> None:
        """Answer every waiting client with an abort when the server crashes."""
        obs = self.sim.obs
        for pending in list(self._pending.values()):
            if pending.responded:
                continue
            pending.responded = True
            result = TransactionResult(
                txn_id=pending.transaction.txn_id, committed=False,
                delegate=self.name, submitted_at=pending.submitted_at,
                responded_at=self.sim.now, abort_reason=reason,
                technique=self.technique_name)
            self.results.append(result)
            if obs is not None:
                obs.end_key(("txn", result.txn_id),
                            labels={"committed": False,
                                    "abort_reason": reason})
            if not pending.response_event.triggered:
                pending.response_event.succeed(result)
        self._pending.clear()

    # ------------------------------------------------------------------ submission
    def submit(self, program: TransactionProgram) -> Event:
        """Submit ``program`` to this server as its delegate.

        Returns an event that fires with the :class:`TransactionResult` when
        the technique decides to answer the client — *when* that happens is
        exactly what distinguishes the safety levels.
        """
        if not self._running:
            raise RuntimeError(
                f"server {self.name} is not running (crashed or not started)")
        response_event = Event(self.sim)
        transaction = self.db.begin(program, delegate=self.name)
        pending = PendingSubmission(transaction=transaction,
                                    response_event=response_event,
                                    submitted_at=self.sim.now)
        self._pending[transaction.txn_id] = pending
        obs = self.sim.obs
        if obs is not None:
            # The root of the transaction's span tree; children (reads, the
            # abcast order span, apply/log work) link to it by this key.  It
            # shares both endpoints with the PendingSubmission timestamps, so
            # its duration equals the client-visible response time exactly.
            obs.begin("txn", category="txn", track=f"server.{self.name}",
                      key=("txn", transaction.txn_id), root=True,
                      labels={"txn_id": transaction.txn_id,
                              "delegate": self.name,
                              "technique": self.technique_name})
        self.node.spawn(self._execute(pending), name=f"txn.{transaction.txn_id}")
        return response_event

    def _execute(self, pending: PendingSubmission):
        """Generator hook: subclasses implement the delegate-side execution."""
        raise NotImplementedError
        yield  # pragma: no cover

    # ------------------------------------------------------------------ responses
    def respond(self, txn_id: str, committed: bool,
                abort_reason: Optional[str] = None,
                logged_on_delegate: bool = False,
                delivered_to_group: bool = False,
                logged_on_all: bool = False,
                commit_order: Optional[int] = None) -> Optional[TransactionResult]:
        """Send the client response for ``txn_id`` (idempotent)."""
        pending = self._pending.get(txn_id)
        if pending is None or pending.responded:
            return None
        pending.responded = True
        result = TransactionResult(
            txn_id=txn_id, committed=committed, delegate=self.name,
            submitted_at=pending.submitted_at, responded_at=self.sim.now,
            abort_reason=abort_reason,
            logged_on_delegate=logged_on_delegate,
            delivered_to_group=delivered_to_group,
            logged_on_all=logged_on_all,
            technique=self.technique_name, commit_order=commit_order)
        pending.transaction.response_time = result.response_time
        self.results.append(result)
        del self._pending[txn_id]
        obs = self.sim.obs
        if obs is not None:
            obs.end_key(("txn", txn_id),
                        labels={"committed": committed,
                                "abort_reason": abort_reason or ""})
        if not pending.response_event.triggered:
            pending.response_event.succeed(result)
        return result

    def pending_transaction(self, txn_id: str) -> Optional[Transaction]:
        """The delegate-side transaction object for ``txn_id``, if pending."""
        pending = self._pending.get(txn_id)
        return pending.transaction if pending else None

    # ------------------------------------------------------------------ recovery
    def recover_after_crash(self):
        """Generator: bring the server back after its node recovered.

        The base implementation redoes the local write-ahead log and restarts
        the background processes; subclasses extend it with the recovery of
        their group-communication state (state transfer or message replay).
        Returns the number of transactions whose effects were recovered from
        the local stable storage.
        """
        redone = self.db.recover()
        self._running = False
        self.start()
        return redone
        yield  # pragma: no cover - subclasses turn this into a real generator

    # ------------------------------------------------------------------ statistics
    @property
    def committed_results(self) -> List[TransactionResult]:
        """Results for which this server answered 'committed'."""
        return [result for result in self.results if result.committed]

    @property
    def aborted_results(self) -> List[TransactionResult]:
        """Results for which this server answered 'aborted'."""
        return [result for result in self.results if not result.committed]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<{type(self).__name__} {self.name} "
                f"responded={len(self.results)}>")
