"""2-safe replication over end-to-end atomic broadcast (Sect. 4.3, Fig. 7).

The replication logic is the database state machine of Fig. 2 with one
difference: the underlying primitive is the *end-to-end* atomic broadcast of
Sect. 4.2.  The group-communication component logs every delivery on stable
storage and replays, after a crash, every message whose processing was not
acknowledged; the replica acknowledges (ack(m)) once the transaction is logged
and therefore guaranteed to commit.  Combined with testable transactions
(exactly-once commits), every non-red server eventually commits every
transaction exactly once — the technique is 2-safe: no committed transaction
can be lost, even if all servers crash.

This cannot be built on classical atomic broadcast (Sect. 3): the delivery of
a message guarantees nothing about its processing, and once it has been
delivered everywhere no component will ever present it again.
"""

from __future__ import annotations

from ..core.layers import implements
from .dbsm import DatabaseStateMachineReplica, SafetyMode


@implements("replication")
class TwoSafeReplica(DatabaseStateMachineReplica):
    """Database state machine replica on end-to-end atomic broadcast (2-safe)."""

    technique_name = SafetyMode.TWO_SAFE.value

    def __init__(self, sim, node, database, dispatcher, params, endpoint) -> None:
        super().__init__(sim, node, database, dispatcher, params, endpoint,
                         mode=SafetyMode.TWO_SAFE)
