"""Client-visible transaction outcomes.

A :class:`TransactionResult` is what a client receives when its transaction
terminates.  Besides the outcome it records the timestamps needed by the
experiments (response time is the Fig. 9 metric) and — crucially for the
safety analysis — *what was guaranteed at the moment the client was
notified*: whether the transaction was logged on the delegate, whether the
message carrying it was stable in the group, and so on.  The safety audit in
:mod:`repro.core` classifies results into the paper's safety levels from
exactly this information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.stats import percentile as _shared_percentile


@dataclass
class TransactionResult:
    """Outcome of one transaction as observed by the submitting client."""

    txn_id: str
    committed: bool
    delegate: str
    submitted_at: float
    responded_at: float
    abort_reason: Optional[str] = None
    #: True if the commit record had reached the delegate's stable storage
    #: when the client was notified (the "logged on one replica" axis of
    #: Table 1).
    logged_on_delegate: bool = False
    #: True if the atomic broadcast had made the transaction's message stable
    #: (guaranteed to be delivered on all available servers) when the client
    #: was notified (the "delivered on all replicas" axis of Table 1).
    delivered_to_group: bool = False
    #: True if the transaction was guaranteed logged on every available
    #: server when the client was notified (only the very-safe / strict
    #: 2-safe variants set this).
    logged_on_all: bool = False
    #: Name of the replication technique that produced the result.
    technique: str = ""
    commit_order: Optional[int] = None

    @property
    def response_time(self) -> float:
        """Client-observed response time in milliseconds."""
        return self.responded_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        outcome = "commit" if self.committed else f"abort({self.abort_reason})"
        return (f"<TransactionResult {self.txn_id} {outcome} "
                f"rt={self.response_time:.1f}ms>")


@dataclass
class RunStatistics:
    """Aggregated statistics of one simulation run of a technique."""

    technique: str
    offered_load_tps: float = 0.0
    measured_commits: int = 0
    measured_aborts: int = 0
    response_times: List[float] = field(default_factory=list)
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    simulated_duration_ms: float = 0.0

    def record(self, result: TransactionResult) -> None:
        """Fold one client-visible result into the statistics."""
        if result.committed:
            self.measured_commits += 1
            self.response_times.append(result.response_time)
        else:
            self.measured_aborts += 1
            reason = result.abort_reason or "unknown"
            self.abort_reasons[reason] = self.abort_reasons.get(reason, 0) + 1

    @property
    def mean_response_time(self) -> float:
        """Mean response time of committed transactions (ms)."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def abort_rate(self) -> float:
        """Fraction of terminated transactions that aborted."""
        total = self.measured_commits + self.measured_aborts
        return self.measured_aborts / total if total else 0.0

    @property
    def achieved_throughput_tps(self) -> float:
        """Committed transactions per second of simulated time."""
        if self.simulated_duration_ms <= 0:
            return 0.0
        return self.measured_commits / (self.simulated_duration_ms / 1000.0)

    def percentile(self, fraction: float) -> float:
        """Response-time percentile (linear interpolation).

        ``fraction`` must lie in ``[0, 1]``; an empty sample yields 0.0.
        """
        return _shared_percentile(self.response_times, fraction)
