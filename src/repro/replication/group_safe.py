"""Group-safe replication (Fig. 8 of the paper).

The client is answered as soon as the transaction has been delivered by the
atomic broadcast on the delegate and the commit/abort decision is known.  At
that moment the message carrying the transaction is guaranteed to be delivered
on all available servers (the group holds it), but it may not be logged on any
of them: durability is entrusted to the *group*, not to stable storage.  All
disk writes therefore happen asynchronously, outside the transaction boundary,
which is where the technique's performance advantage comes from (Sect. 6).
"""

from __future__ import annotations

from ..core.layers import implements
from .dbsm import DatabaseStateMachineReplica, SafetyMode


@implements("replication")
class GroupSafeReplica(DatabaseStateMachineReplica):
    """Database state machine replica answering at delivery time (group-safe)."""

    technique_name = SafetyMode.GROUP_SAFE.value

    def __init__(self, sim, node, database, dispatcher, params, endpoint) -> None:
        super().__init__(sim, node, database, dispatcher, params, endpoint,
                         mode=SafetyMode.GROUP_SAFE)
