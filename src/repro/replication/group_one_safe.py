"""Group-1-safe replication (Fig. 2 of the paper).

The client is answered once the transaction has been delivered by the atomic
broadcast *and* the delegate has applied its writes and flushed the commit
record to its own stable storage.  The guarantee is therefore the union of
group-safety (the message is held by the group) and 1-safety (the transaction
is logged on the delegate).  Most group-communication-based replication
protocols in the literature provide exactly this level (Sect. 5.1).

Section 5.2 of the paper argues that in an update-everywhere setting this
extra synchronous logging buys little: if the group fails, the crashed
servers may include the delegate of some transaction anyway.  The simulation
of Sect. 6 shows the price: the synchronous writes put the delegate's disks
on the critical path, which is why the group-1-safe curve of Fig. 9 degrades
fastest with load.
"""

from __future__ import annotations

from ..core.layers import implements
from .dbsm import DatabaseStateMachineReplica, SafetyMode


@implements("replication")
class GroupOneSafeReplica(DatabaseStateMachineReplica):
    """Database state machine replica answering after the delegate's log flush."""

    technique_name = SafetyMode.GROUP_1_SAFE.value

    def __init__(self, sim, node, database, dispatcher, params, endpoint) -> None:
        super().__init__(sim, node, database, dispatcher, params, endpoint,
                         mode=SafetyMode.GROUP_1_SAFE)
