"""Facade assembling a complete replicated database cluster.

:class:`ReplicatedDatabaseCluster` builds, for one replication technique, the
whole simulated system of the paper: the LAN, one node per server with the
Table 4 CPUs and disks, one local database per server, the group-communication
system (for the group-based techniques) and one replica server per node.  It
is the entry point used by the examples, the experiments and most tests.

Typical use::

    from repro.replication import ReplicatedDatabaseCluster
    from repro.workload import SimulationParameters

    cluster = ReplicatedDatabaseCluster("group-safe",
                                        params=SimulationParameters.small(),
                                        seed=42)
    cluster.start()
    program = cluster.workload.next_program()
    outcome = cluster.run_transaction(program)      # a simulation Process
    cluster.sim.run(until=1_000)
    print(outcome.value)                            # TransactionResult
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.layers import implements, uses
from ..db.engine import LocalDatabase
from ..db.operations import TransactionProgram
from ..gcs.system import GroupCommunicationSystem
from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.node import Node
from ..sim.engine import Simulator
from ..sim.events import Event
from ..sim.process import Process
from ..workload.generator import WorkloadGenerator
from ..workload.params import SimulationParameters
from .base import ReplicaServer
from .group_one_safe import GroupOneSafeReplica
from .group_safe import GroupSafeReplica
from .lazy import LazyReplica
from .primary_copy import RoutingPolicy, make_routing
from .results import TransactionResult
from .two_safe import TwoSafeReplica
from .zero_safe import ZeroSafeReplica

#: Names accepted by :class:`ReplicatedDatabaseCluster`.
TECHNIQUES = ("group-safe", "group-1-safe", "2-safe", "1-safe", "0-safe")

#: Techniques built on atomic broadcast (the others are lazy variants).
GROUP_BASED_TECHNIQUES = ("group-safe", "group-1-safe", "2-safe")


@implements("replication")
@uses("total_order")
class ReplicatedDatabaseCluster:
    """A fully wired replicated database running one replication technique."""

    def __init__(self, technique: str = "group-safe",
                 params: Optional[SimulationParameters] = None,
                 seed: int = 0, sim: Optional[Simulator] = None,
                 routing: str = "update-everywhere",
                 primary: Optional[str] = None,
                 gcs_delivery_log_time: float = 0.0,
                 lan: Optional[Lan] = None,
                 name_prefix: str = "") -> None:
        if technique not in TECHNIQUES:
            raise ValueError(
                f"unknown technique {technique!r}; expected one of {TECHNIQUES}")
        self.technique = technique
        self.params = params or SimulationParameters.paper()
        self.sim = sim or Simulator(seed=seed)
        self.routing: RoutingPolicy = make_routing(routing, primary)
        #: Prefix prepended to every server name; lets several replica groups
        #: (e.g. the partitions of :class:`~repro.partition.PartitionedCluster`)
        #: coexist on one shared LAN without name collisions.
        self.name_prefix = name_prefix
        self.lan = lan if lan is not None \
            else Lan(self.sim, latency=self.params.network_latency)
        self.nodes: Dict[str, Node] = {}
        self.databases: Dict[str, LocalDatabase] = {}
        self.replicas: Dict[str, ReplicaServer] = {}
        self._dispatchers: Dict[str, Dispatcher] = {}
        self.gcs: Optional[GroupCommunicationSystem] = None
        self._started = False

        for base_name in self.params.server_names():
            name = f"{name_prefix}{base_name}"
            node = Node(self.sim, name,
                        cpus=self.params.cpus_per_server,
                        disks=self.params.disks_per_server,
                        cpu_time_per_io=self.params.cpu_time_per_io,
                        cpu_time_per_network_op=self.params.cpu_time_per_network_op)
            self.lan.attach(node)
            self.nodes[name] = node
            self.databases[name] = LocalDatabase(
                self.sim, node, item_count=self.params.item_count,
                hit_ratio=self.params.buffer_hit_ratio,
                read_time_low=self.params.read_time_min,
                read_time_high=self.params.read_time_max,
                write_time_low=self.params.write_time_min,
                write_time_high=self.params.write_time_max,
                buffer_max_dirty=self.params.buffer_max_dirty,
                background_write_factor=self.params.write_behind_efficiency)

        if technique in GROUP_BASED_TECHNIQUES:
            self.gcs = GroupCommunicationSystem(
                self.sim, self.lan, nodes=list(self.nodes.values()),
                end_to_end=(technique == "2-safe"),
                delivery_cpu_time=self.params.cpu_time_per_network_op,
                delivery_log_time=gcs_delivery_log_time,
                detection_delay=self.params.failure_detection_delay,
                engine=self.params.broadcast_engine,
                detector_mode=self.params.failure_detector_mode,
                heartbeat_period=self.params.heartbeat_period,
                heartbeat_timeout=self.params.heartbeat_timeout)
            for name, node in self.nodes.items():
                self._dispatchers[name] = self.gcs.dispatcher(name)
        else:
            for name, node in self.nodes.items():
                self._dispatchers[name] = Dispatcher(self.sim, node)

        for name, node in self.nodes.items():
            self.replicas[name] = self._build_replica(name, node)

        self.workload = WorkloadGenerator(self.sim, self.params)

    # ------------------------------------------------------------------ construction
    def _build_replica(self, name: str, node: Node) -> ReplicaServer:
        database = self.databases[name]
        dispatcher = self._dispatchers[name]
        if self.technique == "group-safe":
            return GroupSafeReplica(self.sim, node, database, dispatcher,
                                    self.params, self.gcs.endpoint(name))
        if self.technique == "group-1-safe":
            return GroupOneSafeReplica(self.sim, node, database, dispatcher,
                                       self.params, self.gcs.endpoint(name))
        if self.technique == "2-safe":
            return TwoSafeReplica(self.sim, node, database, dispatcher,
                                  self.params, self.gcs.endpoint(name))
        peer_names = list(self.nodes)
        if self.technique == "1-safe":
            return LazyReplica(self.sim, node, database, dispatcher,
                               self.params, self.lan, peer_names)
        return ZeroSafeReplica(self.sim, node, database, dispatcher,
                               self.params, self.lan, peer_names)

    # ------------------------------------------------------------------ access
    def server_names(self) -> List[str]:
        """Names of all servers, in order."""
        return list(self.replicas)

    def replica(self, name: str) -> ReplicaServer:
        """The replica server called ``name``."""
        return self.replicas[name]

    def node(self, name: str) -> Node:
        """The node hosting server ``name``."""
        return self.nodes[name]

    def database(self, name: str) -> LocalDatabase:
        """The local database of server ``name``."""
        return self.databases[name]

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start every server that is currently up."""
        if self._started:
            return
        self._started = True
        for name, replica in self.replicas.items():
            if self.nodes[name].is_up:
                replica.start()

    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation (convenience passthrough)."""
        return self.sim.run(until=until)

    # ------------------------------------------------------------------ submission
    def choose_delegate(self, client_index: int = 0) -> str:
        """Pick a delegate server for a client according to the routing policy."""
        up_servers = [name for name, node in self.nodes.items() if node.is_up]
        return self.routing.choose(up_servers, client_index)

    def submit(self, program: TransactionProgram,
               server: Optional[str] = None, client_index: int = 0) -> Event:
        """Submit ``program`` to ``server`` (or a routed delegate)."""
        delegate = server or self.choose_delegate(client_index)
        return self.replicas[delegate].submit(program)

    def run_transaction(self, program: TransactionProgram,
                        server: Optional[str] = None) -> Process:
        """Submit and wrap the wait for the result into a process.

        The returned :class:`~repro.sim.process.Process` completes with the
        :class:`~repro.replication.results.TransactionResult`; useful in
        tests and examples that drive single transactions.
        """
        def waiter():
            result = yield self.submit(program, server=server)
            return result
        return self.sim.spawn(waiter(), name=f"client.{program.program_id}")

    # ------------------------------------------------------------------ failures
    def crash_server(self, name: str) -> None:
        """Crash the node hosting server ``name``."""
        self.nodes[name].crash()

    def crash_all(self) -> None:
        """Crash every server (the catastrophic scenario of Fig. 5)."""
        for node in self.nodes.values():
            node.crash()

    def recover_server(self, name: str) -> Process:
        """Recover the node and run the technique's recovery procedure.

        Returns the recovery :class:`~repro.sim.process.Process`; run the
        simulation to let it finish.
        """
        node = self.nodes[name]
        if node.is_crashed:
            node.recover()
        replica = self.replicas[name]
        return self.sim.spawn(replica.recover_after_crash(),
                              name=f"recover.{name}")

    def up_servers(self) -> List[str]:
        """Names of the servers currently up."""
        return [name for name, node in self.nodes.items() if node.is_up]

    # ------------------------------------------------------------------ results
    def all_results(self) -> List[TransactionResult]:
        """Every client-visible result produced so far, across all servers."""
        results: List[TransactionResult] = []
        for replica in self.replicas.values():
            results.extend(replica.results)
        return sorted(results, key=lambda result: result.responded_at)

    def committed_everywhere(self, txn_id: str,
                             servers: Optional[Sequence[str]] = None) -> bool:
        """True if ``txn_id`` is recorded as committed on all given servers."""
        names = list(servers) if servers is not None else self.server_names()
        return all(self.databases[name].testable.has_committed(txn_id)
                   for name in names)

    def committed_anywhere(self, txn_id: str) -> List[str]:
        """Names of servers on which ``txn_id`` is recorded as committed."""
        return [name for name in self.server_names()
                if self.databases[name].testable.has_committed(txn_id)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"<ReplicatedDatabaseCluster {self.technique} "
                f"servers={len(self.replicas)}>")
