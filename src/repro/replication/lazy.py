"""Lazy (1-safe) replication.

The baseline the paper compares against in Fig. 9.  The delegate executes the
whole transaction locally under strict two-phase locking, flushes the commit
record to its own stable storage and answers the client; the write sets are
propagated to the other replicas *afterwards*, in periodic batches, outside
the transaction boundary.  The client response therefore only guarantees
1-safety: the transaction is logged on the delegate and nowhere else, so the
crash of that one server can lose it (or force conflicting work to be
discarded when it recovers).

Because there is no global coordination, concurrent conflicting updates
submitted at different servers are **not** detected — the replicas may
diverge even without any failure, which is the ACID-violation risk Sect. 7 of
the paper contrasts with group-safe replication.  The propagated write sets
are applied with a last-writer-wins rule per item.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..core.layers import implements, uses
from ..db.engine import LocalDatabase
from ..db.errors import DeadlockError, TransactionAborted
from ..db.transaction import WriteSetMessage
from ..network.dispatch import Dispatcher
from ..network.lan import Lan
from ..network.message import Message
from ..network.node import Node
from ..sim.engine import Simulator
from ..workload.params import SimulationParameters
from .base import PendingSubmission, ReplicaServer

#: Message kind used for update propagation between lazy replicas.
PROPAGATION_KIND = "LAZY.PROPAGATE"


@implements("replication")
@uses("links")
class LazyReplica(ReplicaServer):
    """One server of the lazy (1-safe) replication scheme."""

    technique_name = "1-safe"

    #: Answer the client before the commit record is flushed (0-safe variant).
    respond_before_logging = False

    def __init__(self, sim: Simulator, node: Node, database: LocalDatabase,
                 dispatcher: Dispatcher, params: SimulationParameters,
                 lan: Lan, peer_names: List[str]) -> None:
        super().__init__(sim, node, database, dispatcher, params)
        self.lan = lan
        self.peer_names = [name for name in peer_names if name != node.name]
        self._outgoing: List[WriteSetMessage] = []
        self._local_order = itertools.count(1)
        dispatcher.register(PROPAGATION_KIND, self._on_propagation)
        #: Statistics.
        self.propagated_batches = 0
        self.applied_remote_writesets = 0
        self.deadlock_aborts = 0

    # ------------------------------------------------------------------ lifecycle
    def _start_technique(self) -> None:
        self.node.spawn(self._propagator(), name="lazy.propagator")

    # ------------------------------------------------------------------ delegate side
    def _execute(self, pending: PendingSubmission):
        """Execute the transaction locally under 2PL, then answer the client."""
        transaction = pending.transaction
        try:
            for operation in transaction.program.operations:
                if operation.is_read:
                    yield from self.db.read(transaction, operation.key,
                                            use_lock=True)
                else:
                    yield from self.db.write_locked(transaction, operation.key,
                                                    operation.value)
        except (DeadlockError, TransactionAborted) as error:
            self.deadlock_aborts += 1
            self.db.finalize_abort(transaction, getattr(error, "reason", "deadlock"))
            self.respond(transaction.txn_id, committed=False,
                         abort_reason=getattr(error, "reason", "deadlock"))
            return

        payload = transaction.certification_payload()
        commit_order = next(self._local_order)
        if transaction.write_values:
            self.db.install_writes(payload, commit_order=commit_order)

        if self.respond_before_logging:
            # 0-safe: the client is told before anything is durable anywhere.
            self.respond(transaction.txn_id, committed=True,
                         logged_on_delegate=False, delivered_to_group=False,
                         commit_order=commit_order)
            yield from self.db.log_commit(transaction, commit_order,
                                          synchronous=False)
            self.db.finalize_commit(transaction, commit_order)
        else:
            # 1-safe: flush the commit record on the delegate, then answer.
            yield from self.db.log_commit(transaction, commit_order,
                                          synchronous=True)
            self.db.finalize_commit(transaction, commit_order)
            self.respond(transaction.txn_id, committed=True,
                         logged_on_delegate=True, delivered_to_group=False,
                         commit_order=commit_order)

        if transaction.write_values:
            self._outgoing.append(payload)

    # ------------------------------------------------------------------ propagation
    def _propagator(self):
        """Ship accumulated write sets to the other replicas periodically."""
        while True:
            yield self.sim.timeout(self.params.lazy_propagation_interval)
            if not self._outgoing:
                continue
            batch, self._outgoing = self._outgoing, []
            self.propagated_batches += 1
            for peer in self.peer_names:
                yield from self.node.charge_network_cpu()
                self.lan.send(Message(sender=self.name, destination=peer,
                                      kind=PROPAGATION_KIND, payload=batch))

    def _on_propagation(self, message: Message) -> None:
        self.node.spawn(self._apply_propagated(list(message.payload)),
                        name="lazy.apply")

    def _apply_propagated(self, batch: List[WriteSetMessage]):
        """Apply a batch of remote write sets (cheap, sequential, batched I/O)."""
        factor = self.params.lazy_propagation_write_factor
        write_stream = self.sim.random.stream(f"{self.name}.propagated_write")
        for payload in batch:
            if self.db.testable.check_duplicate(payload.txn_id):
                continue
            yield self.processing_gate.wait()
            commit_order = next(self._local_order)
            self.db.install_writes(payload, commit_order=commit_order)
            self.applied_remote_writesets += 1
            for key in payload.write_set:
                yield from self.node.use_cpu(self.node.cpu_time_per_io)
                duration = factor * write_stream.uniform(
                    self.params.write_time_min, self.params.write_time_max)
                if duration > 0:
                    yield from self.node.use_disk(duration)
            self.db.wal.append_commit(payload.txn_id, payload.write_values,
                                      commit_order=commit_order)
            self.db.testable.record_commit(payload.txn_id, commit_order)
            self.db.committed_count += 1
        # One group flush per propagated batch: the receiving replica logs the
        # whole batch with a single sequential write.
        yield from self.db.wal.flush()

    # ------------------------------------------------------------------ recovery
    def recover_after_crash(self):
        """Generator: lazy recovery = local redo from the write-ahead log.

        There is no group to consult: whatever was not flushed locally (and
        not yet propagated) is gone — the 1-safe durability hole.
        """
        redone = self.db.recover()
        self._running = False
        self.start()
        return redone
        yield  # pragma: no cover - keeps this a generator like the base class
