"""0-safe replication (Table 1 of the paper).

The weakest point of the safety matrix: the client is notified as soon as the
delegate has executed the transaction, *before* anything reaches stable
storage and before any other replica has seen it.  A single crash of the
delegate at the wrong moment loses the transaction.  The variant exists in
the library to populate the "No Safety" cell of Table 1 and the "0 crashes
tolerated" row of Table 2; it is a lazy replica that answers before its log
flush.
"""

from __future__ import annotations

from ..core.layers import implements
from .lazy import LazyReplica


@implements("replication")
class ZeroSafeReplica(LazyReplica):
    """Lazy replica that answers the client before the commit record is durable."""

    technique_name = "0-safe"
    respond_before_logging = True
