"""Primary-copy routing.

The paper's techniques are *update everywhere*: any server can act as the
delegate of a transaction.  The classical alternative is *primary copy*,
where every update transaction is executed by a single designated primary and
the other servers are read-only backups.  The footnote of Sect. 5.2 points
out that with primary copy the "group fails but the delegate survives" column
of Table 3 becomes meaningful, because the delegate is always the same,
well-known server.

Primary copy is a *routing policy*, not a different replica algorithm, so the
class below simply decides which server a client should submit to; it is used
by the cluster facade and by the Table 3 experiments.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class RoutingPolicy:
    """Base class: decide which server receives the next transaction."""

    def choose(self, servers: Sequence[str], client_index: int) -> str:
        """Return the name of the server the client should use as delegate."""
        raise NotImplementedError


class UpdateEverywhereRouting(RoutingPolicy):
    """Clients stay attached to 'their' server (Table 4: 4 clients per server)."""

    def choose(self, servers: Sequence[str], client_index: int) -> str:
        if not servers:
            raise ValueError("no servers to route to")
        return servers[client_index % len(servers)]


class PrimaryCopyRouting(RoutingPolicy):
    """All update transactions go to a single primary server."""

    def __init__(self, primary: Optional[str] = None) -> None:
        self.primary = primary

    def choose(self, servers: Sequence[str], client_index: int) -> str:
        if not servers:
            raise ValueError("no servers to route to")
        if self.primary is not None:
            if self.primary not in servers:
                raise ValueError(f"primary {self.primary!r} is not a server")
            return self.primary
        return servers[0]


def make_routing(policy: str, primary: Optional[str] = None) -> RoutingPolicy:
    """Build a routing policy from its name (``"update-everywhere"`` / ``"primary-copy"``)."""
    if policy == "update-everywhere":
        return UpdateEverywhereRouting()
    if policy == "primary-copy":
        return PrimaryCopyRouting(primary)
    raise ValueError(f"unknown routing policy {policy!r}")
