"""Replication techniques (the replicated database component of Fig. 1).

The package provides the database state machine technique at its three safety
levels (group-safe, group-1-safe, 2-safe on end-to-end atomic broadcast), the
lazy 1-safe baseline, the 0-safe variant, routing policies (update-everywhere
vs. primary copy) and the :class:`ReplicatedDatabaseCluster` facade that wires
a whole simulated system together.
"""

from .base import PendingSubmission, ReplicaServer
from .cluster import (GROUP_BASED_TECHNIQUES, TECHNIQUES,
                      ReplicatedDatabaseCluster)
from .dbsm import DatabaseStateMachineReplica, SafetyMode
from .group_one_safe import GroupOneSafeReplica
from .group_safe import GroupSafeReplica
from .lazy import PROPAGATION_KIND, LazyReplica
from .primary_copy import (PrimaryCopyRouting, RoutingPolicy,
                           UpdateEverywhereRouting, make_routing)
from .results import RunStatistics, TransactionResult
from .two_safe import TwoSafeReplica
from .zero_safe import ZeroSafeReplica

__all__ = [
    "ReplicatedDatabaseCluster",
    "TECHNIQUES",
    "GROUP_BASED_TECHNIQUES",
    "ReplicaServer",
    "PendingSubmission",
    "DatabaseStateMachineReplica",
    "SafetyMode",
    "GroupSafeReplica",
    "GroupOneSafeReplica",
    "TwoSafeReplica",
    "LazyReplica",
    "ZeroSafeReplica",
    "PROPAGATION_KIND",
    "RoutingPolicy",
    "UpdateEverywhereRouting",
    "PrimaryCopyRouting",
    "make_routing",
    "TransactionResult",
    "RunStatistics",
]
