"""The database state machine replication technique.

This is the paper's representative group-communication-based technique
(Sect. 2.1): *update everywhere, non-voting, single network interaction*.
The delegate executes the transaction's reads locally, broadcasts the
read-versions + write-set with the atomic broadcast, and every server
certifies and applies the write set in delivery order.  Conflict detection is
deterministic, so all servers take the same commit/abort decision without any
voting phase.

The same machine supports three safety levels, selected by
:class:`SafetyMode`; the differences are *only* about when the client is
answered and which disk writes are synchronous — exactly the knobs the paper
turns between Fig. 2 (group-1-safe), Fig. 8 (group-safe) and Sect. 4.3
(2-safe on end-to-end atomic broadcast):

=================  ==========================================================
mode               client answered after ...
=================  ==========================================================
``GROUP_SAFE``     the delegate delivers the transaction and knows the
                   commit/abort decision (writes and logging are asynchronous)
``GROUP_1_SAFE``   the delegate has additionally applied the writes and
                   flushed the commit record to its own stable storage
``TWO_SAFE``       same as group-1-safe, but over *end-to-end* atomic
                   broadcast: the group-communication component logs
                   deliveries and replays unacknowledged messages after a
                   crash, so the transaction can no longer be lost even if
                   every server crashes
=================  ==========================================================
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..core.layers import implements, uses
from ..db.engine import LocalDatabase
from ..db.operations import OperationType
from ..db.transaction import TransactionStatus, WriteSetMessage
from ..gcs.total_order import Delivery, TotalOrderEngine
from ..gcs.state_transfer import install_checkpoint, take_checkpoint
from ..network.dispatch import Dispatcher
from ..network.node import Node
from ..sim.engine import Simulator
from ..workload.params import SimulationParameters
from .base import PendingSubmission, ReplicaServer


class SafetyMode(Enum):
    """The safety level a database state machine replica is run at."""

    GROUP_SAFE = "group-safe"
    GROUP_1_SAFE = "group-1-safe"
    TWO_SAFE = "2-safe"

    @property
    def responds_after_logging(self) -> bool:
        """True if the client response waits for the delegate's log flush."""
        return self in (SafetyMode.GROUP_1_SAFE, SafetyMode.TWO_SAFE)

    @property
    def synchronous_disk_writes(self) -> bool:
        """True if the delegate applies its writes synchronously."""
        return self in (SafetyMode.GROUP_1_SAFE, SafetyMode.TWO_SAFE)


@implements("replication")
@uses("total_order")
class DatabaseStateMachineReplica(ReplicaServer):
    """One server running the database state machine technique."""

    technique_name = "dbsm"

    def __init__(self, sim: Simulator, node: Node, database: LocalDatabase,
                 dispatcher: Dispatcher, params: SimulationParameters,
                 endpoint: TotalOrderEngine,
                 mode: SafetyMode = SafetyMode.GROUP_SAFE) -> None:
        super().__init__(sim, node, database, dispatcher, params)
        self.endpoint = endpoint
        self.mode = mode
        self.technique_name = mode.value
        endpoint.checkpoint_provider = self._take_checkpoint
        #: Statistics.
        self.certified_count = 0
        self.certification_abort_count = 0
        self.duplicate_deliveries = 0

    # ------------------------------------------------------------------ lifecycle
    def _start_technique(self) -> None:
        self.endpoint.start()
        self.node.spawn(self._certifier(), name="dbsm.certifier")

    def _take_checkpoint(self):
        return take_checkpoint(self.db, self.sim.now, source=self.name)

    # ------------------------------------------------------------------ delegate side
    def _execute(self, pending: PendingSubmission):
        """Delegate-side execution: read phase, then broadcast (Fig. 2 / Fig. 8)."""
        transaction = pending.transaction
        read_type = OperationType.READ
        db = self.db
        for operation in transaction.program.operations:
            if operation.op_type is read_type:
                yield from db.read(transaction, operation.key, use_lock=False)
            else:
                db.stage_write(transaction, operation.key, operation.value)

        if not transaction.write_values:
            # Read-only transaction: no broadcast needed (Sect. 2.1), it
            # commits locally on the delegate.
            self.db.finalize_commit(transaction, commit_order=None)
            self.respond(transaction.txn_id, committed=True,
                         logged_on_delegate=False, delivered_to_group=False)
            return

        transaction.set_status(TransactionStatus.BROADCAST)
        transaction.broadcast_time = self.sim.now
        payload = transaction.certification_payload()
        self.endpoint.broadcast(payload)
        obs = self.sim.obs
        if obs is not None:
            # Broadcast-to-delivery of the total order; ended by the
            # *delegate's* certifier when the decision arrives back.
            obs.begin("abcast.order", category="network",
                      track=f"server.{self.name}",
                      parent=("txn", transaction.txn_id),
                      key=("order", transaction.txn_id))
        # The response is produced by the certifier when the transaction is
        # delivered back in total order.

    # ------------------------------------------------------------------ all replicas
    def _certifier(self):
        """Process deliveries in total order: certify, decide, apply."""
        while True:
            delivery: Delivery = yield self.endpoint.deliveries.get()
            yield self.processing_gate.wait()
            # Back-pressure: installing the writes of this delivery needs room
            # in the write cache.  Under overload this is what couples the
            # certification stage to the disks and makes the group-based
            # curves of Fig. 9 turn upward.
            yield self.db.buffer.wait_for_space()
            payload: WriteSetMessage = delivery.payload
            if self.db.testable.check_duplicate(payload.txn_id):
                # Replayed message (end-to-end recovery) for a transaction we
                # already decided: acknowledge and move on — the testable
                # transaction mechanism gives exactly-once commits.
                self.duplicate_deliveries += 1
                self.endpoint.acknowledge(delivery)
                continue
            committed = self.db.certify(payload)
            self.certified_count += 1
            if committed:
                commit_order = self.db.install_writes(payload)
                self._handle_commit(payload, delivery, commit_order)
            else:
                self.certification_abort_count += 1
                self._handle_abort(payload, delivery)

    def _handle_commit(self, payload: WriteSetMessage, delivery: Delivery,
                       commit_order: int) -> None:
        is_delegate = payload.delegate == self.name
        transaction = self.pending_transaction(payload.txn_id)
        if is_delegate:
            obs = self.sim.obs
            if obs is not None:
                # Only the delegate ends the order span: every server's
                # certifier sees this delivery, at different times.
                obs.end_key(("order", payload.txn_id))

        if self.mode is SafetyMode.GROUP_SAFE and is_delegate:
            # Fig. 8: answer as soon as the decision is known; disk writes
            # happen asynchronously, outside the transaction boundary.
            self.respond(payload.txn_id, committed=True,
                         delivered_to_group=True, logged_on_delegate=False,
                         commit_order=commit_order)

        self.node.spawn(
            self._apply(payload, delivery, commit_order, is_delegate,
                        transaction),
            name=f"apply.{payload.txn_id}")

    def _apply(self, payload: WriteSetMessage, delivery: Delivery,
               commit_order: int, is_delegate: bool, transaction):
        """Apply the certified write set and log the decision."""
        synchronous = self.mode.synchronous_disk_writes
        obs = self.sim.obs
        span = None
        if obs is not None and is_delegate:
            # Delegate-side apply + commit logging.  For the modes that
            # respond after logging this sits on the commit critical path;
            # for group-safe it falls outside the root span and is clipped.
            span = obs.begin("dbsm.apply", category="disk",
                             track=f"server.{self.name}",
                             parent=("txn", payload.txn_id),
                             labels={"synchronous": synchronous})
        try:
            yield from self.db.apply_physical_writes(payload.write_set,
                                                     synchronous=synchronous)
            yield from self.db.log_commit(payload, commit_order,
                                          synchronous=synchronous)
        finally:
            if span is not None:
                obs.end(span)
        self.endpoint.acknowledge(delivery)
        if transaction is not None:
            self.db.finalize_commit(transaction, commit_order)
        else:
            self.db.testable.record_commit(payload.txn_id, commit_order)
            self.db.committed_count += 1
        if is_delegate and self.mode.responds_after_logging:
            # With end-to-end atomic broadcast the delivery is logged by the
            # group-communication component on every server and replayed
            # until successfully processed, so at notification time the
            # transaction is guaranteed to (eventually) be logged on every
            # available server — the 2-safe guarantee of Sect. 4.3.
            self.respond(payload.txn_id, committed=True,
                         delivered_to_group=True, logged_on_delegate=True,
                         logged_on_all=(self.mode is SafetyMode.TWO_SAFE),
                         commit_order=commit_order)

    def _handle_abort(self, payload: WriteSetMessage, delivery: Delivery) -> None:
        if payload.delegate == self.name:
            obs = self.sim.obs
            if obs is not None:
                obs.end_key(("order", payload.txn_id))
        transaction = self.pending_transaction(payload.txn_id)
        if transaction is not None:
            self.db.finalize_abort(transaction, "certification")
        else:
            self.db.testable.record_abort(payload.txn_id, "certification")
            self.db.aborted_count += 1
            self.db.certification_aborts += 1
        self.endpoint.acknowledge(delivery)
        self.db.wal.append_abort(payload.txn_id)
        if payload.delegate == self.name:
            self.respond(payload.txn_id, committed=False,
                         abort_reason="certification",
                         delivered_to_group=True)

    # ------------------------------------------------------------------ recovery
    def recover_after_crash(self, rejoin_timeout: float = 10.0):
        """Generator: technique-specific recovery after the node came back.

        * The local database is rebuilt from the flushed write-ahead log.
        * The group-communication endpoint recovers: with classical atomic
          broadcast this is a rejoin plus state transfer (checkpoint-based,
          Sect. 2.3); with end-to-end atomic broadcast it replays
          unacknowledged messages (log-based, Sect. 4.2).
        * The background and certifier processes are restarted — the restarted
          certifier is what processes any replayed deliveries.
        """
        self.db.recover()
        outcome = yield from self.endpoint.recover(rejoin_timeout=rejoin_timeout)
        if outcome is not None and not isinstance(outcome, int):
            # Classical atomic broadcast handed us an application checkpoint
            # from a live member: adopt it wholesale (state transfer).  Any
            # local commit unknown to the group is discarded — this is the
            # 1-safe transaction-loss behaviour discussed in Sect. 5.1.
            install_checkpoint(self.db, outcome)
        self._running = False
        self.start()
        return outcome
