"""repro — a reproduction of "Beyond 1-Safety and 2-Safety for Replicated
Databases: Group-Safety" (Wiesmann & Schiper, EDBT 2004).

The library contains, in pure Python on a deterministic discrete-event
simulator:

* the safety-criteria framework of the paper (0-safe, 1-safe, group-safe,
  group-1-safe, 2-safe, very safe) in :mod:`repro.core`;
* classical and **end-to-end** atomic broadcast with view membership, failure
  detection, checkpoint state transfer and log-based message replay in
  :mod:`repro.gcs`;
* a local database engine (2PL, WAL, buffer pool, testable transactions,
  crash recovery) in :mod:`repro.db`;
* the replication techniques — the database state machine at three safety
  levels plus the lazy and 0-safe baselines — in :mod:`repro.replication`;
* the Table 4 workload model in :mod:`repro.workload`;
* partitioned replication — the keyspace sharded across independent replica
  groups with a cross-partition 2PC coordinator — in :mod:`repro.partition`;
* harnesses regenerating every table and figure of the paper in
  :mod:`repro.experiments`.

Quick start::

    from repro.replication import ReplicatedDatabaseCluster
    from repro.workload import SimulationParameters

    cluster = ReplicatedDatabaseCluster("group-safe",
                                        params=SimulationParameters.small())
    cluster.start()
    result = cluster.run_transaction(cluster.workload.next_program())
    cluster.run(until=1_000)
    print(result.value)
"""

from . import (core, db, experiments, gcs, network, partition, replication,
               sim, workload)
from .partition import PartitionedCluster
from .replication import ReplicatedDatabaseCluster
from .workload import SimulationParameters

__version__ = "1.1.0"

__all__ = [
    "core",
    "db",
    "experiments",
    "gcs",
    "network",
    "partition",
    "replication",
    "sim",
    "workload",
    "ReplicatedDatabaseCluster",
    "PartitionedCluster",
    "SimulationParameters",
    "__version__",
]
