"""Concrete lint rules enforcing the repo's determinism contracts.

Each rule is pure AST analysis — nothing here imports the code under check.
Paths in rule options are posix paths relative to the lint root (normally
``src/repro``), e.g. ``"sim/parallel.py"``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .engine import Finding, ParsedModule, Rule

# -- wall-clock ---------------------------------------------------------------------------

#: ``time`` module functions that read the host clock.
_TIME_FUNCTIONS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "thread_time", "thread_time_ns", "clock",
})

#: ``datetime``-family constructors that read the host clock.
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})


class WallClockRule(Rule):
    """Ban host wall-clock reads inside simulated code.

    Simulated time is ``Simulator.now``; any ``time.time()`` /
    ``perf_counter()`` / ``datetime.now()`` on a model path makes traces
    machine-dependent.  Host-side harness modules that legitimately measure
    build/run wall-clock (the parallel engine's ParallelRunReport) are
    allowlisted by relpath.
    """

    name = "wall-clock"
    description = ("no host clock reads (time.*, datetime.now) inside "
                   "simulated code; harness modules are allowlisted")

    def __init__(self, allowed_modules: Sequence[str] = ("sim/parallel.py",)):
        self.allowed_modules = frozenset(allowed_modules)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if module.relpath in self.allowed_modules:
            return
        time_aliases: set = set()      # names bound to the time module
        datetime_aliases: set = set()  # names bound to the datetime module
        banned_names: Dict[str, str] = {}  # local name -> original function
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCTIONS:
                            banned_names[alias.asname or alias.name] = \
                                f"time.{alias.name}"
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_aliases.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            origin = None
            if isinstance(func, ast.Name) and func.id in banned_names:
                origin = banned_names[func.id]
            elif isinstance(func, ast.Attribute):
                chain = _attribute_chain(func)
                if chain and chain[0] in time_aliases \
                        and func.attr in _TIME_FUNCTIONS:
                    origin = f"time.{func.attr}"
                elif chain and chain[0] in datetime_aliases \
                        and func.attr in _DATETIME_METHODS:
                    origin = f"{'.'.join(chain)}.{func.attr}"
            if origin is not None:
                yield Finding(
                    path=module.relpath, line=node.lineno,
                    column=node.col_offset + 1, rule=self.name,
                    message=f"host wall-clock read {origin}() in simulated "
                            f"code; use Simulator.now (or allowlist this "
                            f"harness module)")


def _attribute_chain(node: ast.Attribute) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b"]`` (the chain under the final attr)."""
    parts: List[str] = []
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
        parts.reverse()
        return parts
    return None


# -- unseeded-rng -------------------------------------------------------------------------


class UnseededRngRule(Rule):
    """Ban direct use of the ``random`` module outside the interning point.

    All model randomness must flow through :mod:`repro.sim.rng`'s named,
    seed-derived streams; a stray ``random.random()`` (module-global,
    OS-seeded state) silently breaks replayability.
    """

    name = "unseeded-rng"
    description = ("random.* / Random() must be routed through the "
                   "repro.sim.rng interned streams")

    def __init__(self, exempt_modules: Sequence[str] = ("sim/rng.py",)):
        self.exempt_modules = frozenset(exempt_modules)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if module.relpath in self.exempt_modules:
            return
        random_aliases: set = set()
        imported_names: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module == "random":
                for alias in node.names:
                    imported_names[alias.asname or alias.name] = alias.name
        if not random_aliases and not imported_names:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            origin = None
            if isinstance(func, ast.Name) and func.id in imported_names:
                origin = f"random.{imported_names[func.id]}"
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in random_aliases:
                origin = f"random.{func.attr}"
            if origin is not None:
                yield Finding(
                    path=module.relpath, line=node.lineno,
                    column=node.col_offset + 1, rule=self.name,
                    message=f"{origin}() bypasses the interned RNG streams; "
                            f"draw from repro.sim.rng.RandomStreams instead")


# -- ordering-hazard ----------------------------------------------------------------------

#: Builtins that materialize iteration order — feeding them an unordered
#: view is exactly the hazard.
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "iter"})

#: Builtins whose result does not depend on input order.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "set", "frozenset", "min", "max", "any", "all", "len",
})


class OrderingHazardRule(Rule):
    """Flag iteration over unordered collection views on schedule paths.

    ``dict`` preserves insertion order but ``set`` does not, and iteration
    over ``.keys()`` / ``.values()`` of a mutated mapping encodes mutation
    history into the schedule.  In schedule-affecting packages every such
    iteration must either be wrapped in an order-insensitive consumer
    (``sorted``/``min``/``any``/...), or carry a suppression explaining why
    the underlying order is deterministic.  ``sum`` is deliberately *not*
    exempt: float addition is not associative, so even a commutative-looking
    reduction is order-sensitive.
    """

    name = "ordering-hazard"
    description = ("no iteration over set/.keys()/.values() of non-literal "
                   "collections in schedule-affecting modules")

    def __init__(self, scope_prefixes: Sequence[str] = (
            "sim/", "gcs/", "partition/", "db/")):
        self.scope_prefixes = tuple(scope_prefixes)

    def _in_scope(self, relpath: str) -> bool:
        return any(relpath.startswith(prefix)
                   for prefix in self.scope_prefixes)

    @staticmethod
    def _hazard(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and not node.args \
                    and func.attr in ("keys", "values"):
                return f".{func.attr}() view"
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"{func.id}(...)"
        elif isinstance(node, ast.Set):
            return "set literal"
        elif isinstance(node, ast.SetComp):
            return "set comprehension"
        return None

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if not self._in_scope(module.relpath):
            return
        parents = module.parents
        for node in ast.walk(module.tree):
            what = self._hazard(node)
            if what is None:
                continue
            parent = parents.get(node)
            flagged = False
            if isinstance(parent, ast.For) and parent.iter is node:
                flagged = True
            elif isinstance(parent, ast.comprehension) \
                    and parent.iter is node:
                comp = parents.get(parent)
                # Building a set from the iteration is order-insensitive.
                if isinstance(comp, ast.SetComp):
                    continue
                consumer = parents.get(comp)
                if isinstance(consumer, ast.Call) \
                        and isinstance(consumer.func, ast.Name) \
                        and consumer.func.id in _ORDER_INSENSITIVE \
                        and consumer.args and consumer.args[0] is comp:
                    continue
                flagged = True
            elif isinstance(parent, ast.Call) and node in parent.args:
                func = parent.func
                if isinstance(func, ast.Name) \
                        and func.id in _ORDER_MATERIALIZERS:
                    flagged = True
            if flagged:
                yield Finding(
                    path=module.relpath, line=node.lineno,
                    column=node.col_offset + 1, rule=self.name,
                    message=f"iteration over {what} in a schedule-affecting "
                            f"module; wrap in sorted(...) or suppress with "
                            f"a determinism justification")


# -- slots-consistency --------------------------------------------------------------------


class SlotsConsistencyRule(Rule):
    """Hot-path classes must declare ``__slots__`` (the PR 5 contract)."""

    name = "slots-consistency"
    description = ("classes in hot-path modules must declare __slots__ or "
                   "@dataclass(slots=True)")

    def __init__(self, hot_modules: Sequence[str] = (
            "sim/events.py", "sim/process.py", "sim/resources.py",
            "network/message.py")):
        self.hot_modules = frozenset(hot_modules)

    @staticmethod
    def _declares_slots(cls: ast.ClassDef) -> bool:
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                if any(isinstance(target, ast.Name)
                       and target.id == "__slots__"
                       for target in stmt.targets):
                    return True
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name) \
                        and stmt.target.id == "__slots__":
                    return True
        for decorator in cls.decorator_list:
            if isinstance(decorator, ast.Call):
                func = decorator.func
                func_name = func.id if isinstance(func, ast.Name) \
                    else func.attr if isinstance(func, ast.Attribute) else ""
                if func_name == "dataclass" and any(
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                        for keyword in decorator.keywords):
                    return True
        return False

    @staticmethod
    def _is_exception(cls: ast.ClassDef) -> bool:
        # Exception classes carry __dict__ regardless; slots buy nothing.
        return any(isinstance(base, ast.Name)
                   and (base.id.endswith("Error")
                        or base.id.endswith("Exception"))
                   for base in cls.bases)

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        if module.relpath not in self.hot_modules:
            return
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if self._is_exception(node):
                continue
            if not self._declares_slots(node):
                yield Finding(
                    path=module.relpath, line=node.lineno,
                    column=node.col_offset + 1, rule=self.name,
                    message=f"hot-path class {node.name} must declare "
                            f"__slots__ (or @dataclass(slots=True))")


# -- float-time-arith ---------------------------------------------------------------------

#: Identifiers that name simulated-time floats.
_TIME_TOKENS = frozenset({
    "now", "_now", "when", "deadline", "deliver_at", "sent_at",
    "granted_at", "delivered_at", "committed_at", "expires_at",
})

_TIME_SUFFIXES = ("_at", "_ms", "_time", "_deadline")


class FloatTimeArithRule(Rule):
    """Flag ``==`` / ``!=`` on simulated-time floats.

    Simulated timestamps are accumulated floats; exact equality silently
    depends on summation order.  Compare with ``<`` / ``>=`` window bounds,
    or quantize first.
    """

    name = "float-time-arith"
    description = "no direct == / != comparisons between simulated-time floats"

    @staticmethod
    def _time_named(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            identifier = node.id
        elif isinstance(node, ast.Attribute):
            identifier = node.attr
        else:
            return None
        if identifier in _TIME_TOKENS \
                or identifier.endswith(_TIME_SUFFIXES):
            return identifier
        return None

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                # `x == None`-style sentinel checks are not float equality.
                if any(isinstance(side, ast.Constant)
                       and side.value is None for side in (left, right)):
                    continue
                named = self._time_named(left) or self._time_named(right)
                if named is not None:
                    yield Finding(
                        path=module.relpath, line=node.lineno,
                        column=node.col_offset + 1, rule=self.name,
                        message=f"exact equality on simulated-time value "
                                f"{named!r}; floats accumulate — compare "
                                f"with window bounds instead")


# -- layer-contract -----------------------------------------------------------------------

#: Canonical order, bottom-up.  Kept in sync with repro.core.layers — the
#: rule must not import the code under analysis.
_LAYER_ORDER: Tuple[str, ...] = (
    "links", "failure_detector", "reliable_broadcast", "total_order",
    "membership", "replication",
)
_LAYER_INDEX = {layer: index for index, layer in enumerate(_LAYER_ORDER)}

#: Oracle layers sit beside the stack, not in its data path: the failure
#: detector only answers "do you suspect p?" and every protocol layer is
#: allowed to consult it directly.  Strict adjacency therefore neither
#: flags a reach down *to* an oracle nor counts an oracle as the
#: intermediate a lower reach must route through.
_ORACLE_LAYERS: FrozenSet[str] = frozenset({"failure_detector"})

#: The top of the stack is the application, not a protocol layer —
#: replication composition roots legitimately wire every layer below them,
#: so strict adjacency does not constrain them.
_TOP_LAYER_INDEX = len(_LAYER_ORDER) - 1


class _AnnotatedClass:
    __slots__ = ("name", "lineno", "implements", "uses")

    def __init__(self, name: str, lineno: int):
        self.name = name
        self.lineno = lineno
        self.implements: List[Tuple[str, int]] = []
        self.uses: List[Tuple[str, int]] = []


class _ModuleInfo:
    __slots__ = ("relpath", "dotted", "is_package", "classes", "imports")

    def __init__(self, relpath: str, dotted: str, is_package: bool):
        self.relpath = relpath
        self.dotted = dotted
        self.is_package = is_package
        self.classes: List[_AnnotatedClass] = []
        self.imports: List[Tuple[str, int]] = []


class LayerContractRule(Rule):
    """Enforce the protocol-stack layering declared via @implements/@uses.

    Builds two graphs from source: the decorator graph (per-class declared
    layers) and the import graph between annotated modules.  A class using a
    layer *above* its own, or an annotated module importing an annotated
    module of a higher layer, is an error; equal-layer dependencies are
    allowed (a total-order endpoint may extend another).  With
    ``strict_adjacency=True`` a protocol class must route through the layer
    directly below it.  Two structural exemptions keep that check honest:
    oracle layers (the failure detector) carry hints rather than data, so
    any layer may consult them and they are transparent when computing
    adjacency; and the top ``replication`` layer is the application, whose
    composition roots wire the whole stack by design.
    """

    name = "layer-contract"
    description = ("@implements/@uses layer declarations and imports must "
                   "only depend downward in the protocol stack")

    def __init__(self, strict_adjacency: bool = False):
        self.strict_adjacency = strict_adjacency
        self._modules: List[_ModuleInfo] = []

    def check_module(self, module: ParsedModule) -> Iterator[Finding]:
        info = _ModuleInfo(
            relpath=module.relpath, dotted=module.dotted,
            is_package=module.relpath.endswith("__init__.py"))
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                annotated = _AnnotatedClass(node.name, node.lineno)
                for decorator in node.decorator_list:
                    parsed = self._parse_decorator(decorator)
                    if parsed is None:
                        continue
                    kind, layer, lineno = parsed
                    if layer not in _LAYER_INDEX:
                        yield Finding(
                            path=module.relpath, line=lineno,
                            column=decorator.col_offset + 1, rule=self.name,
                            message=f"unknown protocol layer {layer!r} on "
                                    f"class {node.name}; expected one of "
                                    f"{', '.join(_LAYER_ORDER)}")
                        continue
                    if kind == "implements":
                        annotated.implements.append((layer, lineno))
                    else:
                        annotated.uses.append((layer, lineno))
                if annotated.implements or annotated.uses:
                    info.classes.append(annotated)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    info.imports.append((alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                for target in self._resolve_import_from(info, node):
                    info.imports.append((target, node.lineno))
        self._modules.append(info)

    @staticmethod
    def _parse_decorator(node: ast.expr
                         ) -> Optional[Tuple[str, str, int]]:
        if not isinstance(node, ast.Call) or len(node.args) != 1:
            return None
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) \
            else func.attr if isinstance(func, ast.Attribute) else None
        if func_name not in ("implements", "uses"):
            return None
        argument = node.args[0]
        if not isinstance(argument, ast.Constant) \
                or not isinstance(argument.value, str):
            return None
        return func_name, argument.value, node.lineno

    @staticmethod
    def _resolve_import_from(info: _ModuleInfo,
                             node: ast.ImportFrom) -> List[str]:
        if node.level == 0:
            base = node.module or ""
        else:
            parts = info.dotted.split(".")
            # A package's dotted name already names the package itself;
            # a module must first drop its own component.
            drop = node.level - 1 if info.is_package else node.level
            if drop >= len(parts):
                return []
            parts = parts[:len(parts) - drop] if drop else parts
            base = ".".join(parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if not base:
            return [alias.name for alias in node.names]
        targets = [base]
        # `from pkg import submodule` — the submodule is the real target.
        targets.extend(f"{base}.{alias.name}" for alias in node.names)
        return targets

    @staticmethod
    def _strict_adjacent_below(own: int) -> Optional[int]:
        """The layer strict adjacency expects ``own`` to route through.

        ``None`` means the implementing layer is exempt: the application on
        top of the stack, or the bottom with nothing below it.  Oracle
        layers are skipped — a reliable-broadcast primitive sits directly
        on the links even though the failure detector is between them.
        """
        if own == _TOP_LAYER_INDEX:
            return None
        below = own - 1
        while below >= 0 and _LAYER_ORDER[below] in _ORACLE_LAYERS:
            below -= 1
        return below if below >= 0 else None

    def finish(self) -> Iterator[Finding]:
        module_layer: Dict[str, int] = {}
        for info in self._modules:
            indexes = [_LAYER_INDEX[layer]
                       for annotated in info.classes
                       for layer, _ in annotated.implements
                       if layer in _LAYER_INDEX]
            if indexes:
                module_layer[info.dotted] = min(indexes)
        for info in self._modules:
            for annotated in info.classes:
                own_indexes = [_LAYER_INDEX[layer]
                               for layer, _ in annotated.implements
                               if layer in _LAYER_INDEX]
                if not own_indexes:
                    continue
                own = min(own_indexes)
                for layer, lineno in annotated.uses:
                    if layer not in _LAYER_INDEX:
                        continue
                    used = _LAYER_INDEX[layer]
                    if used > own:
                        yield Finding(
                            path=info.relpath, line=lineno, column=1,
                            rule=self.name,
                            message=f"upward dependency: {annotated.name} "
                                    f"implements {_LAYER_ORDER[own]!r} but "
                                    f"uses higher layer {layer!r}")
                    elif self.strict_adjacency \
                            and layer not in _ORACLE_LAYERS:
                        adjacent = self._strict_adjacent_below(own)
                        if adjacent is not None and used < adjacent:
                            yield Finding(
                                path=info.relpath, line=lineno, column=1,
                                rule=self.name,
                                message=f"skip-layer dependency: "
                                        f"{annotated.name} implements "
                                        f"{_LAYER_ORDER[own]!r} but reaches "
                                        f"past {_LAYER_ORDER[adjacent]!r} "
                                        f"down to {layer!r}")
            own_layer = module_layer.get(info.dotted)
            if own_layer is None:
                continue
            seen: set = set()
            for target, lineno in info.imports:
                target_layer = module_layer.get(target)
                if target_layer is None or target == info.dotted:
                    continue
                if target_layer > own_layer and (target, lineno) not in seen:
                    seen.add((target, lineno))
                    yield Finding(
                        path=info.relpath, line=lineno, column=1,
                        rule=self.name,
                        message=f"upward import: layer "
                                f"{_LAYER_ORDER[own_layer]!r} module imports "
                                f"{target} (layer "
                                f"{_LAYER_ORDER[target_layer]!r})")


# -- registry -----------------------------------------------------------------------------

DEFAULT_RULES: Tuple[type, ...] = (
    WallClockRule,
    UnseededRngRule,
    OrderingHazardRule,
    SlotsConsistencyRule,
    FloatTimeArithRule,
    LayerContractRule,
)


def default_rules(*, strict_layers: bool = False) -> List[Rule]:
    """Fresh instances of every rule (rules hold per-run state)."""
    return [
        WallClockRule(),
        UnseededRngRule(),
        OrderingHazardRule(),
        SlotsConsistencyRule(),
        FloatTimeArithRule(),
        LayerContractRule(strict_adjacency=strict_layers),
    ]
