"""Static determinism guards for the reproduction.

Every published result in this repo rests on invariants that code review
alone cannot hold for long: no wall-clock reads or unseeded randomness inside
simulated code, interned RNG streams on hot paths, no iteration over
nondeterministically-ordered collections on schedule-affecting paths, and a
protocol stack whose layers only depend downward.  This package enforces them
as an AST-based lint suite (``python -m repro.analysis.lint``) that CI gates
on, plus the runtime race detector of
:func:`repro.sim.parallel.run_sharded(..., detect_races=True)`.
"""

from .engine import (Finding, LintReport, ParsedModule, Rule, Suppression,
                     json_report, render_report, run_lint)
from .rules import (DEFAULT_RULES, FloatTimeArithRule, LayerContractRule,
                    OrderingHazardRule, SlotsConsistencyRule, UnseededRngRule,
                    WallClockRule, default_rules)

__all__ = [
    "Finding",
    "LintReport",
    "ParsedModule",
    "Rule",
    "Suppression",
    "run_lint",
    "render_report",
    "json_report",
    "DEFAULT_RULES",
    "default_rules",
    "WallClockRule",
    "UnseededRngRule",
    "OrderingHazardRule",
    "SlotsConsistencyRule",
    "FloatTimeArithRule",
    "LayerContractRule",
]
